// Experiment E1 — Proposition 3.1 + Theorem 4.5.
//
// Per-append view maintenance cost as a function of the chronicle size
// |C|. Claim: with SCA views the cost is flat (independent of |C|; the
// chronicle is not even stored), while the relational baseline — which
// recomputes the summary from the stored chronicle — grows linearly in
// |C|. Series:
//
//   IncrementalSca1     — SUM(minutes) GROUP BY caller      (IM-Constant)
//   IncrementalScaJoin  — + key join against a 10k relation (IM-log(R))
//   IncrementalScaCross — + cross product with a 64-row relation (IM-R^k)
//   BaselineRecompute   — naive full recomputation per append (IM-C^k)

#include <benchmark/benchmark.h>

#include "baseline/naive_engine.h"
#include "bench_common.h"
#include "db/database.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

constexpr int64_t kRelationRows = 10000;
constexpr int64_t kCrossRelationRows = 64;

// Pre-fills `db` with `prefill` call records in batches (cheap setup).
void Prefill(ChronicleDatabase* db, CallRecordGenerator* gen, int64_t prefill,
             Chronon* chronon) {
  constexpr size_t kBatch = 256;
  int64_t remaining = prefill;
  while (remaining > 0) {
    const size_t n = remaining < static_cast<int64_t>(kBatch)
                         ? static_cast<size_t>(remaining)
                         : kBatch;
    Check(db->Append("calls", gen->NextBatch(n), ++*chronon).status());
    remaining -= static_cast<int64_t>(n);
  }
}

void SetupRelation(ChronicleDatabase* db, int64_t rows) {
  Schema schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
  Check(db->CreateRelation("cust", schema, "acct").status());
  for (int64_t i = 0; i < rows; ++i) {
    Check(db->InsertInto("cust", Tuple{Value(i), Value("NJ")}));
  }
}

enum class ViewKind { kSca1, kScaJoin, kScaCross };

void SetupView(ChronicleDatabase* db, ViewKind kind) {
  CaExprPtr plan = Unwrap(db->ScanChronicle("calls"));
  if (kind == ViewKind::kScaJoin) {
    SetupRelation(db, kRelationRows);
    plan = Unwrap(
        CaExpr::RelKeyJoin(plan, Unwrap(db->GetRelation("cust")), "caller"));
  } else if (kind == ViewKind::kScaCross) {
    SetupRelation(db, kCrossRelationRows);
    plan = Unwrap(CaExpr::RelCross(plan, Unwrap(db->GetRelation("cust"))));
  }
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      plan->schema(), {"caller"}, {AggSpec::Sum("minutes", "total")}));
  Check(db->CreateView("minutes", plan, spec).status());
}

void RunIncremental(benchmark::State& state, ViewKind kind,
                    RetentionPolicy retention) {
  const int64_t prefill = state.range(0);
  ChronicleDatabase db;
  CallRecordOptions options;
  options.num_accounts = 10000;
  CallRecordGenerator gen(options);
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           retention)
            .status());
  SetupView(&db, kind);
  Chronon chronon = 0;
  Prefill(&db, &gen, prefill, &chronon);

  for (auto _ : state) {
    Check(db.Append("calls", {gen.Next()}, ++chronon).status());
  }
  state.counters["chronicle_size"] = static_cast<double>(prefill);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void IncrementalSca1(benchmark::State& state) {
  RunIncremental(state, ViewKind::kSca1, RetentionPolicy::None());
}
BENCHMARK(IncrementalSca1)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 19, 1 << 12));

void IncrementalScaJoin(benchmark::State& state) {
  RunIncremental(state, ViewKind::kScaJoin, RetentionPolicy::None());
}
BENCHMARK(IncrementalScaJoin)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 19, 1 << 12));

void IncrementalScaCross(benchmark::State& state) {
  RunIncremental(state, ViewKind::kScaCross, RetentionPolicy::None());
}
BENCHMARK(IncrementalScaCross)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 19, 1 << 12));

// The relational baseline: the summary is answered by recomputing over the
// stored chronicle, so every "maintenance" step costs O(|C|).
void BaselineRecompute(benchmark::State& state) {
  const int64_t prefill = state.range(0);
  ChronicleDatabase db;
  CallRecordOptions options;
  options.num_accounts = 10000;
  CallRecordGenerator gen(options);
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::All())
            .status());
  Chronon chronon = 0;
  Prefill(&db, &gen, prefill, &chronon);

  CaExprPtr plan = Unwrap(db.ScanChronicle("calls"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      plan->schema(), {"caller"}, {AggSpec::Sum("minutes", "total")}));
  NaiveEngine engine(&db.group());

  for (auto _ : state) {
    std::vector<Tuple> rows = Unwrap(engine.EvaluateSummary(*plan, spec));
    benchmark::DoNotOptimize(rows);
  }
  state.counters["chronicle_size"] = static_cast<double>(prefill);
}
BENCHMARK(BaselineRecompute)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 17, 1 << 12));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
