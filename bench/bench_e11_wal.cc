// Experiment E11 (operational) — write-ahead logging overhead + recovery.
//
// The WAL makes the volatile view state durable; the question is what the
// ingest path pays for it. Series:
//   * LoggedAppend — E1-style append workload with no log, and with a WAL
//     under each fsync policy (off / group-commit batch / every record).
//     The acceptance bar: batched fsync stays within ~2x of unlogged.
//   * RecoveryCost — Recover() wall time as the replayed log tail grows
//     (checkpoint at LSN 0, i.e. pure replay), and with a checkpoint
//     covering all but a fixed tail.
//
// WAL directories live under the system temp dir and are removed per run.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "bench_common.h"
#include "wal/recovery.h"
#include "wal/wal.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& tag) {
  const std::string path =
      (fs::temp_directory_path() /
       ("chronicle_bench_e11_" + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(path);
  return path;
}

void ApplyDdl(ChronicleDatabase* db) {
  Check(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                            RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db->ScanChronicle("calls"));
  Check(db->CreateView("minutes", scan,
                       Unwrap(SummarySpec::GroupBy(
                           scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "total"),
                            AggSpec::Count("n")})))
            .status());
}

// Appends `records` call records in batches of 64 to a fresh database,
// optionally WAL-attached under `policy`.
void RunAppends(benchmark::State& state, bool logged,
                wal::FsyncPolicy policy) {
  const int64_t records = state.range(0);
  const std::string dir = ScratchDir("append");
  uint64_t bytes_logged = 0, syncs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    ChronicleDatabase db;
    ApplyDdl(&db);
    std::unique_ptr<wal::Wal> w;
    std::unique_ptr<wal::WalMutationLog> log;
    if (logged) {
      wal::WalOptions options;
      options.fsync = policy;
      w = Unwrap(wal::Wal::Open(dir, options));
      log = std::make_unique<wal::WalMutationLog>(w.get(), &db);
      db.AttachMutationLog(log.get());
    }
    CallRecordOptions gen_options;
    gen_options.num_accounts = 4096;
    CallRecordGenerator gen(gen_options);
    Chronon chronon = 0;
    state.ResumeTiming();

    int64_t left = records;
    while (left > 0) {
      const size_t n = left < 64 ? static_cast<size_t>(left) : 64;
      Check(db.Append("calls", gen.NextBatch(n), ++chronon).status());
      left -= static_cast<int64_t>(n);
    }
    if (logged) Check(w->Sync());

    state.PauseTiming();
    if (logged) {
      bytes_logged = w->stats().bytes_logged;
      syncs = w->stats().syncs;
      Check(w->Close());
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["records"] = static_cast<double>(records);
  state.counters["wal_bytes"] = static_cast<double>(bytes_logged);
  state.counters["syncs"] = static_cast<double>(syncs);
  fs::remove_all(dir);
}

void LoggedAppend_NoWal(benchmark::State& state) {
  RunAppends(state, false, wal::FsyncPolicy::kNever);
}
void LoggedAppend_FsyncOff(benchmark::State& state) {
  RunAppends(state, true, wal::FsyncPolicy::kNever);
}
void LoggedAppend_FsyncBatch(benchmark::State& state) {
  RunAppends(state, true, wal::FsyncPolicy::kBatch);
}
void LoggedAppend_FsyncEveryRecord(benchmark::State& state) {
  RunAppends(state, true, wal::FsyncPolicy::kEveryRecord);
}
BENCHMARK(LoggedAppend_NoWal)->Arg(Scaled(1 << 14, 1 << 10));
BENCHMARK(LoggedAppend_FsyncOff)->Arg(Scaled(1 << 14, 1 << 10));
BENCHMARK(LoggedAppend_FsyncBatch)->Arg(Scaled(1 << 14, 1 << 10));
BENCHMARK(LoggedAppend_FsyncEveryRecord)->Arg(Scaled(1 << 13, 1 << 8));

// Recovery wall time as a function of how much log tail must be replayed.
// `tail_ticks` appends land after the checkpoint (0 = image only).
void RecoveryCost(benchmark::State& state) {
  const int64_t total_ticks = 2048;
  const int64_t tail_ticks = state.range(0);
  const std::string dir = ScratchDir("recover");
  {
    wal::WalOptions options;
    options.fsync = wal::FsyncPolicy::kNever;
    std::unique_ptr<wal::Wal> w = Unwrap(wal::Wal::Open(dir, options));
    ChronicleDatabase db;
    ApplyDdl(&db);
    wal::WalMutationLog log(w.get(), &db);
    db.AttachMutationLog(&log);
    CallRecordOptions gen_options;
    gen_options.num_accounts = 4096;
    CallRecordGenerator gen(gen_options);
    Chronon chronon = 0;
    for (int64_t i = 0; i < total_ticks; ++i) {
      if (i == total_ticks - tail_ticks) Check(w->WriteCheckpoint(db));
      Check(db.Append("calls", gen.NextBatch(64), ++chronon).status());
    }
    Check(w->Close());
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    ChronicleDatabase fresh;
    ApplyDdl(&fresh);
    wal::RecoveryReport report = Unwrap(wal::Recover(dir, &fresh));
    replayed = report.replay.records_applied;
    benchmark::DoNotOptimize(fresh.appends_processed());
  }
  state.counters["tail_records_replayed"] = static_cast<double>(replayed);
  fs::remove_all(dir);
}
BENCHMARK(RecoveryCost)->Arg(0)->Arg(256)->Arg(Scaled(1024, 256))->Arg(Scaled(2048, 512));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
