// Experiment E14 — the tiered chronicle store (src/store).
//
// Three questions, one CDR workload:
//   * SpillThroughput — how fast can appends flow through a tiered
//     chronicle while rows age out of the hot window into sealed segment
//     files? Reports the warm tier's on-disk footprint against the
//     in-memory-equivalent bytes of the same rows: the acceptance bound is
//     disk <= 1/3 of in-memory (varint SN deltas + length-prefixed serde
//     vs. deque-of-Tuple overhead).
//   * Backfill — RegisterViewWithBackfill over a mostly-on-disk history:
//     rows/sec streamed through the k-way merge into view maintenance.
//     Acceptance: >= 1M rows/sec.
//   * WarmScan — the merged ScanRetained path (segments then hot deque)
//     that window queries and the naive baseline ride.
//
// Smoke runs write BENCH_E14.json; CI checks both acceptance counters.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "bench_common.h"
#include "db/database.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

namespace fs = std::filesystem;

// Every bench instance gets a private scratch directory under /tmp.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("chronicle_e14_" + name + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DatabaseOptions TieredOptions(const std::string& dir, size_t hot_rows) {
  DatabaseOptions options;
  options.storage.data_dir = dir;
  options.storage.hot_rows = hot_rows;
  options.storage.segment_rows = 4096;
  options.observability.metrics = false;  // measure the store, not obs
  return options;
}

// --- SpillThroughput: timed append loop; most rows end up on disk.
void SpillThroughput(benchmark::State& state) {
  const int64_t batch = state.range(0);
  ScratchDir dir("spill");
  ChronicleDatabase db(TieredOptions(dir.path(), /*hot_rows=*/8192));
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::Tiered(8192))
            .status());
  CallRecordGenerator gen;
  uint64_t rows = 0;
  for (auto _ : state) {
    Check(db.Append("calls", gen.NextBatch(static_cast<size_t>(batch)))
              .status());
    rows += static_cast<uint64_t>(batch);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);

  const store::TieredStore* store = db.tiered_store();
  if (store != nullptr && store->WarmRows(0) > 0) {
    const store::WarmTierInfo warm = store->TierOf(0);
    state.counters["warm_rows"] = static_cast<double>(warm.rows);
    state.counters["warm_disk_bytes"] = static_cast<double>(warm.bytes);
    state.counters["warm_raw_bytes"] = static_cast<double>(warm.raw_bytes);
    // Acceptance: <= 0.3333 (on-disk bytes vs in-memory footprint).
    state.counters["disk_over_memory"] =
        static_cast<double>(warm.bytes) / static_cast<double>(warm.raw_bytes);
  }
}
BENCHMARK(SpillThroughput)->ArgNames({"batch"})->Args({16})->Args({256});

// --- Backfill: a late view over a mostly-on-disk history. Each iteration
// registers a fresh view with backfill (full replay), then drops it.
void Backfill(benchmark::State& state) {
  const bool compiled = state.range(0) != 0;
  ScratchDir dir("backfill");
  DatabaseOptions options = TieredOptions(dir.path(), /*hot_rows=*/4096);
  options.maintenance.use_compiled_plans = compiled;
  ChronicleDatabase db(options);
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::Tiered(4096))
            .status());
  CallRecordGenerator gen;
  const int64_t total_rows = Scaled(512000, 16000);
  const int64_t batch = 64;
  for (int64_t appended = 0; appended < total_rows; appended += batch) {
    Check(db.Append("calls", gen.NextBatch(static_cast<size_t>(batch)))
              .status());
  }

  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      scan->schema(), {"caller"},
      {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")}));

  uint64_t rows_replayed = 0;
  int view = 0;
  for (auto _ : state) {
    const std::string name = "late_" + std::to_string(view++);
    BackfillReport report =
        Unwrap(db.RegisterViewWithBackfill(name, scan, spec));
    rows_replayed += report.rows_replayed;
    state.PauseTiming();
    Check(db.DropView(name));
    state.ResumeTiming();
  }
  // Acceptance: >= 1e6.
  state.counters["backfill_rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_replayed), benchmark::Counter::kIsRate);
  state.counters["history_rows"] = static_cast<double>(total_rows);
}
BENCHMARK(Backfill)->ArgNames({"compiled"})->Args({0})->Args({1});

// --- WarmScan: the merged warm+hot ScanRetained visitor path.
void WarmScan(benchmark::State& state) {
  ScratchDir dir("scan");
  ChronicleDatabase db(TieredOptions(dir.path(), /*hot_rows=*/4096));
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::Tiered(4096))
            .status());
  CallRecordGenerator gen;
  const int64_t total_rows = Scaled(512000, 16000);
  for (int64_t appended = 0; appended < total_rows; appended += 64) {
    Check(db.Append("calls", gen.NextBatch(64)).status());
  }
  const Chronicle* chron = Unwrap(db.group().GetChronicle(0));
  uint64_t rows = 0;
  for (auto _ : state) {
    uint64_t n = 0;
    int64_t minutes = 0;
    Check(chron->ScanRetained([&](const ChronicleRow& row) {
      ++n;
      minutes += row.values[2].int64();
    }));
    benchmark::DoNotOptimize(minutes);
    rows += n;
  }
  state.counters["scan_rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(WarmScan);

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
