// Experiment E16 — network ingest front-end (src/net).
//
// One question: what does the wire cost? NetworkedAppend drives the full
// loopback path — HTTP/1.1 keep-alive framing, TSV decode, the bounded
// session queue, the ingest worker's AppendMany, view maintenance —
// against LocalAppendMany, the same slab applied through
// cql::Session::AppendRows with no network in the way. Both pay identical
// maintenance (the by_caller GroupBy view), so the gap is purely the
// front-end.
//
// Acceptance (CI network-ingest gate, tools/check_network_ingest.py): at
// batch_rows >= 256 on loopback, networked ingest sustains at least 0.5x
// the local AppendMany rate. The `cores` counter records
// std::thread::hardware_concurrency() so the gate can derate on
// single-core runners (the server's connection thread, the ingest worker,
// and the client all want their own core).
//
// Smoke runs write BENCH_E16.json; the gate re-runs the bench with
// repetitions and reads the _median entries.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "cql/session.h"
#include "net/http_client.h"
#include "net/wire_service.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

constexpr char kDdl[] =
    "CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64, "
    "charge DOUBLE) RETAIN LAST 8;"
    "CREATE VIEW by_caller AS "
    "SELECT caller, SUM(minutes) AS m, COUNT(*) AS n "
    "FROM calls GROUP BY caller;";

std::unique_ptr<cql::Session> OpenSession() {
  DatabaseOptions options;
  options.observability.metrics = false;  // measure ingest, not obs
  auto session = Unwrap(cql::Session::Open(std::move(options)));
  Check(session->ExecuteScript(kDdl).status());
  return session;
}

// One tick as the /v1/append TSV body (row per line, schema order).
std::string EncodeTick(const std::vector<Tuple>& rows) {
  std::string body;
  for (const Tuple& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) body += "\t";
      const Value& v = row[c];
      if (v.is_int64()) {
        body += std::to_string(v.int64());
      } else if (v.is_double()) {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.17g", v.dbl());
        body += buf;
      } else if (v.is_string()) {
        body += v.str();
      } else {
        body += "\\N";
      }
    }
    body += "\n";
  }
  return body;
}

// --- LocalAppendMany: the oracle rate — the same ticks through
// cql::Session::AppendRows on the caller's thread, no network.
void LocalAppendMany(benchmark::State& state) {
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  auto session = OpenSession();

  CallRecordGenerator gen;
  const int64_t batches_per_iter = Scaled(64, 8);
  std::vector<std::vector<Tuple>> pool;
  pool.reserve(static_cast<size_t>(batches_per_iter));
  for (int64_t b = 0; b < batches_per_iter; ++b) {
    pool.push_back(gen.NextBatch(batch_rows));
  }

  uint64_t rows = 0;
  for (auto _ : state) {
    for (const std::vector<Tuple>& batch : pool) {
      Check(session->AppendRows("calls", {batch}).status());
    }
    rows += static_cast<uint64_t>(batches_per_iter) * batch_rows;
  }

  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["batch_rows"] = static_cast<double>(batch_rows);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(LocalAppendMany)
    ->ArgNames({"batch_rows"})
    ->Args({256})
    ->Args({1024})
    ->UseRealTime();

// --- NetworkedAppend: the same slab over the wire. Bodies are encoded
// outside timing (the client's serialization cost is not the server's
// ingest cost); each iteration POSTs every body on one keep-alive
// connection and then drains, so the measured region covers accept,
// decode, queue, apply, and maintenance end to end.
void NetworkedAppend(benchmark::State& state) {
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  auto session = OpenSession();

  net::NetOptions net;
  // The bench measures throughput, not backpressure: the queue must never
  // reject (the worker drains concurrently with the client's next POST).
  net.session_queue_rows = 1u << 22;
  net::WireService service(session.get(), net);
  Check(service.Start(0));
  net::HttpClient client(service.port());

  auto open = Unwrap(client.Post("/v1/session", ""));
  const std::string marker = "\"session\":\"";
  const size_t at = open.body.find(marker);
  if (at == std::string::npos) {
    state.SkipWithError("session open failed");
    return;
  }
  const size_t start = at + marker.size();
  const std::string sid =
      open.body.substr(start, open.body.find('"', start) - start);
  const std::vector<std::pair<std::string, std::string>> headers = {
      {"X-Chronicle-Session", sid}};

  CallRecordGenerator gen;
  const int64_t batches_per_iter = Scaled(64, 8);
  std::vector<std::string> bodies;
  bodies.reserve(static_cast<size_t>(batches_per_iter));
  for (int64_t b = 0; b < batches_per_iter; ++b) {
    bodies.push_back(EncodeTick(gen.NextBatch(batch_rows)));
  }

  uint64_t rows = 0;
  for (auto _ : state) {
    for (const std::string& body : bodies) {
      auto resp =
          Unwrap(client.Post("/v1/append?chronicle=calls", body, headers));
      if (resp.status != 202) {
        state.SkipWithError("append rejected");
        break;
      }
    }
    auto drained = Unwrap(client.Post("/v1/drain", "", headers));
    if (drained.status != 200) {
      state.SkipWithError("drain failed");
      break;
    }
    rows += static_cast<uint64_t>(batches_per_iter) * batch_rows;
  }
  service.Stop();

  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["batch_rows"] = static_cast<double>(batch_rows);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(NetworkedAppend)
    ->ArgNames({"batch_rows"})
    ->Args({256})
    ->Args({1024})
    ->UseRealTime();

// --- NetworkedAppendTraced: the NetworkedAppend path with the request
// tracer ATTACHED, swept over the sampling rate. At sample_permille=0
// every request takes the unsampled fast path (RED counters only, no
// span emission); at 10 (1%) one request in a hundred records the full
// seven-stage span tree. The CI trace-overhead gate
// (tools/check_trace_overhead.py) requires the 1% rate to stay within
// 5% of the 0% rate — head sampling must make tracing affordable to
// leave on in production.
void NetworkedAppendTraced(benchmark::State& state) {
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  const double sample_rate = static_cast<double>(state.range(1)) / 1000.0;

  DatabaseOptions options;
  options.observability.metrics = false;  // isolate the tracer's cost
  options.set_request_trace(4096, sample_rate);
  auto session = Unwrap(cql::Session::Open(std::move(options)));
  Check(session->ExecuteScript(kDdl).status());

  net::NetOptions net;
  net.session_queue_rows = 1u << 22;
  net::WireService service(session.get(), net);
  Check(service.Start(0));
  net::HttpClient client(service.port());

  auto open = Unwrap(client.Post("/v1/session", ""));
  const std::string marker = "\"session\":\"";
  const size_t at = open.body.find(marker);
  if (at == std::string::npos) {
    state.SkipWithError("session open failed");
    return;
  }
  const size_t start = at + marker.size();
  const std::string sid =
      open.body.substr(start, open.body.find('"', start) - start);
  const std::vector<std::pair<std::string, std::string>> headers = {
      {"X-Chronicle-Session", sid}};

  CallRecordGenerator gen;
  const int64_t batches_per_iter = Scaled(64, 8);
  std::vector<std::string> bodies;
  bodies.reserve(static_cast<size_t>(batches_per_iter));
  for (int64_t b = 0; b < batches_per_iter; ++b) {
    bodies.push_back(EncodeTick(gen.NextBatch(batch_rows)));
  }

  uint64_t rows = 0;
  for (auto _ : state) {
    for (const std::string& body : bodies) {
      auto resp =
          Unwrap(client.Post("/v1/append?chronicle=calls", body, headers));
      if (resp.status != 202) {
        state.SkipWithError("append rejected");
        break;
      }
    }
    auto drained = Unwrap(client.Post("/v1/drain", "", headers));
    if (drained.status != 200) {
      state.SkipWithError("drain failed");
      break;
    }
    rows += static_cast<uint64_t>(batches_per_iter) * batch_rows;
  }
  service.Stop();

  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["batch_rows"] = static_cast<double>(batch_rows);
  state.counters["sample_permille"] = static_cast<double>(state.range(1));
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(NetworkedAppendTraced)
    ->ArgNames({"batch_rows", "sample_permille"})
    ->Args({256, 0})
    ->Args({256, 10})
    ->UseRealTime();

// --- NetworkedSql: statement round-trip latency over the wire — a small
// SELECT against a warm view, statements/sec on one keep-alive
// connection. Bounds the per-request overhead (framing + dispatch +
// JSON render) separately from bulk ingest.
void NetworkedSql(benchmark::State& state) {
  auto session = OpenSession();
  net::WireService service(session.get(), net::NetOptions{});
  Check(service.Start(0));
  net::HttpClient client(service.port());

  auto open = Unwrap(client.Post("/v1/session", ""));
  const std::string marker = "\"session\":\"";
  const size_t at = open.body.find(marker);
  if (at == std::string::npos) {
    state.SkipWithError("session open failed");
    return;
  }
  const size_t start = at + marker.size();
  const std::string sid =
      open.body.substr(start, open.body.find('"', start) - start);
  const std::vector<std::pair<std::string, std::string>> headers = {
      {"X-Chronicle-Session", sid}};

  CallRecordGenerator gen;
  Check(session->AppendRows("calls", {gen.NextBatch(256)}).status());

  uint64_t statements = 0;
  for (auto _ : state) {
    auto resp = Unwrap(
        client.Post("/v1/sql", "SELECT * FROM by_caller;", headers));
    if (resp.status != 200) {
      state.SkipWithError("sql failed");
      break;
    }
    benchmark::DoNotOptimize(resp.body.data());
    ++statements;
  }
  service.Stop();

  state.counters["statements_per_sec"] = benchmark::Counter(
      static_cast<double>(statements), benchmark::Counter::kIsRate);
}
BENCHMARK(NetworkedSql)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
