// Experiment E13 — compiled delta plans vs the tree-walking interpreter.
//
// Reruns the E6 expression shapes (key-join chains, union fan-ins, group-by
// summaries) through three execution engines on identical append streams:
//   * engine=0 Interpreted — DeltaEngine::ComputeDelta, fresh vectors per
//     operator, per-node memo probes, a heap Status per unmatched join key;
//   * engine=1 Compiled (row) — DeltaPlan::ExecuteToRows over one
//     PlanScratch reused across ticks (slot buffers cleared not freed,
//     arena reset, retained dedupe/group tables), relation probes through
//     the status-free Relation::FindByKey, columnar kernels disabled;
//   * engine=2 Columnar — same plan, vectorizable slots run the typed
//     column kernels (exec/vector_kernels.h) and only materialize rows at
//     the root.
// All engines produce byte-identical deltas (enforced by
// tests/plan_equivalence_fuzz_test.cc), so the gaps between the curves are
// pure execution overhead — the constant factor Theorem 4.2 does not see.
// Pass criteria (EXPERIMENTS.md): compiled >= 2x interpreted appends/sec
// on UnionFan at u=64, and columnar >= 2x row-compiled on UnionFan
// u=64/batch=256 and GroupedSummary batch=256 (CI derates via the cores
// counter, tools/check_columnar_speedup.py).

#include <benchmark/benchmark.h>

#include <fstream>
#include <thread>

#include "algebra/delta_engine.h"
#include "bench_common.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan_compiler.h"
#include "obs/export.h"
#include "storage/chronicle_group.h"

namespace chronicle {
namespace bench {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema RelSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

struct Setup {
  ChronicleGroup group;
  ChronicleId calls;
  std::unique_ptr<Relation> rel;
  Rng rng{17};

  explicit Setup(int64_t rel_rows) {
    calls = Unwrap(group.CreateChronicle("calls", CallSchema(),
                                         RetentionPolicy::None()));
    rel = std::make_unique<Relation>(
        Unwrap(Relation::Make("cust", RelSchema(), "acct")));
    for (int64_t i = 0; i < rel_rows; ++i) {
      Check(rel->Insert(Tuple{Value(i), Value("NJ")}));
    }
  }

  CaExprPtr Scan() {
    return Unwrap(CaExpr::Scan(*Unwrap(group.GetChronicle(calls))));
  }

  AppendEvent NextEvent(int64_t key_bound, int64_t batch) {
    std::vector<Tuple> tuples;
    tuples.reserve(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      tuples.push_back(Tuple{Value(static_cast<int64_t>(rng.Uniform(
                                 static_cast<uint64_t>(key_bound)))),
                             Value("NJ"),
                             Value(static_cast<int64_t>(rng.Uniform(100)))});
    }
    return Unwrap(group.Append(calls, std::move(tuples)));
  }
};

// Drives one plan through the selected engine (0 = interpreted, 1 = row
// compiled, 2 = columnar compiled) on identical event streams. `batch`
// tuples per append: the executors are batch-at-a-time, so larger ticks
// amortize fixed costs while the interpreter re-pays per node — and give
// the columnar kernels enough rows per loop to matter.
void RunEngine(benchmark::State& state, Setup* setup, CaExprPtr plan,
               int64_t engine_kind, int64_t key_bound, int64_t batch) {
  DeltaEngine engine;
  exec::DeltaPlanPtr compiled_plan;
  exec::PlanScratch scratch;
  scratch.set_columnar_enabled(engine_kind == 2);
  if (engine_kind != 0) compiled_plan = Unwrap(exec::CompileDeltaPlan(plan));
  // Pre-append the event pool outside timing: the measured region is the
  // delta execution the engines differ on, not row generation + storage
  // append (identical for all three and re-executable per event).
  constexpr size_t kPool = 64;
  std::vector<AppendEvent> events;
  events.reserve(kPool);
  for (size_t i = 0; i < kPool; ++i) {
    events.push_back(setup->NextEvent(key_bound, batch));
  }
  size_t next = 0;
  size_t rows = 0;
  for (auto _ : state) {
    const AppendEvent& event = events[next];
    next = (next + 1) % kPool;
    if (engine_kind != 0) {
      const std::vector<ChronicleRow>* delta =
          Unwrap(compiled_plan->ExecuteToRows(event, &scratch, nullptr));
      rows += delta->size();
      benchmark::DoNotOptimize(delta);
    } else {
      std::vector<ChronicleRow> delta =
          Unwrap(engine.ComputeDelta(*plan, event, nullptr, nullptr));
      rows += delta.size();
      benchmark::DoNotOptimize(delta);
    }
  }
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["rows_per_delta"] =
      static_cast<double>(rows) / static_cast<double>(state.iterations());
  state.counters["engine"] = static_cast<double>(engine_kind);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

// --- UnionFan(u): the acceptance shape. u guarded selections over one
// shared scan, unioned; the compiler lowers the scan once and the
// interpreter memo-probes it u times per tick.
CaExprPtr UnionFanPlan(Setup* setup, int64_t u) {
  CaExprPtr scan = setup->Scan();
  CaExprPtr plan =
      Unwrap(CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))));
  for (int64_t i = 1; i < u; ++i) {
    CaExprPtr branch =
        Unwrap(CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(i % 90)))));
    plan = Unwrap(CaExpr::Union(plan, branch));
  }
  return plan;
}

void UnionFan(benchmark::State& state) {
  Setup setup(16);
  RunEngine(state, &setup, UnionFanPlan(&setup, state.range(0)),
            /*engine_kind=*/state.range(1), /*key_bound=*/16,
            /*batch=*/state.range(2));
  state.counters["u"] = static_cast<double>(state.range(0));
  state.counters["batch"] = static_cast<double>(state.range(2));
}
BENCHMARK(UnionFan)
    ->ArgNames({"u", "engine", "batch"})
    ->Args({4, 0, 4})
    ->Args({4, 1, 4})
    ->Args({4, 2, 4})
    ->Args({16, 0, 4})
    ->Args({16, 1, 4})
    ->Args({16, 2, 4})
    ->Args({64, 0, 4})
    ->Args({64, 1, 4})
    ->Args({64, 2, 4})
    ->Args({64, 1, 256})
    ->Args({64, 2, 256});

// --- KeyJoinChain(j): j stacked relation key joins (the CA_join fast
// path); the compiled engine's win here is the status-free miss path and
// the absence of per-node vectors.
void KeyJoinChain(benchmark::State& state) {
  const int64_t j = state.range(0);
  Setup setup(Scaled(100000, 1000));
  CaExprPtr plan = setup.Scan();
  for (int64_t i = 0; i < j; ++i) {
    plan = Unwrap(CaExpr::RelKeyJoin(plan, setup.rel.get(), "caller"));
  }
  // Half the probes miss: key_bound = 2x relation size.
  RunEngine(state, &setup, plan, /*engine_kind=*/state.range(1),
            /*key_bound=*/Scaled(200000, 2000), /*batch=*/4);
  state.counters["j"] = static_cast<double>(j);
}
BENCHMARK(KeyJoinChain)
    ->ArgNames({"j", "engine"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2});

// --- GroupedSummary(batch): selection + group-by over growing tick sizes;
// exercises the retained group table, the reused key probe, and the arena
// that carries the group output order.
void GroupedSummary(benchmark::State& state) {
  Setup setup(16);
  CaExprPtr plan = Unwrap(CaExpr::GroupBySeq(
      Unwrap(CaExpr::Select(setup.Scan(),
                            Gt(Col("minutes"), Lit(Value(10))))),
      {"caller"}, {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")}));
  RunEngine(state, &setup, plan, /*engine_kind=*/state.range(1),
            /*key_bound=*/64, /*batch=*/state.range(0));
  state.counters["batch"] = static_cast<double>(state.range(0));
}
BENCHMARK(GroupedSummary)
    ->ArgNames({"batch", "engine"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({256, 1})
    ->Args({256, 2});

// --- DbUnionFan(obs): the acceptance shape driven through the full
// ChronicleDatabase append path (routing, compiled execution, view fold),
// at three instrumentation levels: obs=0 none, obs=1 metrics + tracing,
// obs=2 metrics + tracing + the per-slot plan profiler (sampled ticks pay
// two clock reads per instruction). The obs/ subsystem's acceptance bound
// is that each instrumented curve stays within 5% of the one below it;
// tools/check_obs_overhead.py asserts both ratios from this bench's smoke
// JSON report. The obs>=1 runs also validate the JSON exporter against its
// own grammar checker and, in smoke mode, dump the snapshot to
// STATS_E13.json for CI to parse.
void DbUnionFan(benchmark::State& state) {
  const int64_t u = 64;
  const int64_t obs = state.range(0);
  ChronicleDatabase db(DatabaseOptions()
                           .set_metrics(obs != 0)
                           .set_trace_capacity(obs != 0 ? 256 : 0)
                           .set_profile_plan_slots(obs >= 2));
  Check(db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  CaExprPtr plan =
      Unwrap(CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))));
  for (int64_t i = 1; i < u; ++i) {
    CaExprPtr branch =
        Unwrap(CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(i % 90)))));
    plan = Unwrap(CaExpr::Union(plan, branch));
  }
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      plan->schema(), {"caller"}, {AggSpec::Sum("minutes", "m")}));
  Check(db.CreateView("fan", plan, spec).status());

  Rng rng{17};
  Chronon chronon = 0;
  for (auto _ : state) {
    std::vector<Tuple> tuples;
    tuples.reserve(4);
    for (int64_t i = 0; i < 4; ++i) {
      tuples.push_back(Tuple{Value(static_cast<int64_t>(rng.Uniform(16))),
                             Value("NJ"),
                             Value(static_cast<int64_t>(rng.Uniform(100)))});
    }
    Check(db.Append("calls", std::move(tuples), ++chronon).status());
  }
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["obs"] = static_cast<double>(obs);

  if (obs != 0) {
    const std::string json = obs::RenderJson(db.CollectStats());
    Check(obs::ValidateJson(json));
    if (obs >= 2) {
      // The profiler must actually have sampled: a silent no-op would make
      // the overhead gate vacuous.
      const std::string explain = Unwrap(db.ExplainViewJson("fan"));
      Check(obs::ValidateJson(explain));
      if (explain.find("\"sampled_ticks\":0") != std::string::npos) {
        std::fprintf(stderr, "E13: profiler enabled but no sampled ticks\n");
        std::abort();
      }
    }
    if (SmokeMode()) {
      std::ofstream out(SmokeArtifactFile("STATS_E13.json"));
      out << json << "\n";
    }
  }
}
BENCHMARK(DbUnionFan)->ArgNames({"obs"})->Args({0})->Args({1})->Args({2});

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
