// Experiment E6 — Theorem 4.2 parameter sweep.
//
// Per-append delta-computation cost as a function of the expression shape:
//   * KeyJoinChain(j)  — j stacked key joins: cost ~ j·log|R| (or ~j with
//     hashing); the (u·|R|)^j blow-up does NOT occur in CA_join.
//   * CrossChain(j)    — j stacked cross products with a 32-row relation:
//     output (and cost) grows as |R|^j, the Theorem 4.2 worst case.
//   * UnionFan(u)      — u-way union fan-in: cost linear in u.
// DeltaStats counters are exported so the row counts can be checked
// against the formulas, not just the timings.

#include <benchmark/benchmark.h>

#include <cmath>

#include "algebra/delta_engine.h"
#include "bench_common.h"
#include "common/random.h"
#include "storage/chronicle_group.h"

namespace chronicle {
namespace bench {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema RelSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

struct Setup {
  ChronicleGroup group;
  ChronicleId calls;
  std::unique_ptr<Relation> rel;
  Rng rng{17};

  explicit Setup(int64_t rel_rows) {
    calls = Unwrap(group.CreateChronicle("calls", CallSchema(),
                                         RetentionPolicy::None()));
    rel = std::make_unique<Relation>(
        Unwrap(Relation::Make("cust", RelSchema(), "acct")));
    for (int64_t i = 0; i < rel_rows; ++i) {
      Check(rel->Insert(Tuple{Value(i), Value("NJ")}));
    }
  }

  CaExprPtr Scan() {
    return Unwrap(CaExpr::Scan(*Unwrap(group.GetChronicle(calls))));
  }

  AppendEvent NextEvent(int64_t key_bound) {
    return Unwrap(group.Append(
        calls, {Tuple{Value(static_cast<int64_t>(rng.Uniform(
                          static_cast<uint64_t>(key_bound)))),
                      Value("NJ"), Value(1)}}));
  }
};

void ReportStats(benchmark::State& state, const DeltaStats& stats,
                 int64_t iterations) {
  state.counters["rows_per_delta"] =
      static_cast<double>(stats.total_rows_produced) /
      static_cast<double>(iterations);
  state.counters["max_intermediate_rows"] =
      static_cast<double>(stats.max_intermediate_rows);
}

void KeyJoinChain(benchmark::State& state) {
  const int64_t j = state.range(0);
  Setup setup(100000);
  CaExprPtr plan = setup.Scan();
  for (int64_t i = 0; i < j; ++i) {
    plan = Unwrap(CaExpr::RelKeyJoin(plan, setup.rel.get(), "caller"));
  }
  DeltaEngine engine;
  DeltaStats stats;
  for (auto _ : state) {
    AppendEvent event = setup.NextEvent(100000);
    auto delta = engine.ComputeDelta(*plan, event, &stats);
    benchmark::DoNotOptimize(delta);
  }
  state.counters["j"] = static_cast<double>(j);
  ReportStats(state, stats, state.iterations());
}
BENCHMARK(KeyJoinChain)->DenseRange(0, Scaled(4, 2));

void CrossChain(benchmark::State& state) {
  const int64_t j = state.range(0);
  constexpr int64_t kSmallRel = 32;
  Setup setup(kSmallRel);
  CaExprPtr plan = setup.Scan();
  for (int64_t i = 0; i < j; ++i) {
    plan = Unwrap(CaExpr::RelCross(plan, setup.rel.get()));
  }
  DeltaEngine engine;
  DeltaStats stats;
  for (auto _ : state) {
    AppendEvent event = setup.NextEvent(kSmallRel);
    auto delta = engine.ComputeDelta(*plan, event, &stats);
    benchmark::DoNotOptimize(delta);
  }
  state.counters["j"] = static_cast<double>(j);
  state.counters["expected_rows"] =
      std::pow(static_cast<double>(kSmallRel), static_cast<double>(j));
  ReportStats(state, stats, state.iterations());
}
BENCHMARK(CrossChain)->DenseRange(0, Scaled(3, 1));

void UnionFan(benchmark::State& state) {
  const int64_t u = state.range(0);
  Setup setup(16);
  CaExprPtr scan = setup.Scan();
  CaExprPtr plan =
      Unwrap(CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))));
  for (int64_t i = 1; i < u; ++i) {
    CaExprPtr branch =
        Unwrap(CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(i)))));
    plan = Unwrap(CaExpr::Union(plan, branch));
  }
  DeltaEngine engine;
  DeltaStats stats;
  for (auto _ : state) {
    AppendEvent event = setup.NextEvent(16);
    auto delta = engine.ComputeDelta(*plan, event, &stats);
    benchmark::DoNotOptimize(delta);
  }
  state.counters["u"] = static_cast<double>(u);
  ReportStats(state, stats, state.iterations());
}
BENCHMARK(UnionFan)->RangeMultiplier(2)->Range(1, Scaled(32, 4));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
