// Experiment E15 — sharded multi-core ingest (src/shard).
//
// One question: does hash-partitioning the chronicle across N shard
// engines — each with its own SPSC lane, append path, and maintenance
// worker — actually buy multi-core ingest throughput? ShardedIngest
// drives the async pipeline (EnqueueAppend + Flush) at shards in
// {1, 2, 4} over a CDR workload with a per-tick GroupBy view, reporting
// appends/sec end to end (split + enqueue + per-shard apply + view
// maintenance).
//
// Acceptance (CI shard-scaling gate, tools/check_shard_scaling.py): on a
// >= 4-core runner, 4-shard throughput >= 2x 1-shard. The `cores` counter
// records std::thread::hardware_concurrency() so the gate can derate on
// smaller machines instead of failing on hardware the bench cannot use.
//
// Smoke runs write BENCH_E15.json; the gate re-runs the bench with
// repetitions and reads the _median entries.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_common.h"
#include "shard/sharded_db.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

using shard::ShardedDatabase;

constexpr size_t kBatchRows = 256;

std::unique_ptr<ShardedDatabase> OpenSharded(size_t num_shards) {
  DatabaseOptions options;
  options.sharding.num_shards = num_shards;
  options.sharding.queue_capacity = 1024;
  options.observability.metrics = false;  // measure ingest, not obs
  auto db = Unwrap(ShardedDatabase::Open(std::move(options)));
  Check(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema())
            .status());
  // A per-append GroupBy view so every tick pays realistic maintenance;
  // keyed on the partition column, so per-shard state never overlaps.
  Check(db->CreateView(
              "by_caller",
              [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
              Unwrap(SummarySpec::GroupBy(
                  CallRecordGenerator::RecordSchema(), {"caller"},
                  {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")})))
            .status());
  return db;
}

// --- ShardedIngest: the async pipeline, one producer feeding N shard
// workers. Each iteration enqueues a fixed slab of pre-generated batches
// and drains it with Flush, so the measured region covers the full path:
// partition split, SPSC handoff, per-shard append, view maintenance.
void ShardedIngest(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  auto db = OpenSharded(shards);

  // Pre-generate the workload outside timing; enqueue copies per pass so
  // every iteration routes identical rows.
  CallRecordGenerator gen;
  const int64_t batches_per_iter = Scaled(64, 8);
  std::vector<std::vector<Tuple>> pool;
  pool.reserve(static_cast<size_t>(batches_per_iter));
  for (int64_t b = 0; b < batches_per_iter; ++b) {
    pool.push_back(gen.NextBatch(kBatchRows));
  }

  Check(db->StartIngest(/*num_producers=*/1));
  uint64_t rows = 0;
  for (auto _ : state) {
    for (const std::vector<Tuple>& batch : pool) {
      Check(db->EnqueueAppend(0, "calls", batch));
    }
    Check(db->Flush());
    rows += static_cast<uint64_t>(batches_per_iter) * kBatchRows;
  }
  Check(db->StopIngest());

  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["batch_rows"] = static_cast<double>(kBatchRows);
}
BENCHMARK(ShardedIngest)
    ->ArgNames({"shards"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->UseRealTime();

// --- SyncRoutedAppend: the deterministic synchronous path (the
// equivalence-fuzz path) for reference — split cost plus serial per-shard
// applies on the caller's thread. No parallelism: the gap between this
// and ShardedIngest at the same shard count is what the workers buy.
void SyncRoutedAppend(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  auto db = OpenSharded(shards);
  CallRecordGenerator gen;
  std::vector<Tuple> batch = gen.NextBatch(kBatchRows);
  uint64_t rows = 0;
  for (auto _ : state) {
    Check(db->Append("calls", batch).status());
    rows += kBatchRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(SyncRoutedAppend)->ArgNames({"shards"})->Args({1})->Args({4});

// --- MergedScan: cross-shard summary read cost — VisitGroups over every
// shard, AggSpec::Merge, finalize through the scratch view.
void MergedScan(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  auto db = OpenSharded(shards);
  CallRecordGenerator gen;
  const int64_t setup_batches = Scaled(256, 16);
  for (int64_t b = 0; b < setup_batches; ++b) {
    Check(db->Append("calls", gen.NextBatch(kBatchRows)).status());
  }
  uint64_t rows = 0;
  for (auto _ : state) {
    std::vector<Tuple> out = Unwrap(db->ScanView("by_caller"));
    benchmark::DoNotOptimize(out.data());
    rows += out.size();
  }
  state.counters["groups_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(MergedScan)->ArgNames({"shards"})->Args({1})->Args({4});

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
