// Experiment E5 — the §1 "subsecond summary queries" claim.
//
// Latency of the dollar_balance summary query. Series:
//   * ViewLookupHash    — point lookup on the persistent view, hash index;
//     flat as |C| grows (and as |V| grows).
//   * ViewLookupOrdered — same with the ordered index: O(log |V|).
//   * ChronicleScan     — answering the query the relational way, by
//     scanning the stored chronicle: O(|C|) and impossible once the
//     chronicle is discarded.

#include <benchmark/benchmark.h>

#include "baseline/naive_engine.h"
#include "bench_common.h"
#include "db/database.h"
#include "workload/banking.h"

namespace chronicle {
namespace bench {
namespace {

struct Setup {
  ChronicleDatabase db;
  int64_t stream_size;

  Setup(int64_t size, RetentionPolicy retention, IndexMode view_mode)
      : stream_size(size) {
    Check(db.CreateChronicle("txns", BankingGenerator::RecordSchema(), retention)
              .status());
    CaExprPtr scan = Unwrap(db.ScanChronicle("txns"));
    SummarySpec spec = Unwrap(SummarySpec::GroupBy(
        scan->schema(), {"acct"}, {AggSpec::Sum("amount", "balance")}));
    Check(db.CreateView("balance", scan, spec, {}, view_mode).status());

    BankingGenerator gen(BankingOptions{});
    Chronon chronon = 0;
    int64_t remaining = size;
    while (remaining > 0) {
      const size_t n = remaining < 256 ? static_cast<size_t>(remaining) : 256;
      Check(db.Append("txns", gen.NextBatch(n), ++chronon).status());
      remaining -= static_cast<int64_t>(n);
    }
  }
};

void RunViewLookup(benchmark::State& state, IndexMode mode) {
  Setup setup(state.range(0), RetentionPolicy::None(), mode);
  Rng rng(3);
  for (auto _ : state) {
    // Query a random hot account (Zipf head guarantees presence).
    Result<Tuple> row = setup.db.QueryView(
        "balance", {Value(static_cast<int64_t>(rng.Uniform(16)))});
    benchmark::DoNotOptimize(row);
  }
  state.counters["chronicle_size"] = static_cast<double>(state.range(0));
}

void ViewLookupHash(benchmark::State& state) {
  RunViewLookup(state, IndexMode::kHash);
}
BENCHMARK(ViewLookupHash)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 20, 1 << 12));

void ViewLookupOrdered(benchmark::State& state) {
  RunViewLookup(state, IndexMode::kOrdered);
}
BENCHMARK(ViewLookupOrdered)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 20, 1 << 12));

void ChronicleScan(benchmark::State& state) {
  Setup setup(state.range(0), RetentionPolicy::All(), IndexMode::kHash);
  CaExprPtr scan = Unwrap(setup.db.ScanChronicle("txns"));
  NaiveEngine engine(&setup.db.group());
  Rng rng(3);
  for (auto _ : state) {
    // SELECT SUM(amount) FROM txns WHERE acct = ?
    CaExprPtr filtered = Unwrap(CaExpr::Select(
        scan, Eq(Col("acct"), Lit(Value(static_cast<int64_t>(rng.Uniform(16)))))));
    SummarySpec spec = Unwrap(SummarySpec::GroupBy(
        filtered->schema(), {}, {AggSpec::Sum("amount", "balance")}));
    std::vector<Tuple> rows = Unwrap(engine.EvaluateSummary(*filtered, spec));
    benchmark::DoNotOptimize(rows);
  }
  state.counters["chronicle_size"] = static_cast<double>(state.range(0));
}
BENCHMARK(ChronicleScan)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 17, 1 << 12));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
