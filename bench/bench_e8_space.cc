// Experiment E8 — Theorem 4.2 / 4.4 space claims.
//
// Memory accounting after streaming N records:
//   * chronicle_bytes — what the chronicle itself retains, per retention
//     policy (None / last-1k window / All). The relational baseline NEEDS
//     the All column; the chronicle model works with the None column.
//   * view_bytes      — the persistent view: proportional to the number of
//     groups |V|, NOT to N.
//   * delta_peak_rows — the maintenance working set: bounded by the batch
//     size, independent of N.
//
// This bench reports counters rather than timing curves; the numbers are
// the experiment.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "algebra/delta_engine.h"
#include "bench_common.h"
#include "db/database.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

void RunSpace(benchmark::State& state, RetentionPolicy retention) {
  const int64_t stream_size = state.range(0);
  for (auto _ : state) {
    ChronicleDatabase db;
    Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                             retention)
              .status());
    CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
    SummarySpec spec = Unwrap(SummarySpec::GroupBy(
        scan->schema(), {"caller"}, {AggSpec::Sum("minutes", "total")}));
    Check(db.CreateView("minutes", scan, spec).status());

    CallRecordOptions options;
    options.num_accounts = 4096;  // |V| saturates at 4096 groups
    CallRecordGenerator gen(options);
    DeltaEngine probe;
    size_t delta_peak = 0;
    Chronon chronon = 0;
    int64_t remaining = stream_size;
    while (remaining > 0) {
      const size_t n = remaining < 64 ? static_cast<size_t>(remaining) : 64;
      AppendResult result =
          Unwrap(db.Append("calls", gen.NextBatch(n), ++chronon));
      DeltaStats stats;
      auto delta = probe.ComputeDelta(*scan, result.event, &stats);
      benchmark::DoNotOptimize(delta);
      delta_peak = std::max(delta_peak, stats.max_intermediate_rows);
      remaining -= static_cast<int64_t>(n);
    }

    state.counters["stream_records"] = static_cast<double>(stream_size);
    state.counters["chronicle_bytes"] =
        static_cast<double>(db.group().MemoryFootprint());
    state.counters["view_bytes"] =
        static_cast<double>(db.view_manager().MemoryFootprint());
    state.counters["view_groups"] = static_cast<double>(
        Unwrap(db.view_manager().FindView("minutes"))->size());
    state.counters["delta_peak_rows"] = static_cast<double>(delta_peak);
  }
}

void RetentionNone(benchmark::State& state) {
  RunSpace(state, RetentionPolicy::None());
}
BENCHMARK(RetentionNone)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 13))
    ->Iterations(1);

void RetentionWindow1k(benchmark::State& state) {
  RunSpace(state, RetentionPolicy::Window(1024));
}
BENCHMARK(RetentionWindow1k)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 13))
    ->Iterations(1);

void RetentionAll(benchmark::State& state) {
  RunSpace(state, RetentionPolicy::All());
}
BENCHMARK(RetentionAll)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 13))
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
