// Experiment E7 — §5.3: batch-to-incremental conversion.
//
// The paper's telephone discount plan (10% off everything once monthly
// expenses exceed $10, 20% once they exceed $25). Two formulations:
//   * IncrementalPerCall — the TIERED_DISCOUNT view is folded forward on
//     every call; the bill is exact at every instant.
//   * BatchAtPeriodEnd   — the classical batch job: store the month's
//     records and re-rate everything at closing time. Costs O(|month|)
//     at the deadline, and mid-month reads are stale.
// The bench reports per-call maintenance cost for the incremental path and
// the closing-time cost (plus its amortized per-call equivalent) for the
// batch path.

#include <benchmark/benchmark.h>

#include "baseline/naive_engine.h"
#include "bench_common.h"
#include "db/database.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

TieredSchedule PaperPlan() {
  return Unwrap(TieredSchedule::Make({{10.0, 0.10}, {25.0, 0.20}}));
}

void IncrementalPerCall(benchmark::State& state) {
  ChronicleDatabase db;
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      scan->schema(), {"caller"},
      {AggSpec::Sum("charge", "gross"),
       AggSpec::TieredDiscount("charge", PaperPlan(), "net")}));
  Check(db.CreateView("bill", scan, spec).status());

  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  for (auto _ : state) {
    Check(db.Append("calls", {gen.Next()}, ++chronon).status());
  }
  // The bill view is exact after every single call.
  state.counters["staleness_calls"] = 0;
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(IncrementalPerCall);

void BatchAtPeriodEnd(benchmark::State& state) {
  const int64_t month_calls = state.range(0);
  ChronicleDatabase db;
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::All())
            .status());
  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  int64_t remaining = month_calls;
  while (remaining > 0) {
    const size_t n = remaining < 256 ? static_cast<size_t>(remaining) : 256;
    Check(db.Append("calls", gen.NextBatch(n), ++chronon).status());
    remaining -= static_cast<int64_t>(n);
  }

  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      scan->schema(), {"caller"},
      {AggSpec::Sum("charge", "gross"),
       AggSpec::TieredDiscount("charge", PaperPlan(), "net")}));
  NaiveEngine engine(&db.group());

  for (auto _ : state) {
    // The end-of-month run: re-rate the whole stored month.
    std::vector<Tuple> bills = Unwrap(engine.EvaluateSummary(*scan, spec));
    benchmark::DoNotOptimize(bills);
  }
  state.counters["month_calls"] = static_cast<double>(month_calls);
  // Mid-month, the batch answer is up to a whole month stale.
  state.counters["staleness_calls"] = static_cast<double>(month_calls);
  state.counters["amortized_ns_per_call"] = benchmark::Counter(
      static_cast<double>(month_calls),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BatchAtPeriodEnd)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 12));

// Correctness cross-check run once at startup: the incremental bill equals
// the batch bill at period end (the "nontrivial mapping" is exact).
void VerifyEquivalenceOnce() {
  ChronicleDatabase db;
  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::All())
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      scan->schema(), {"caller"},
      {AggSpec::TieredDiscount("charge", PaperPlan(), "net")}));
  Check(db.CreateView("bill", scan, spec).status());

  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  const int64_t verify_ticks = Scaled(5000, 500);
  for (int64_t i = 0; i < verify_ticks; ++i) {
    Check(db.Append("calls", {gen.Next()}, ++chronon).status());
  }
  NaiveEngine engine(&db.group());
  std::vector<Tuple> batch = Unwrap(engine.EvaluateSummary(*scan, spec));
  std::vector<Tuple> incremental = Unwrap(db.ScanView("bill"));
  if (batch.size() != incremental.size()) {
    std::fprintf(stderr, "E7 equivalence check FAILED (row counts)\n");
    std::abort();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!(batch[i] == incremental[i])) {
      std::fprintf(stderr, "E7 equivalence check FAILED at row %zu\n", i);
      std::abort();
    }
  }
  std::printf("E7 equivalence check passed: incremental bill == batch bill "
              "(%zu accounts)\n",
              batch.size());
}

}  // namespace
}  // namespace bench
}  // namespace chronicle

int main(int argc, char** argv) {
  chronicle::bench::VerifyEquivalenceOnce();
  return chronicle::bench::RunMain(argc, argv);
}
