// Shared helpers for the experiment benches (E1..E12). Each bench binary
// regenerates one experiment from DESIGN.md §5; the pass criteria (curve
// shapes, who wins) are recorded in EXPERIMENTS.md.
//
// Smoke mode: every bench accepts `--smoke` (or CHRONICLE_BENCH_SMOKE=1 in
// the environment). It shrinks the registered problem sizes (via Scaled)
// and clamps --benchmark_min_time so the whole binary finishes in seconds.
// CI runs every bench this way on every push, so benchmarks cannot bitrot
// uncompiled or crash unnoticed. Benches use CHRONICLE_BENCH_MAIN() in
// place of BENCHMARK_MAIN() to get the flag handling.

#ifndef CHRONICLE_BENCH_BENCH_COMMON_H_
#define CHRONICLE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/status.h"

namespace chronicle {
namespace bench {

// Benches treat any library error as fatal: a broken setup would silently
// invalidate the experiment.
inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// True when the binary runs in smoke mode. Benchmark sizes are registered
// during static initialization — before main() can parse argv — so this
// checks the CHRONICLE_BENCH_SMOKE environment variable and, on Linux,
// scans /proc/self/cmdline for a literal `--smoke` argument (NUL-separated,
// so no substring false positives). The result is computed once.
inline bool SmokeMode() {
  static const bool smoke = [] {
    if (std::getenv("CHRONICLE_BENCH_SMOKE") != nullptr) return true;
    std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
    if (!cmdline) return false;
    std::string raw((std::istreambuf_iterator<char>(cmdline)),
                    std::istreambuf_iterator<char>());
    size_t pos = 0;
    while (pos < raw.size()) {
      const size_t end = raw.find('\0', pos);
      const std::string arg = raw.substr(pos, end - pos);
      if (arg == "--smoke") return true;
      if (end == std::string::npos) break;
      pos = end + 1;
    }
    return false;
  }();
  return smoke;
}

// Experiment size selector: the real size normally, the tiny one in smoke
// mode. Use on Range/Args upper bounds and setup loop counts.
inline int64_t Scaled(int64_t full, int64_t smoke) {
  return SmokeMode() ? smoke : full;
}

// "BENCH_E<k>.json" derived from the binary name ("bench_e<k>_..."), or ""
// when the name does not follow the experiment convention. Smoke runs dump
// google-benchmark's JSON report (name, run params, ns/op, counters) there
// so CI can archive every experiment's numbers as build artifacts.
inline std::string SmokeReportFile(const char* argv0) {
  std::string base = argv0;
  const size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const char* prefix = "bench_e";
  if (base.rfind(prefix, 0) != 0) return "";
  std::string digits;
  for (size_t i = std::strlen(prefix); i < base.size() && std::isdigit(static_cast<unsigned char>(base[i])); ++i) {
    digits.push_back(base[i]);
  }
  if (digits.empty()) return "";
  return "BENCH_E" + digits + ".json";
}

// Entry point shared by all benches: strips `--smoke` (google-benchmark
// rejects unknown flags), clamps min_time in smoke mode, then runs.
inline int RunMain(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 4);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) continue;
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  static char out_format[] = "--benchmark_out_format=json";
  std::string out_flag;  // must outlive Initialize
  if (SmokeMode()) {
    args.insert(args.begin() + 1, min_time);
    const std::string report = SmokeReportFile(argv[0]);
    if (!report.empty()) {
      out_flag = "--benchmark_out=" + report;
      args.insert(args.begin() + 2, out_flag.data());
      args.insert(args.begin() + 3, out_format);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace chronicle

#define CHRONICLE_BENCH_MAIN()                      \
  int main(int argc, char** argv) {                 \
    return chronicle::bench::RunMain(argc, argv);   \
  }

#endif  // CHRONICLE_BENCH_BENCH_COMMON_H_
