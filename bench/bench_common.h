// Shared helpers for the experiment benches (E1..E8). Each bench binary
// regenerates one experiment from DESIGN.md §5; the pass criteria (curve
// shapes, who wins) are recorded in EXPERIMENTS.md.

#ifndef CHRONICLE_BENCH_BENCH_COMMON_H_
#define CHRONICLE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace chronicle {
namespace bench {

// Benches treat any library error as fatal: a broken setup would silently
// invalidate the experiment.
inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace bench
}  // namespace chronicle

#endif  // CHRONICLE_BENCH_BENCH_COMMON_H_
