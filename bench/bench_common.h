// Shared helpers for the experiment benches (E1..E12). Each bench binary
// regenerates one experiment from DESIGN.md §5; the pass criteria (curve
// shapes, who wins) are recorded in EXPERIMENTS.md.
//
// Smoke mode: every bench accepts `--smoke` (or CHRONICLE_BENCH_SMOKE=1 in
// the environment). It shrinks the registered problem sizes (via Scaled)
// and clamps --benchmark_min_time so the whole binary finishes in seconds.
// CI runs every bench this way on every push, so benchmarks cannot bitrot
// uncompiled or crash unnoticed. Benches use CHRONICLE_BENCH_MAIN() in
// place of BENCHMARK_MAIN() to get the flag handling.

#ifndef CHRONICLE_BENCH_BENCH_COMMON_H_
#define CHRONICLE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace chronicle {
namespace bench {

// Benches treat any library error as fatal: a broken setup would silently
// invalidate the experiment.
inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

// True when the binary runs in smoke mode. Benchmark sizes are registered
// during static initialization — before main() can parse argv — so this
// checks the CHRONICLE_BENCH_SMOKE environment variable and, on Linux,
// scans /proc/self/cmdline for a literal `--smoke` argument (NUL-separated,
// so no substring false positives). The result is computed once.
inline bool SmokeMode() {
  static const bool smoke = [] {
    if (std::getenv("CHRONICLE_BENCH_SMOKE") != nullptr) return true;
    std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
    if (!cmdline) return false;
    std::string raw((std::istreambuf_iterator<char>(cmdline)),
                    std::istreambuf_iterator<char>());
    size_t pos = 0;
    while (pos < raw.size()) {
      const size_t end = raw.find('\0', pos);
      const std::string arg = raw.substr(pos, end - pos);
      if (arg == "--smoke") return true;
      if (end == std::string::npos) break;
      pos = end + 1;
    }
    return false;
  }();
  return smoke;
}

// Experiment size selector: the real size normally, the tiny one in smoke
// mode. Use on Range/Args upper bounds and setup loop counts.
inline int64_t Scaled(int64_t full, int64_t smoke) {
  return SmokeMode() ? smoke : full;
}

// "E<k>" derived from the binary name ("bench_e<k>_..."), or "" when the
// name does not follow the experiment convention.
inline std::string BenchTag(const char* argv0) {
  std::string base = argv0;
  const size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const char* prefix = "bench_e";
  if (base.rfind(prefix, 0) != 0) return "";
  std::string digits;
  for (size_t i = std::strlen(prefix); i < base.size() && std::isdigit(static_cast<unsigned char>(base[i])); ++i) {
    digits.push_back(base[i]);
  }
  if (digits.empty()) return "";
  return "E" + digits;
}

// Directory smoke artifacts land in: CHRONICLE_BENCH_OUT_DIR when set,
// else the repo root baked in at compile time (CHRONICLE_BENCH_ROOT), else
// the CWD. Anchoring to the repo root means `build/bench/bench_e13_...
// --smoke` writes the same BENCH_E13.json no matter where it is launched
// from — CI and humans stop disagreeing about where the reports went.
inline std::string SmokeReportDir() {
  if (const char* dir = std::getenv("CHRONICLE_BENCH_OUT_DIR")) return dir;
#ifdef CHRONICLE_BENCH_ROOT
  return CHRONICLE_BENCH_ROOT;
#else
  return ".";
#endif
}

// Full path of this bench's smoke report ("<dir>/BENCH_E<k>.json"), or ""
// when the binary name carries no experiment tag.
inline std::string SmokeReportFile(const char* argv0) {
  const std::string tag = BenchTag(argv0);
  if (tag.empty()) return "";
  return SmokeReportDir() + "/BENCH_" + tag + ".json";
}

// Full path for an extra smoke artifact (e.g. STATS_E13.json), anchored
// like the report itself.
inline std::string SmokeArtifactFile(const std::string& name) {
  return SmokeReportDir() + "/" + name;
}

// File reporter producing the standardized cross-bench schema
//   {"bench":"E<k>","metrics":{"<run name>":{"real_time_ns":...,
//    "cpu_time_ns":...,"iterations":N,"counters":{...}}}}
// instead of google-benchmark's native report, whose layout drifts across
// library versions and buries the numbers three levels deep. CI validates
// exactly this shape for every experiment.
class SmokeReporter : public benchmark::BenchmarkReporter {
 public:
  explicit SmokeReporter(std::string bench) : bench_(std::move(bench)) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::string entry = "{";
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\"real_time_ns\":%s,\"cpu_time_ns\":%s,"
                    "\"iterations\":%lld",
                    Num(ToNs(run.GetAdjustedRealTime(), run.time_unit)).c_str(),
                    Num(ToNs(run.GetAdjustedCPUTime(), run.time_unit)).c_str(),
                    static_cast<long long>(run.iterations));
      entry += buf;
      entry += ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) entry += ",";
        first = false;
        std::snprintf(buf, sizeof(buf), "\"%s\":%s", Escape(name).c_str(),
                      Num(static_cast<double>(counter)).c_str());
        entry += buf;
      }
      entry += "}}";
      // Keyed by the full run name ("UnionFan/u:64/compiled:1", aggregates
      // get a _mean/_median suffix). Repetition runs share a name; last one
      // wins, which keeps the JSON free of duplicate keys — consumers that
      // want stability read the _median entry.
      entries_[run.benchmark_name()] = std::move(entry);
    }
  }

  void Finalize() override {
    std::string body;
    for (const auto& [name, entry] : entries_) {
      if (!body.empty()) body += ",";
      body += "\"" + Escape(name) + "\":" + entry;
    }
    GetOutputStream() << "{\"bench\":\"" << Escape(bench_)
                      << "\",\"metrics\":{" << body << "}}\n";
  }

 private:
  // JSON number rendering; NaN/Inf (the cv aggregate divides by zero on
  // constant counters) become null — JSON has no non-finite literals.
  static std::string Num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static double ToNs(double v, benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond:
        return v;
      case benchmark::kMicrosecond:
        return v * 1e3;
      case benchmark::kMillisecond:
        return v * 1e6;
      default:
        return v * 1e9;  // kSecond
    }
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::map<std::string, std::string> entries_;
};

// Entry point shared by all benches: strips `--smoke` (google-benchmark
// rejects unknown flags), clamps min_time in smoke mode, then runs. Smoke
// runs write the standardized report to SmokeReportFile(argv[0]).
inline int RunMain(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) continue;
    args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  std::string out_flag;  // must outlive Initialize
  std::string report;
  if (SmokeMode()) {
    args.insert(args.begin() + 1, min_time);
    report = SmokeReportFile(argv[0]);
  }
  // Full-length runs can still request the standardized report (CI's
  // overhead gate re-runs E13 with real iteration counts this way).
  if (const char* path = std::getenv("CHRONICLE_BENCH_REPORT")) {
    report = path;
  }
  if (!report.empty()) {
    // The library opens the file and hands the reporter its stream.
    out_flag = "--benchmark_out=" + report;
    args.insert(args.begin() + 1, out_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  if (!report.empty()) {
    SmokeReporter file_reporter(BenchTag(argv[0]));
    benchmark::RunSpecifiedBenchmarks(nullptr, &file_reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace chronicle

#define CHRONICLE_BENCH_MAIN()                      \
  int main(int argc, char** argv) {                 \
    return chronicle::bench::RunMain(argc, argv);   \
  }

#endif  // CHRONICLE_BENCH_BENCH_COMMON_H_
