// Experiment E3 — §5.2: identifying affected persistent views.
//
// Per-append maintenance cost with V views registered over one chronicle,
// where each view selects a distinct routing key (region = const). Claims:
//   * kCheckAll  — every append pays O(V) (the paper's strawman);
//   * kGuards    — O(V) guard evaluations, but each far cheaper than a
//                  delta computation;
//   * kEqIndex   — O(1) hash probes per append: throughput independent
//                  of V.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "db/database.h"

namespace chronicle {
namespace bench {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"route", DataType::kInt64},
                 {"minutes", DataType::kInt64}});
}

void RunRouting(benchmark::State& state, RoutingMode mode) {
  const int64_t num_views = state.range(0);
  ChronicleDatabase db(mode);
  Check(db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
  for (int64_t v = 0; v < num_views; ++v) {
    CaExprPtr plan = Unwrap(CaExpr::Select(scan, Eq(Col("route"), Lit(Value(v)))));
    SummarySpec spec = Unwrap(SummarySpec::GroupBy(
        plan->schema(), {"caller"}, {AggSpec::Sum("minutes", "m")}));
    Check(db.CreateView("route_" + std::to_string(v), plan, spec).status());
  }

  Rng rng(7);
  Chronon chronon = 0;
  for (auto _ : state) {
    Tuple call{Value(static_cast<int64_t>(rng.Uniform(64))),
               Value(static_cast<int64_t>(rng.Uniform(
                   static_cast<uint64_t>(num_views)))),
               Value(static_cast<int64_t>(rng.Uniform(100)))};
    Check(db.Append("calls", {std::move(call)}, ++chronon).status());
  }
  state.counters["num_views"] = static_cast<double>(num_views);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void CheckAllViews(benchmark::State& state) {
  RunRouting(state, RoutingMode::kCheckAll);
}
BENCHMARK(CheckAllViews)->RangeMultiplier(4)->Range(1, Scaled(1 << 10, 16));

void GuardFiltering(benchmark::State& state) {
  RunRouting(state, RoutingMode::kGuards);
}
BENCHMARK(GuardFiltering)->RangeMultiplier(4)->Range(1, Scaled(1 << 10, 16));

void EqIndexRouting(benchmark::State& state) {
  RunRouting(state, RoutingMode::kEqIndex);
}
BENCHMARK(EqIndexRouting)->RangeMultiplier(4)->Range(1, Scaled(1 << 10, 16));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
