// Experiment E12 — parallel view maintenance.
//
// Theorem 4.2 makes each view's per-append delta a function of the appended
// tuples and the current relation versions only — independent of the
// chronicle and of every OTHER view. So with V registered views the
// maintenance fan-out is embarrassingly parallel. This bench measures the
// per-append maintenance cost for V views at T worker threads:
//   * T = 1 is the seed's serial path (no pool is created) — the baseline;
//   * speedup(V, T) = appends_per_sec(V, T) / appends_per_sec(V, 1).
// Claims: near-linear scaling once V is large enough to amortize dispatch
// (>= 2x at 8 threads for V >= 128 on 8+ physical cores), and a flat
// penalty of at most a few percent for small V (the pool is bypassed below
// 2 * min_views_per_task).
//
// Each view carries a DISTINCT guard + aggregation plan so per-view delta
// work cannot collapse into one shared subexpression; every append tick
// inserts tuples matching every guard, so all V views are affected (the
// worst-case fan-out the parallel path exists for). AppendManyBatching
// additionally measures the batched entry point, which amortizes pool
// dispatch across a vector of ticks.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "db/database.h"

namespace chronicle {
namespace bench {
namespace {

constexpr int64_t kRoutes = 8;        // guard fan-in: views per route value
constexpr int64_t kTuplesPerTick = 64;

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"route", DataType::kInt64},
                 {"minutes", DataType::kInt64}});
}

// Registers `num_views` views: route = v % kRoutes AND minutes >= v % 5,
// grouped by caller. Distinct predicates per view defeat full DAG sharing.
void RegisterViews(ChronicleDatabase* db, int64_t num_views) {
  CaExprPtr scan = Unwrap(db->ScanChronicle("calls"));
  for (int64_t v = 0; v < num_views; ++v) {
    CaExprPtr plan = Unwrap(CaExpr::Select(
        scan, ScalarExpr::And(Eq(Col("route"), Lit(Value(v % kRoutes))),
                              Ge(Col("minutes"), Lit(Value(v % 5))))));
    SummarySpec spec = Unwrap(SummarySpec::GroupBy(
        plan->schema(), {"caller"}, {AggSpec::Sum("minutes", "m"),
                                     AggSpec::Count("n")}));
    Check(db->CreateView("route_" + std::to_string(v), plan, spec).status());
  }
}

// One tick covering every route value, so every registered view is affected.
std::vector<Tuple> MakeTick(Rng* rng) {
  std::vector<Tuple> tuples;
  tuples.reserve(kTuplesPerTick);
  for (int64_t i = 0; i < kTuplesPerTick; ++i) {
    tuples.push_back(Tuple{Value(static_cast<int64_t>(rng->Uniform(64))),
                           Value(i % kRoutes),
                           Value(static_cast<int64_t>(rng->Uniform(100)))});
  }
  return tuples;
}

void ParallelMaintenance(benchmark::State& state) {
  const int64_t num_views = state.range(0);
  const size_t num_threads = static_cast<size_t>(state.range(1));
  ChronicleDatabase db(RoutingMode::kEqIndex);
  Check(db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
            .status());
  RegisterViews(&db, num_views);
  db.ReconfigureMaintenance({num_threads, /*min_views_per_task=*/4});

  Rng rng(7);
  Chronon chronon = 0;
  size_t views_maintained = 0;
  for (auto _ : state) {
    AppendResult result =
        Unwrap(db.Append("calls", MakeTick(&rng), ++chronon));
    views_maintained += result.maintenance.views_considered;
  }
  state.counters["num_views"] = static_cast<double>(num_views);
  state.counters["threads"] = static_cast<double>(num_threads);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["view_maintains_per_sec"] = benchmark::Counter(
      static_cast<double>(views_maintained), benchmark::Counter::kIsRate);
}
BENCHMARK(ParallelMaintenance)
    ->ArgsProduct({{Scaled(32, 8), Scaled(128, 16), Scaled(512, 32)},
                   {1, 2, 4, 8}})
    ->UseRealTime();  // rates must count wall time, not main-thread CPU

// The batched entry point: one AppendMany call per iteration. Relative to
// the loop above this amortizes per-call overhead (and, with a WAL
// attached, collapses per-tick fsyncs into one group commit).
void AppendManyBatching(benchmark::State& state) {
  const int64_t num_views = state.range(0);
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const int64_t ticks_per_batch = 16;
  ChronicleDatabase db(RoutingMode::kEqIndex);
  Check(db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
            .status());
  RegisterViews(&db, num_views);
  db.ReconfigureMaintenance({num_threads, /*min_views_per_task=*/4});

  Rng rng(7);
  for (auto _ : state) {
    std::vector<std::vector<Tuple>> batches;
    batches.reserve(ticks_per_batch);
    for (int64_t t = 0; t < ticks_per_batch; ++t) {
      batches.push_back(MakeTick(&rng));
    }
    Unwrap(db.AppendMany("calls", std::move(batches)));
  }
  state.counters["num_views"] = static_cast<double>(num_views);
  state.counters["threads"] = static_cast<double>(num_threads);
  state.counters["ticks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ticks_per_batch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(AppendManyBatching)
    ->ArgsProduct({{Scaled(128, 16)}, {1, 8}})
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
