// Experiment E4 — §5.1: sliding-window maintenance.
//
// A moving 30-day-style aggregate with window = P panes and slide = 1
// pane. Claims:
//   * NaivePeriodic — each append updates all ~P overlapping instances:
//     cost grows linearly with P;
//   * PaneRingBuffer — each append updates exactly one pane: cost flat in
//     P (queries merge P panes on demand, measured separately).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "db/database.h"
#include "workload/stock.h"

namespace chronicle {
namespace bench {
namespace {

struct Setup {
  ChronicleDatabase db;
  StockTradeGenerator gen;
  Chronon chronon = 0;
  int trades_in_day = 0;
  static constexpr int kTradesPerDay = 16;

  Setup() : gen(StockOptions{}) {
    Check(db.CreateChronicle("trades", StockTradeGenerator::RecordSchema(),
                             RetentionPolicy::None())
              .status());
  }

  CaExprPtr Scan() { return Unwrap(db.ScanChronicle("trades")); }
  SummarySpec Spec() {
    CaExprPtr scan = Scan();
    return Unwrap(SummarySpec::GroupBy(scan->schema(), {"symbol"},
                                       {AggSpec::Sum("shares", "shares")}));
  }

  // Appends one trade; the simulated day advances every kTradesPerDay.
  void AppendTrade() {
    if (++trades_in_day == kTradesPerDay) {
      trades_in_day = 0;
      ++chronon;
    }
    Check(db.Append("trades", {gen.Next()}, chronon).status());
  }
};

void NaivePeriodic(benchmark::State& state) {
  const int64_t panes = state.range(0);
  Setup setup;
  auto calendar = Unwrap(SlidingCalendar::Make(0, panes, 1));
  PeriodicViewOptions options;
  options.expire_after = 2;
  Check(setup.db.CreatePeriodicView("w", setup.Scan(), setup.Spec(), calendar,
                                    options));
  for (auto _ : state) {
    setup.AppendTrade();
  }
  state.counters["window_panes"] = static_cast<double>(panes);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(NaivePeriodic)->RangeMultiplier(4)->Range(8, Scaled(1 << 10, 32));

void PaneRingBuffer(benchmark::State& state) {
  const int64_t panes = state.range(0);
  Setup setup;
  Check(setup.db.CreateSlidingView("w", setup.Scan(), setup.Spec(), 0, 1, panes));
  for (auto _ : state) {
    setup.AppendTrade();
  }
  state.counters["window_panes"] = static_cast<double>(panes);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(PaneRingBuffer)->RangeMultiplier(4)->Range(8, Scaled(1 << 10, 32));

// The flip side of the trade-off: the ring pays O(P) at query time.
void PaneRingBufferQuery(benchmark::State& state) {
  const int64_t panes = state.range(0);
  Setup setup;
  Check(setup.db.CreateSlidingView("w", setup.Scan(), setup.Spec(), 0, 1, panes));
  // Fill a couple of windows.
  for (int64_t i = 0; i < panes * Setup::kTradesPerDay * 2; ++i) {
    setup.AppendTrade();
  }
  const SlidingWindowView* view = Unwrap(setup.db.GetSlidingView("w"));
  for (auto _ : state) {
    Result<Tuple> row = view->QueryWindow(Tuple{Value("SYM0")});
    benchmark::DoNotOptimize(row);
  }
  state.counters["window_panes"] = static_cast<double>(panes);
}
BENCHMARK(PaneRingBufferQuery)->RangeMultiplier(4)->Range(8, Scaled(1 << 10, 32));

// Naive instances answer window queries with one O(1)/O(log|V|) lookup.
void NaivePeriodicQuery(benchmark::State& state) {
  const int64_t panes = state.range(0);
  Setup setup;
  auto calendar = Unwrap(SlidingCalendar::Make(0, panes, 1));
  Check(setup.db.CreatePeriodicView("w", setup.Scan(), setup.Spec(), calendar));
  for (int64_t i = 0; i < panes * Setup::kTradesPerDay * 2; ++i) {
    setup.AppendTrade();
  }
  const PeriodicViewSet* view = Unwrap(setup.db.GetPeriodicView("w"));
  const int64_t index = setup.chronon - panes + 1;
  for (auto _ : state) {
    Result<Tuple> row = view->Lookup(index, Tuple{Value("SYM0")});
    benchmark::DoNotOptimize(row);
  }
  state.counters["window_panes"] = static_cast<double>(panes);
}
BENCHMARK(NaivePeriodicQuery)->RangeMultiplier(4)->Range(8, Scaled(1 << 10, 32));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
