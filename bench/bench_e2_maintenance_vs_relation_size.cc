// Experiment E2 — Theorem 4.2 / 4.5: relation-size dependence.
//
// Per-append maintenance cost of a view joining the chronicle against a
// relation of |R| rows. Claims:
//   * CA_join with an ordered key index  -> O(log |R|)   (IM-log(R))
//   * CA_join with a hash key index      -> ~O(1)        (production mode)
//   * CA cross product                   -> O(|R|)       (IM-R^k)

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "db/database.h"
#include "workload/flyer.h"

namespace chronicle {
namespace bench {
namespace {

void SetupCustomers(ChronicleDatabase* db, int64_t rows, IndexMode mode) {
  Schema schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
  Check(db->CreateRelation("cust", schema, "acct", mode).status());
  for (int64_t i = 0; i < rows; ++i) {
    Check(db->InsertInto("cust", Tuple{Value(i), Value(i % 7 == 0 ? "NJ" : "NY")}));
  }
}

enum class JoinKind { kKeyJoin, kCross };

void RunJoinBench(benchmark::State& state, JoinKind kind, IndexMode mode) {
  const int64_t rel_size = state.range(0);
  ChronicleDatabase db;
  Check(db.CreateChronicle("flights", FlyerGenerator::FlightSchema(),
                           RetentionPolicy::None())
            .status());
  SetupCustomers(&db, rel_size, mode);

  CaExprPtr scan = Unwrap(db.ScanChronicle("flights"));
  CaExprPtr plan =
      kind == JoinKind::kKeyJoin
          ? Unwrap(CaExpr::RelKeyJoin(scan, Unwrap(db.GetRelation("cust")),
                                      "acct"))
          : Unwrap(CaExpr::RelCross(scan, Unwrap(db.GetRelation("cust"))));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      plan->schema(), {"state"}, {AggSpec::Sum("miles", "miles")}));
  Check(db.CreateView("by_state", plan, spec).status());

  FlyerOptions options;
  options.num_customers = static_cast<uint64_t>(rel_size);
  FlyerGenerator gen(options);

  Chronon chronon = 0;
  for (auto _ : state) {
    Check(db.Append("flights", {gen.NextFlight()}, ++chronon).status());
  }
  state.counters["relation_size"] = static_cast<double>(rel_size);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void KeyJoinOrderedIndex(benchmark::State& state) {
  RunJoinBench(state, JoinKind::kKeyJoin, IndexMode::kOrdered);
}
BENCHMARK(KeyJoinOrderedIndex)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 20, 1 << 12));

void KeyJoinHashIndex(benchmark::State& state) {
  RunJoinBench(state, JoinKind::kKeyJoin, IndexMode::kHash);
}
BENCHMARK(KeyJoinHashIndex)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 20, 1 << 12));

void CrossProduct(benchmark::State& state) {
  RunJoinBench(state, JoinKind::kCross, IndexMode::kHash);
}
BENCHMARK(CrossProduct)->RangeMultiplier(8)->Range(1 << 10, Scaled(1 << 16, 1 << 12));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
