// Experiment E9 (ablation, DESIGN.md §3.1) — shared delta computation.
//
// Many persistent views are typically defined over common subexpressions
// (the same base scan, the same guarded selection). Because CaExpr plans
// are shared-const DAGs, the ViewManager memoizes node deltas per tick
// (DeltaCache), so V views over one selection cost one delta computation
// plus V cheap view folds. Series:
//   * SharedSubplan   — V views all summarizing ONE shared selection plan
//     (different group keys), maintained with the per-tick cache;
//   * PrivateSubplans — the same V views, each built over its own
//     structurally identical copy of the plan: no sharing possible.
// The gap between the two curves is what the cache buys.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "db/database.h"

namespace chronicle {
namespace bench {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64},
                 {"charge", DataType::kDouble}});
}

// One of several summarizations over the same (possibly shared) plan.
SummarySpec SpecFor(const Schema& schema, int64_t i) {
  switch (i % 4) {
    case 0:
      return Unwrap(SummarySpec::GroupBy(schema, {"caller"},
                                         {AggSpec::Sum("minutes", "m")}));
    case 1:
      return Unwrap(SummarySpec::GroupBy(schema, {"region"},
                                         {AggSpec::Count("n")}));
    case 2:
      return Unwrap(SummarySpec::GroupBy(schema, {"caller"},
                                         {AggSpec::Sum("charge", "c")}));
    default:
      return Unwrap(SummarySpec::GroupBy(
          schema, {}, {AggSpec::Max("minutes", "longest")}));
  }
}

void RunSharing(benchmark::State& state, bool shared) {
  const int64_t num_views = state.range(0);
  ChronicleDatabase db;
  // E9 is the interpreter's cross-view DeltaCache ablation; compiled plans
  // (E13) share subexpressions within a plan instead of through the cache.
  MaintenanceOptions interpreted;
  interpreted.use_compiled_plans = false;
  db.ReconfigureMaintenance(interpreted);
  Check(db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
            .status());

  CaExprPtr shared_plan;
  if (shared) {
    CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));
    shared_plan =
        Unwrap(CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(10)))));
  }
  for (int64_t v = 0; v < num_views; ++v) {
    CaExprPtr plan = shared_plan;
    if (!shared) {
      // Structurally identical but a distinct node graph: defeats the memo.
      CaExprPtr scan = Unwrap(
          CaExpr::Scan(0, "calls", CallSchema()));
      plan = Unwrap(CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(10)))));
    }
    Check(db.CreateView("v" + std::to_string(v), plan,
                        SpecFor(plan->schema(), v))
              .status());
  }

  Rng rng(11);
  const char* regions[] = {"NJ", "NY", "CA", "TX"};
  Chronon chronon = 0;
  for (auto _ : state) {
    // A batch of 8 tuples makes the per-node delta work non-trivial, so
    // sharing has something to save.
    std::vector<Tuple> batch;
    for (int i = 0; i < 8; ++i) {
      const int64_t minutes = static_cast<int64_t>(rng.Uniform(120));
      batch.push_back(Tuple{Value(static_cast<int64_t>(rng.Uniform(256))),
                            Value(regions[rng.Uniform(4)]), Value(minutes),
                            Value(static_cast<double>(minutes) * 0.11)});
    }
    Check(db.Append("calls", std::move(batch), ++chronon).status());
  }
  state.counters["num_views"] = static_cast<double>(num_views);
  state.counters["cache_hit_rate"] =
      static_cast<double>(db.view_manager().delta_cache_hits()) /
      static_cast<double>(db.view_manager().delta_cache_hits() +
                          db.view_manager().delta_cache_misses() + 1);
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void SharedSubplan(benchmark::State& state) { RunSharing(state, true); }
BENCHMARK(SharedSubplan)->RangeMultiplier(4)->Range(1, Scaled(256, 16));

void PrivateSubplans(benchmark::State& state) { RunSharing(state, false); }
BENCHMARK(PrivateSubplans)->RangeMultiplier(4)->Range(1, Scaled(256, 16));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
