// Experiment E10 (operational, DESIGN.md S12) — checkpoint cost.
//
// Since the chronicle is not stored, checkpoints are the recovery story;
// their cost must scale with the VIEW state (|V| groups), not with the
// number of records ever streamed. Series:
//   * SaveCost    — serialize the database; counters report image bytes.
//   * RestoreCost — parse + rebuild into a fresh database.
// The `stream_records` axis varies N with a fixed 4096-account key space:
// past saturation the image size and (de)serialization cost must go flat.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "checkpoint/checkpoint.h"
#include "workload/call_records.h"

namespace chronicle {
namespace bench {
namespace {

void ApplyDdl(ChronicleDatabase* db) {
  Check(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                            RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db->ScanChronicle("calls"));
  Check(db->CreateView("minutes", scan,
                       Unwrap(SummarySpec::GroupBy(
                           scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "total"),
                            AggSpec::Count("n")})))
            .status());
  Check(db->CreateView("regions", scan,
                       Unwrap(SummarySpec::DistinctProjection(scan->schema(),
                                                              {"region"})))
            .status());
}

void Fill(ChronicleDatabase* db, int64_t records) {
  CallRecordOptions options;
  options.num_accounts = 4096;
  CallRecordGenerator gen(options);
  Chronon chronon = 0;
  while (records > 0) {
    const size_t n = records < 256 ? static_cast<size_t>(records) : 256;
    Check(db->Append("calls", gen.NextBatch(n), ++chronon).status());
    records -= static_cast<int64_t>(n);
  }
}

void SaveCost(benchmark::State& state) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  Fill(&db, state.range(0));
  size_t image_bytes = 0;
  for (auto _ : state) {
    std::string image = Unwrap(checkpoint::SaveDatabase(db));
    image_bytes = image.size();
    benchmark::DoNotOptimize(image);
  }
  state.counters["stream_records"] = static_cast<double>(state.range(0));
  state.counters["image_bytes"] = static_cast<double>(image_bytes);
}
BENCHMARK(SaveCost)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 13));

void RestoreCost(benchmark::State& state) {
  ChronicleDatabase source;
  ApplyDdl(&source);
  Fill(&source, state.range(0));
  std::string image = Unwrap(checkpoint::SaveDatabase(source));
  for (auto _ : state) {
    ChronicleDatabase fresh;
    ApplyDdl(&fresh);
    Check(checkpoint::RestoreDatabase(image, &fresh));
    benchmark::DoNotOptimize(fresh.appends_processed());
  }
  state.counters["stream_records"] = static_cast<double>(state.range(0));
  state.counters["image_bytes"] = static_cast<double>(image.size());
}
BENCHMARK(RestoreCost)->RangeMultiplier(8)->Range(1 << 12, Scaled(1 << 18, 1 << 13));

}  // namespace
}  // namespace bench
}  // namespace chronicle

CHRONICLE_BENCH_MAIN();
