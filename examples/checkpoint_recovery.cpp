// Checkpoint & recovery: the chronicle model's distinctive durability
// story.
//
// A conventional database recovers by replaying its log. A chronicle
// database CANNOT: the transaction stream is deliberately not stored
// (that is the whole point of the model), so the materialized view state
// is the only persistent artifact. This example simulates a crash:
//
//   1. stream transactions into a RETAIN NONE chronicle with several
//      views (plain, periodic, sliding),
//   2. CHECKPOINT TO a file (via CQL),
//   3. "crash" (destroy the database object),
//   4. re-apply the DDL on a fresh instance, RESTORE FROM the file,
//   5. continue the SAME stream and verify the result matches a twin
//      database that never crashed.

#include <cstdio>

#include "baseline/naive_engine.h"
#include "cql/binder.h"
#include "db/database.h"
#include "workload/banking.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

const char* kDdl =
    "CREATE CHRONICLE txns (acct INT64, kind STRING, amount DOUBLE) "
    "RETAIN NONE;"
    "CREATE VIEW balance AS SELECT acct, SUM(amount) AS dollars, COUNT(*) AS n "
    "FROM txns GROUP BY acct;"
    "CREATE PERIODIC VIEW weekly AS SELECT acct, SUM(amount) AS net FROM txns "
    "GROUP BY acct OVER PERIOD 7;"
    "CREATE SLIDING VIEW last30 AS SELECT acct, SUM(amount) AS net FROM txns "
    "GROUP BY acct OVER WINDOW 30 PANES OF 1";

void Stream(chronicle::ChronicleDatabase* db, chronicle::BankingGenerator* gen,
            int days, chronicle::Chronon* day) {
  for (int d = 0; d < days; ++d) {
    ++*day;
    for (int i = 0; i < 50; ++i) {
      Check(db->Append("txns", {gen->Next()}, *day).status());
    }
  }
}

}  // namespace

int main() {
  using namespace chronicle;
  const std::string kPath = "/tmp/chronicle_recovery_demo.ckpt";
  BankingOptions options;
  options.num_accounts = 100;

  // Twin A: never crashes.
  ChronicleDatabase uninterrupted;
  Check(cql::ExecuteScript(&uninterrupted, kDdl).status());
  BankingGenerator gen_a(options);
  Chronon day_a = 0;
  Stream(&uninterrupted, &gen_a, 90, &day_a);

  // Twin B: crashes at day 60.
  BankingGenerator gen_b(options);
  Chronon day_b = 0;
  {
    ChronicleDatabase doomed;
    Check(cql::ExecuteScript(&doomed, kDdl).status());
    Stream(&doomed, &gen_b, 60, &day_b);
    Check(cql::Execute(&doomed, "CHECKPOINT TO '" + kPath + "'").status());
    std::printf("checkpoint written after day 60 (last_sn=%llu)\n",
                static_cast<unsigned long long>(doomed.group().last_sn()));
  }  // <- crash: everything in memory is gone; the chronicle never existed

  ChronicleDatabase recovered;
  Check(cql::ExecuteScript(&recovered, kDdl).status());
  Check(cql::Execute(&recovered, "RESTORE FROM '" + kPath + "'").status());
  std::printf("restored (last_sn=%llu); continuing the stream\n",
              static_cast<unsigned long long>(recovered.group().last_sn()));
  Stream(&recovered, &gen_b, 30, &day_b);

  // Compare every view.
  int mismatches = 0;
  for (const char* view : {"balance"}) {
    auto a = uninterrupted.ScanView(view).value();
    auto b = recovered.ScanView(view).value();
    if (a != b) ++mismatches;
    std::printf("view %-8s: %zu rows, %s\n", view, a.size(),
                a == b ? "identical" : "MISMATCH");
  }
  const SlidingWindowView* wa = uninterrupted.GetSlidingView("last30").value();
  const SlidingWindowView* wb = recovered.GetSlidingView("last30").value();
  std::vector<Tuple> ra, rb;
  Check(wa->ScanWindow([&](const Tuple& r) { ra.push_back(r); }));
  Check(wb->ScanWindow([&](const Tuple& r) { rb.push_back(r); }));
  SortTuples(&ra);
  SortTuples(&rb);
  if (ra != rb) ++mismatches;
  std::printf("view last30  : %zu rows in window, %s\n", ra.size(),
              ra == rb ? "identical" : "MISMATCH");

  const PeriodicViewSet* pa = uninterrupted.GetPeriodicView("weekly").value();
  const PeriodicViewSet* pb = recovered.GetPeriodicView("weekly").value();
  std::printf("view weekly  : %zu vs %zu instances, %s\n",
              pa->num_active_instances(), pb->num_active_instances(),
              pa->num_active_instances() == pb->num_active_instances()
                  ? "identical"
                  : "MISMATCH");

  std::printf("\n%s\n", mismatches == 0
                            ? "recovery is exact — without storing a single "
                              "transaction record"
                            : "RECOVERY DIVERGED");
  std::remove(kPath.c_str());
  return mismatches == 0 ? 0 : 1;
}
