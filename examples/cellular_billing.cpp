// Cellular billing: the paper's motivating scenario end-to-end.
//
//  * A cellular operator streams call-detail records into a chronicle that
//    is only partially retained (last 10k records, for customer-care
//    "detail" queries over a recent window).
//  * minutes_this_month — the §1 power-on display query — is a PERIODIC
//    persistent view over a monthly billing calendar.
//  * lifetime_minutes — "total minutes since the number was assigned" —
//    is an ordinary persistent view.
//  * the §5.3 tiered discount plan (10% over $10, 20% over $25) is kept
//    exactly current on every call, not recomputed in an end-of-month
//    batch.

#include <cstdio>

#include "db/database.h"
#include "workload/call_records.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(chronicle::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace chronicle;

  ChronicleDatabase db;
  CallRecordOptions workload_options;
  workload_options.num_accounts = 500;
  CallRecordGenerator workload(workload_options);

  Check(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                           RetentionPolicy::Window(10000))
            .status());

  CaExprPtr scan = Unwrap(db.ScanChronicle("calls"));

  // Lifetime minutes + call count per account.
  Check(db.CreateView(
              "lifetime",
              scan,
              Unwrap(SummarySpec::GroupBy(
                  scan->schema(), {"caller"},
                  {AggSpec::Sum("minutes", "total_minutes"),
                   AggSpec::Count("calls")})))
            .status());

  // Current-month minutes: a periodic view over a 30-day billing calendar
  // (1 chronon = 1 hour; 720 chronons = 1 month). Closed months expire
  // after a 2-month grace period.
  auto monthly_calendar = Unwrap(PeriodicCalendar::Make(0, 720));
  PeriodicViewOptions monthly_options;
  monthly_options.expire_after = 1440;
  Check(db.CreatePeriodicView(
      "monthly_minutes", scan,
      Unwrap(SummarySpec::GroupBy(scan->schema(), {"caller"},
                                  {AggSpec::Sum("minutes", "minutes")})),
      monthly_calendar, monthly_options));

  // The §5.3 discount plan, maintained incrementally per call.
  auto plan = Unwrap(TieredSchedule::Make({{10.0, 0.10}, {25.0, 0.20}}));
  Check(db.CreateView(
              "bill", scan,
              Unwrap(SummarySpec::GroupBy(
                  scan->schema(), {"caller"},
                  {AggSpec::Sum("charge", "gross"),
                   AggSpec::TieredDiscount("charge", plan, "net_owed")})))
            .status());

  // Stream 3 months of traffic: ~40 calls per hour.
  const Chronon kHoursToSimulate = 3 * 720;
  uint64_t total_calls = 0;
  for (Chronon hour = 0; hour < kHoursToSimulate; ++hour) {
    std::vector<Tuple> batch = workload.NextBatch(40);
    total_calls += batch.size();
    Check(db.Append("calls", std::move(batch), hour).status());
  }
  std::printf("streamed %llu calls over %lld simulated hours\n",
              static_cast<unsigned long long>(total_calls),
              static_cast<long long>(kHoursToSimulate));

  // Power-on display for a hot account: current-month minutes (month 2).
  const PeriodicViewSet* monthly = Unwrap(db.GetPeriodicView("monthly_minutes"));
  std::printf("active month instances: %zu (expired: %llu)\n",
              monthly->num_active_instances(),
              static_cast<unsigned long long>(monthly->instances_expired()));
  for (int64_t acct : {0, 1, 2}) {
    Result<Tuple> this_month = monthly->Lookup(2, {Value(acct)});
    Result<Tuple> lifetime = db.QueryView("lifetime", {Value(acct)});
    Result<Tuple> bill = db.QueryView("bill", {Value(acct)});
    if (!this_month.ok() || !lifetime.ok() || !bill.ok()) continue;
    std::printf(
        "acct %lld: this month %s min | lifetime %s min over %s calls | "
        "gross $%.2f -> owes $%.2f\n",
        static_cast<long long>(acct), (*this_month)[1].ToString().c_str(),
        (*lifetime)[1].ToString().c_str(), (*lifetime)[2].ToString().c_str(),
        (*bill)[1].dbl(), (*bill)[2].dbl());
  }

  std::printf(
      "\nchronicle retains %zu of %llu records; every view above is exact.\n",
      db.group().GetChronicle(0).value()->retained().size(),
      static_cast<unsigned long long>(total_calls));
  return 0;
}
