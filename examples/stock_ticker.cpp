// Stock ticker: the §5.1 moving-window scenario — "a periodic view for
// every day that computes the total number of shares of a stock sold
// during the 30 days preceding that day".
//
// Runs BOTH formulations over the same trade stream and shows they agree:
//  * the naive periodic view set over an overlapping SlidingCalendar
//    (every trade updates up to 30 instances), and
//  * the pane ring buffer (the paper's cyclic buffer of 30 daily
//    subtotals; one pane update per trade).

#include <cstdio>

#include "db/database.h"
#include "workload/stock.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(chronicle::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace chronicle;

  ChronicleDatabase db;
  StockOptions options;
  options.num_symbols = 12;
  StockTradeGenerator workload(options);

  Check(db.CreateChronicle("trades", StockTradeGenerator::RecordSchema(),
                           RetentionPolicy::None())
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("trades"));
  SummarySpec spec = Unwrap(SummarySpec::GroupBy(
      scan->schema(), {"symbol"},
      {AggSpec::Sum("shares", "shares_30d"), AggSpec::Count("trades_30d")}));

  // Naive: 30-day window sliding daily (chronon = day).
  auto calendar = Unwrap(SlidingCalendar::Make(0, 30, 1));
  PeriodicViewOptions naive_options;
  naive_options.expire_after = 5;  // reclaim closed windows promptly
  Check(db.CreatePeriodicView("naive_30d", scan, spec, calendar,
                              naive_options));

  // Optimized: ring of 30 one-day panes.
  Check(db.CreateSlidingView("ring_30d", scan, spec, 0, 1, 30));

  // Stream 120 trading days, ~200 trades/day.
  for (Chronon day = 0; day < 120; ++day) {
    for (int i = 0; i < 200; ++i) {
      Check(db.Append("trades", {workload.Next()}, day).status());
    }
  }

  const SlidingWindowView* ring = Unwrap(db.GetSlidingView("ring_30d"));
  const PeriodicViewSet* naive = Unwrap(db.GetPeriodicView("naive_30d"));
  const int64_t window_index = ring->current_pane() - 29;

  std::printf("%-8s %-14s %-14s %-5s\n", "symbol", "ring shares", "naive shares",
              "agree");
  int disagreements = 0;
  for (int sym = 0; sym < options.num_symbols; ++sym) {
    Tuple key{Value("SYM" + std::to_string(sym))};
    Result<Tuple> ring_row = ring->QueryWindow(key);
    Result<Tuple> naive_row = naive->Lookup(window_index, key);
    if (!ring_row.ok() || !naive_row.ok()) continue;
    const bool agree = (*ring_row)[1] == (*naive_row)[1];
    if (!agree) ++disagreements;
    std::printf("%-8s %-14s %-14s %-5s\n", key[0].str().c_str(),
                (*ring_row)[1].ToString().c_str(),
                (*naive_row)[1].ToString().c_str(), agree ? "yes" : "NO");
  }

  std::printf(
      "\nnaive active instances: %zu, ring panes: %lld; disagreements: %d\n",
      naive->num_active_instances(), static_cast<long long>(ring->num_panes()),
      disagreements);
  std::printf("ring footprint %zu bytes vs naive %zu bytes\n",
              ring->MemoryFootprint(), naive->MemoryFootprint());
  return disagreements == 0 ? 0 : 1;
}
