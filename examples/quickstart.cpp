// Quickstart: the chronicle data model in ~60 lines.
//
// Builds a tiny chronicle database with one chronicle (call records that
// are NOT stored — retention NONE), defines a persistent summary view
// declaratively in CQL, streams some transactions through it, and answers
// summary queries from the view without ever touching the (nonexistent)
// chronicle history.

#include <cstdio>

#include "cql/binder.h"
#include "db/database.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

chronicle::cql::ExecResult Run(chronicle::ChronicleDatabase* db,
                               const std::string& sql) {
  chronicle::Result<chronicle::cql::ExecResult> result =
      chronicle::cql::Execute(db, sql);
  Check(result.status());
  std::printf("cql> %s\n  -> %s\n", sql.c_str(), result->message.c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  chronicle::ChronicleDatabase db;

  // 1. A chronicle of call records. RETAIN NONE: the stream is unbounded
  //    and never stored — exactly the setting the paper targets.
  Run(&db,
      "CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64) "
      "RETAIN NONE");

  // 2. A persistent view, declared (not hand-coded in application logic).
  //    The engine classifies it: CA_1 / IM-Constant — maintenance cost per
  //    call is independent of everything.
  Run(&db,
      "CREATE VIEW minutes_by_caller AS "
      "SELECT caller, SUM(minutes) AS total, COUNT(*) AS calls "
      "FROM calls GROUP BY caller");

  // 3. Stream transactions. Each INSERT maintains the view on the spot.
  Run(&db, "INSERT INTO calls VALUES (7001, 'NJ', 12), (7002, 'NY', 3)");
  Run(&db, "INSERT INTO calls VALUES (7001, 'NJ', 45)");
  Run(&db, "INSERT INTO calls VALUES (7001, 'NJ', 1), (7002, 'NY', 30)");

  // 4. The summary query a cell phone would issue at power-on: answered
  //    from the view in O(1), no history needed.
  chronicle::cql::ExecResult result =
      Run(&db, "SELECT * FROM minutes_by_caller WHERE caller = 7001");
  for (const chronicle::Tuple& row : result.rows) {
    std::printf("  caller=%s total_minutes=%s calls=%s\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str());
  }

  // 5. Same thing through the C++ API instead of CQL.
  chronicle::Result<chronicle::Tuple> row =
      db.QueryView("minutes_by_caller", {chronicle::Value(7002)});
  Check(row.status());
  std::printf("api> caller=7002 -> %s\n",
              chronicle::TupleToString(*row).c_str());

  std::printf("\nchronicle stored %zu rows (retention NONE) — the views were "
              "maintained without it.\n",
              db.group().MemoryFootprint());
  return 0;
}
