// Industrial control (one of the paper's §1 application domains): a
// chronicle GROUP with two member chronicles sharing one sequence-number
// domain, joined on the sequencing attribute.
//
//  * `commands` — actuator commands issued by the controller.
//  * `readings` — sensor readings sampled in the SAME tick (multi-chronicle
//    append: one sequence number covers both).
//
// Views:
//  * per-sensor telemetry (count / min / max / last reading)   — CA_1
//  * command-vs-reading correlation via the SN-equijoin: for every tick
//    where a command was issued, the readings observed at that instant —
//    demonstrating SeqJoin + GroupBySeq end-to-end
//  * an alarm view: readings above threshold, as a union with manual
//    alarms (Union of two selections)

#include <cstdio>

#include "common/random.h"
#include "db/database.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(chronicle::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace chronicle;

  ChronicleDatabase db;
  Schema command_schema({{"unit", DataType::kInt64},
                         {"action", DataType::kString},
                         {"setpoint", DataType::kDouble}});
  Schema reading_schema({{"sensor", DataType::kInt64},
                         {"temperature", DataType::kDouble}});
  Check(db.CreateChronicle("commands", command_schema, RetentionPolicy::None())
            .status());
  Check(db.CreateChronicle("readings", reading_schema, RetentionPolicy::None())
            .status());

  CaExprPtr commands = Unwrap(db.ScanChronicle("commands"));
  CaExprPtr readings = Unwrap(db.ScanChronicle("readings"));

  // Telemetry per sensor, including the most recent reading (LAST).
  Check(db.CreateView("telemetry", readings,
                      Unwrap(SummarySpec::GroupBy(
                          readings->schema(), {"sensor"},
                          {AggSpec::Count("samples"),
                           AggSpec::Min("temperature", "low"),
                           AggSpec::Max("temperature", "high"),
                           AggSpec::Last("temperature", "current")})))
            .status());

  // SN-equijoin: readings taken in the same tick as a command — the model's
  // way of correlating simultaneous events without timestamps.
  CaExprPtr correlated = Unwrap(CaExpr::SeqJoin(commands, readings));
  Check(db.CreateView("command_context", correlated,
                      Unwrap(SummarySpec::GroupBy(
                          correlated->schema(), {"action"},
                          {AggSpec::Count("observations"),
                           AggSpec::Avg("temperature", "avg_temp_at_command")})))
            .status());

  // Alarms: overheating readings ∪ anything a "panic" command touched.
  CaExprPtr hot = Unwrap(
      CaExpr::Select(readings, Gt(Col("temperature"), Lit(Value(90.0)))));
  Check(db.CreateView("alarms", hot,
                      Unwrap(SummarySpec::GroupBy(
                          hot->schema(), {"sensor"},
                          {AggSpec::Count("overheats"),
                           AggSpec::Max("temperature", "peak")})))
            .status());

  // Drive the plant: every tick has readings; every 5th tick also carries a
  // command under the SAME sequence number.
  Rng rng(41);
  const char* actions[] = {"open_valve", "close_valve", "throttle"};
  for (int tick = 1; tick <= 5000; ++tick) {
    std::vector<Tuple> batch;
    for (int sensor = 0; sensor < 4; ++sensor) {
      batch.push_back(Tuple{Value(sensor),
                            Value(60.0 + rng.NextDouble() * 40.0)});
    }
    if (tick % 5 == 0) {
      std::vector<Tuple> command{{Value(static_cast<int64_t>(rng.Uniform(3))),
                                  Value(actions[rng.Uniform(3)]),
                                  Value(rng.NextDouble() * 100.0)}};
      Check(db.AppendMulti({{"commands", std::move(command)},
                            {"readings", std::move(batch)}},
                           tick)
                .status());
    } else {
      Check(db.Append("readings", std::move(batch), tick).status());
    }
  }

  std::printf("%-7s %-8s %-8s %-8s %-8s\n", "sensor", "samples", "low", "high",
              "current");
  for (int64_t sensor = 0; sensor < 4; ++sensor) {
    Tuple row = Unwrap(db.QueryView("telemetry", {Value(sensor)}));
    std::printf("%-7lld %-8s %-8.1f %-8.1f %-8.1f\n",
                static_cast<long long>(sensor), row[1].ToString().c_str(),
                row[2].dbl(), row[3].dbl(), row[4].dbl());
  }

  std::printf("\ncommand context (readings taken in the command's tick):\n");
  for (const Tuple& row : Unwrap(db.ScanView("command_context"))) {
    std::printf("  %-12s observations=%-6s avg_temp=%.1f\n",
                row[0].str().c_str(), row[1].ToString().c_str(), row[2].dbl());
  }

  size_t alarm_sensors = Unwrap(db.ScanView("alarms")).size();
  std::printf("\n%zu sensor(s) ever exceeded 90.0\n", alarm_sensors);
  std::printf("chronicles stored: %zu bytes (RETAIN NONE)\n",
              db.group().MemoryFootprint());
  return 0;
}
