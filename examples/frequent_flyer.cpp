// Frequent flyer: Examples 2.1 and 2.2 of the paper.
//
//  * One chronicle of mileage transactions (not stored: RETAIN NONE).
//  * One customer relation (account -> name, state) with PROACTIVE address
//    updates: a flight earns the New-Jersey bonus only if the customer
//    lived in NJ when the flight was posted (the implicit temporal join).
//  * Three persistent views: mileage balance (base + bonus), miles flown,
//    and premier status derived from the balance with a CASE finalizer.

#include <cstdio>

#include "db/database.h"
#include "workload/flyer.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(chronicle::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace chronicle;

  ChronicleDatabase db;
  FlyerOptions options;
  options.num_customers = 300;
  options.address_change_rate = 0.05;
  FlyerGenerator workload(options);

  Check(db.CreateChronicle("flights", FlyerGenerator::FlightSchema(),
                           RetentionPolicy::None())
            .status());
  Check(db.CreateRelation("customer", FlyerGenerator::CustomerSchema(), "acct")
            .status());
  for (Tuple& row : workload.CustomerRows()) {
    Check(db.InsertInto("customer", std::move(row)));
  }

  Relation* customer = Unwrap(db.GetRelation("customer"));
  CaExprPtr scan = Unwrap(db.ScanChronicle("flights"));
  CaExprPtr joined = Unwrap(CaExpr::RelKeyJoin(scan, customer, "acct"));

  // miles_flown: raw miles per account (CA_1 / IM-Constant).
  Check(db.CreateView("miles_flown", scan,
                      Unwrap(SummarySpec::GroupBy(
                          scan->schema(), {"acct"},
                          {AggSpec::Sum("miles", "flown"),
                           AggSpec::Count("segments")})))
            .status());

  // nj_bonus: 500 bonus miles per flight taken while resident in NJ
  // (Example 2.2). The join sees the customer's state AT FLIGHT TIME.
  CaExprPtr nj_flights =
      Unwrap(CaExpr::Select(joined, Eq(Col("state"), Lit(Value("NJ")))));
  Check(db.CreateView("nj_bonus", nj_flights,
                      Unwrap(SummarySpec::GroupBy(
                          nj_flights->schema(), {"acct"},
                          {AggSpec::Count("nj_flights")})))
            .status());

  // balance + premier status: base miles with a CASE finalizer
  // (bronze < 25k <= silver < 50k <= gold).
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches;
  branches.emplace_back(Ge(Col("balance"), Lit(Value(50000))),
                        Lit(Value("gold")));
  branches.emplace_back(Ge(Col("balance"), Lit(Value(25000))),
                        Lit(Value("silver")));
  std::vector<ComputedColumn> computed;
  computed.push_back(ComputedColumn{
      "status", ScalarExpr::Case(std::move(branches), Lit(Value("bronze")))});
  Check(db.CreateView("premier", scan,
                      Unwrap(SummarySpec::GroupBy(
                          scan->schema(), {"acct"},
                          {AggSpec::Sum("miles", "balance")})),
                      std::move(computed))
            .status());

  // Stream a year of flights with occasional (proactive) address changes.
  for (int day = 0; day < 365; ++day) {
    for (int flight = 0; flight < 20; ++flight) {
      if (std::optional<Tuple> move = workload.MaybeAddressChange()) {
        const Value acct = (*move)[0];
        Check(db.UpdateRelation("customer", acct, std::move(*move)));
      }
      Check(db.Append("flights", {workload.NextFlight()}, day).status());
    }
  }

  std::printf("%-6s %-10s %-9s %-10s %-8s\n", "acct", "miles", "segments",
              "nj_bonus", "status");
  for (int64_t acct = 0; acct < 8; ++acct) {
    Result<Tuple> flown = db.QueryView("miles_flown", {Value(acct)});
    Result<Tuple> premier = db.QueryView("premier", {Value(acct)});
    if (!flown.ok() || !premier.ok()) continue;
    Result<Tuple> bonus = db.QueryView("nj_bonus", {Value(acct)});
    const int64_t bonus_miles = bonus.ok() ? 500 * (*bonus)[1].int64() : 0;
    std::printf("%-6lld %-10s %-9s %-10lld %-8s\n",
                static_cast<long long>(acct), (*flown)[1].ToString().c_str(),
                (*flown)[2].ToString().c_str(),
                static_cast<long long>(bonus_miles),
                (*premier)[2].str().c_str());
  }

  std::printf("\nall views exact although the flight chronicle stored 0 rows\n");
  return 0;
}
