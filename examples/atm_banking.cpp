// ATM banking: the dollar_balance scenario (and the paper's Chemical Bank
// anecdote — the balance update logic lives in the database, not in
// hand-written application code).
//
//  * A chronicle of signed transactions (deposits +, withdrawals/fees −).
//  * dollar_balance: SUM(amount) per account, consulted BEFORE authorizing
//    each withdrawal — the "summary query before the next ATM withdrawal"
//    requirement.
//  * An audit view over a distinct projection (which accounts ever paid a
//    fee) and a global health view (bank-wide totals).

#include <cstdio>

#include "db/database.h"
#include "workload/banking.h"

namespace {

void Check(const chronicle::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(chronicle::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace chronicle;

  ChronicleDatabase db;
  BankingOptions options;
  options.num_accounts = 200;
  BankingGenerator workload(options);

  Check(db.CreateChronicle("txns", BankingGenerator::RecordSchema(),
                           RetentionPolicy::Window(1000))
            .status());
  CaExprPtr scan = Unwrap(db.ScanChronicle("txns"));

  Check(db.CreateView("dollar_balance", scan,
                      Unwrap(SummarySpec::GroupBy(
                          scan->schema(), {"acct"},
                          {AggSpec::Sum("amount", "balance"),
                           AggSpec::Count("txns")})))
            .status());

  CaExprPtr fees =
      Unwrap(CaExpr::Select(scan, Eq(Col("kind"), Lit(Value("fee")))));
  Check(db.CreateView("fee_payers", fees,
                      Unwrap(SummarySpec::DistinctProjection(fees->schema(),
                                                             {"acct"})))
            .status());

  Check(db.CreateView("bank_totals", scan,
                      Unwrap(SummarySpec::GroupBy(
                          scan->schema(), {"kind"},
                          {AggSpec::Count("n"),
                           AggSpec::Sum("amount", "net")})))
            .status());

  // Process transactions one by one. Withdrawals are authorized against
  // the view — the summary query runs between every pair of transactions.
  uint64_t processed = 0, declined = 0;
  for (int i = 0; i < 20000; ++i) {
    Tuple txn = workload.Next();
    if (txn[1].str() == "withdrawal") {
      Result<Tuple> balance = db.QueryView("dollar_balance", {txn[0]});
      const double available = balance.ok() ? (*balance)[1].dbl() : 0.0;
      if (available + txn[2].dbl() < -500.0) {  // overdraft limit
        ++declined;
        continue;
      }
    }
    Check(db.Append("txns", {std::move(txn)}).status());
    ++processed;
  }

  std::printf("processed %llu transactions, declined %llu overdrafts\n",
              static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(declined));

  std::printf("\nbank-wide totals by kind:\n");
  for (const Tuple& row : Unwrap(db.ScanView("bank_totals"))) {
    std::printf("  %-12s n=%-7s net=$%.2f\n", row[0].str().c_str(),
                row[1].ToString().c_str(), row[2].dbl());
  }

  size_t fee_payers = Unwrap(db.ScanView("fee_payers")).size();
  std::printf("%zu accounts have ever paid a fee\n", fee_payers);

  std::printf("\nsample balances:\n");
  for (int64_t acct = 0; acct < 5; ++acct) {
    Result<Tuple> row = db.QueryView("dollar_balance", {Value(acct)});
    if (!row.ok()) continue;
    std::printf("  acct %lld: $%.2f over %s transactions\n",
                static_cast<long long>(acct), (*row)[1].dbl(),
                (*row)[2].ToString().c_str());
  }
  return 0;
}
