#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace chronicle {
namespace obs {

namespace {

// Requests larger than this are rejected with 400 — every legitimate
// request here is one short GET line plus a few headers.
constexpr size_t kMaxRequestBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

// Writes the whole buffer, retrying on EINTR / short writes. MSG_NOSIGNAL
// keeps a client that hung up from killing the process with SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

// Reads until the end-of-headers marker, the size cap, or EOF. Bodies are
// never read: no route accepts one.
bool ReadRequestHead(int fd, std::string* out) {
  char buf[1024];
  while (out->size() < kMaxRequestBytes) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before end of headers
    out->append(buf, static_cast<size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos ||
        out->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Parses "METHOD /path HTTP/1.x" from the first request line.
bool ParseRequestLine(const std::string& head, HttpRequest* req) {
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req->method.empty() || req->path.empty() || req->path[0] != '/') {
    return false;
  }
  // Query strings are accepted but ignored by every route.
  const size_t query = req->path.find('?');
  if (query != std::string::npos) req->path.resize(query);
  return line.compare(sp2 + 1, 5, "HTTP/") == 0;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port, HttpHandler handler) {
  if (running_) {
    return Status::FailedPrecondition("http server already running on port " +
                                      std::to_string(port_));
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("http server needs a handler");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local scrapes only
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("bind 127.0.0.1:" + std::to_string(port) + ": " +
                            err);
  }
  if (listen(fd, 16) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("listen: " + err);
  }
  // Recover the actual port when the caller asked for an ephemeral one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  handler_ = std::move(handler);
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wakes the blocked accept(2) with an error; no self-pipe needed since
  // the listener is never reused.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
  handler_ = nullptr;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() from Stop(), or the socket is dead
    }
    // A stalled client must not wedge the exporter: bound both directions.
    timeval timeout{5, 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    HandleConnection(fd);
    close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string head;
  HttpRequest req;
  HttpResponse resp;
  if (!ReadRequestHead(fd, &head) || !ParseRequestLine(head, &req)) {
    resp.status = 400;
    resp.body = "bad request\n";
  } else if (req.method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else {
    resp = handler_(req);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  SendAll(fd, out);
}

}  // namespace obs
}  // namespace chronicle
