#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace chronicle {
namespace obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

// Writes the whole buffer, retrying on EINTR / short writes. MSG_NOSIGNAL
// keeps a client that hung up from killing the process with SIGPIPE.
// Returns false when the client is gone.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client gone; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Appends more bytes from the socket into `buf`. Returns false on EOF,
// error, or timeout.
bool ReadMore(int fd, std::string* buf) {
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout (EAGAIN under SO_RCVTIMEO) or error
    }
    if (n == 0) return false;  // EOF
    buf->append(chunk, static_cast<size_t>(n));
    return true;
  }
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Parses "METHOD /path[?query] HTTP/1.x" from the first request line.
bool ParseRequestLine(const std::string& line, HttpRequest* req) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req->method.empty() || req->path.empty() || req->path[0] != '/') {
    return false;
  }
  const size_t query = req->path.find('?');
  if (query != std::string::npos) {
    req->query = req->path.substr(query + 1);
    req->path.resize(query);
  }
  return line.compare(sp2 + 1, 5, "HTTP/") == 0;
}

// Parses "Name: value" lines between the request line and the blank line.
void ParseHeaders(const std::string& head, size_t first_line_end,
                  HttpRequest* req) {
  size_t pos = first_line_end;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = Trim(head.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    req->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                              Trim(line.substr(colon + 1)));
  }
}

// Renders a complete response (status line + headers + body).
std::string RenderResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const auto& [name, value] : resp.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port, HttpHandler handler) {
  return Start(port, std::move(handler), HttpServerOptions{});
}

Status HttpServer::Start(uint16_t port, HttpHandler handler,
                         HttpServerOptions options) {
  if (running_) {
    return Status::FailedPrecondition("http server already running on port " +
                                      std::to_string(port_));
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("http server needs a handler");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("bind 127.0.0.1:" + std::to_string(port) + ": " +
                            err);
  }
  if (listen(fd, 64) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("listen: " + err);
  }
  // Recover the actual port when the caller asked for an ephemeral one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  handler_ = std::move(handler);
  options_ = options;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wakes the blocked accept(2) with an error; no self-pipe needed since
  // the listener is never reused.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  // Wake every connection thread blocked in recv, then wait for all of
  // them to finish. The threads are detached; active_connections_ hitting
  // zero is the proof none still touches this object.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    for (const int fd : open_fds_) shutdown(fd, SHUT_RDWR);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
  handler_ = nullptr;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() from Stop(), or the socket is dead
    }
    // A stalled client must not wedge the server: bound both directions.
    timeval timeout{options_.idle_timeout_sec, 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    if (options_.max_connections == 0) {
      HandleConnection(fd);
      close(fd);
      continue;
    }

    bool spawn = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (active_connections_ < options_.max_connections &&
          !stopping_.load(std::memory_order_relaxed)) {
        ++active_connections_;
        open_fds_.insert(fd);
        spawn = true;
      }
    }
    if (!spawn) {
      HttpResponse resp;
      resp.status = 503;
      resp.body = "connection limit reached\n";
      SendAll(fd, RenderResponse(resp, /*keep_alive=*/false));
      close(fd);
      continue;
    }
    std::thread([this, fd] { ServeOnThread(fd); }).detach();
  }
}

void HttpServer::ServeOnThread(int fd) {
  HandleConnection(fd);
  // Erase + decrement + notify under the mutex, so Stop() cannot observe
  // active_connections_ == 0 while this thread still runs.
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_fds_.erase(fd);
  close(fd);
  --active_connections_;
  conn_cv_.notify_all();
}

// Serves one connection: under keep_alive, loops over pipelined requests
// in a single growing buffer; otherwise serves exactly one request. Any
// protocol error sends its status and closes.
void HttpServer::HandleConnection(int fd) {
  std::string buf;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Accumulate until the end-of-headers marker (pipelined requests may
    // already be buffered from the previous read).
    size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
      if (buf.size() > options_.max_header_bytes) {
        HttpResponse resp;
        resp.status = 400;
        resp.body = "request head too large\n";
        SendAll(fd, RenderResponse(resp, false));
        return;
      }
      if (!ReadMore(fd, &buf)) return;  // EOF / idle timeout
    }
    const std::string head = buf.substr(0, head_end);
    buf.erase(0, head_end + 4);

    HttpRequest req;
    size_t first_eol = head.find('\n');
    if (first_eol == std::string::npos) first_eol = head.size();
    std::string first_line = head.substr(0, first_eol);
    if (!first_line.empty() && first_line.back() == '\r') {
      first_line.pop_back();
    }
    if (!ParseRequestLine(first_line, &req)) {
      HttpResponse resp;
      resp.status = 400;
      resp.body = "bad request\n";
      SendAll(fd, RenderResponse(resp, false));
      return;
    }
    ParseHeaders(head, first_eol + 1, &req);

    // Does the client want the connection kept open after this response?
    bool client_keep_alive = options_.keep_alive;
    if (const std::string* conn = req.FindHeader("connection")) {
      if (ToLower(*conn) == "close") client_keep_alive = false;
    }

    HttpResponse resp;
    bool handled = false;

    // Body framing first: a declared body must either be consumed here or
    // the connection closed — leftover body bytes would be parsed as the
    // next pipelined request (protocol desync on attacker-controlled
    // content). Transfer-Encoding framing is not implemented, so its body
    // length is unknowable: 501 and close.
    bool framing_known = true;
    size_t body_len = 0;
    if (req.FindHeader("transfer-encoding") != nullptr) {
      resp.status = 501;
      resp.body = "transfer-encoding is not supported\n";
      handled = true;
      framing_known = false;
    } else if (const std::string* cl = req.FindHeader("content-length")) {
      char* end = nullptr;
      const unsigned long long v = strtoull(cl->c_str(), &end, 10);
      if (end == nullptr || end == cl->c_str() || *end != '\0') {
        resp.status = 400;
        resp.body = "bad content-length\n";
        handled = true;
        framing_known = false;  // cannot tell where the body ends
      } else {
        body_len = static_cast<size_t>(v);
      }
    }

    if (!handled && req.method != "GET" &&
        (req.method != "POST" || !options_.enable_post)) {
      resp.status = 405;
      resp.body = options_.enable_post ? "only GET and POST are supported\n"
                                       : "only GET is supported\n";
      handled = true;
    }

    // Read the declared body: delivered to the handler for an accepted
    // POST, silently drained for anything else (a 405'd PUT with a body, a
    // GET with Content-Length) so the connection stays in sync.
    const bool deliver_body =
        !handled && req.method == "POST" && options_.enable_post;
    if (!deliver_body && !client_keep_alive) {
      // The connection closes after this response anyway; don't block
      // waiting for body bytes nobody will use.
      framing_known = body_len == 0;
    }
    if (framing_known && body_len > 0) {
      if (body_len > options_.max_body_bytes) {
        // Reject before reading; the client may still be mid-send, so the
        // connection cannot be reused.
        if (!handled) {
          resp.status = 413;
          resp.body = "body too large\n";
        }
        SendAll(fd, RenderResponse(resp, false));
        return;
      }
      if (const std::string* expect = req.FindHeader("expect")) {
        if (ToLower(*expect) == "100-continue") {
          if (!SendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n")) return;
        }
      }
      while (buf.size() < body_len) {
        if (!ReadMore(fd, &buf)) return;  // truncated body
      }
      if (deliver_body) req.body = buf.substr(0, body_len);
      buf.erase(0, body_len);
    }
    if (!framing_known) resp.close = true;

    if (!handled) resp = handler_(req);
    requests_served_.fetch_add(1, std::memory_order_relaxed);

    const bool keep = client_keep_alive && !resp.close &&
                      !stopping_.load(std::memory_order_relaxed);
    if (!SendAll(fd, RenderResponse(resp, keep))) return;
    if (!keep) return;
  }
}

}  // namespace obs
}  // namespace chronicle
