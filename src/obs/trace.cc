#include "obs/trace.h"

namespace chronicle {
namespace obs {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAppendTick:
      return "append_tick";
    case SpanKind::kRouting:
      return "routing";
    case SpanKind::kWorkerBatch:
      return "worker_batch";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kWalSync:
      return "wal_sync";
  }
  return "unknown";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(capacity == 0 ? 0 : RoundUpPow2(capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRing::Emit(SpanKind kind, uint16_t worker, uint64_t sn,
                     int64_t start_ns, int64_t duration_ns, uint64_t detail0,
                     uint64_t detail1) {
  if (slots_.empty()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (slots_.size() - 1)];
  // Seqlock write: odd version in, fields, even version out. The payload
  // stores are relaxed (they are ordered by the release stores on
  // version); two writers can only collide on one slot after the ring
  // wraps within a single tick, in which case the slot ends even and
  // holds one of the two spans — still coherent.
  const uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.worker.store(worker, std::memory_order_relaxed);
  slot.sn.store(sn, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.detail0.store(detail0, std::memory_order_relaxed);
  slot.detail1.store(detail1, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

bool TraceRing::ReadSlot(const Slot& slot, TraceSpan* out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // writer inside
    out->seq = slot.seq.load(std::memory_order_relaxed);
    out->kind = static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
    out->worker = slot.worker.load(std::memory_order_relaxed);
    out->sn = slot.sn.load(std::memory_order_relaxed);
    out->start_ns = slot.start_ns.load(std::memory_order_relaxed);
    out->duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    out->detail0 = slot.detail0.load(std::memory_order_relaxed);
    out->detail1 = slot.detail1.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == v1) return true;
  }
  return false;  // continuously overwritten; drop the span
}

std::vector<TraceSpan> TraceRing::Snapshot() const {
  std::vector<TraceSpan> out;
  if (slots_.empty()) return out;
  const uint64_t emitted = next_.load(std::memory_order_acquire);
  const uint64_t retained =
      emitted < slots_.size() ? emitted : static_cast<uint64_t>(slots_.size());
  out.reserve(retained);
  for (uint64_t seq = emitted - retained; seq < emitted; ++seq) {
    TraceSpan span;
    if (!ReadSlot(slots_[seq & (slots_.size() - 1)], &span)) continue;
    // A slot overwritten since `emitted` was sampled carries a newer span;
    // keep it (it is a real span) — order stays oldest-first because newer
    // seqs only ever land in later ring positions within one pass.
    out.push_back(span);
  }
  return out;
}

}  // namespace obs
}  // namespace chronicle
