#include "obs/trace.h"

namespace chronicle {
namespace obs {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAppendTick:
      return "append_tick";
    case SpanKind::kRouting:
      return "routing";
    case SpanKind::kWorkerBatch:
      return "worker_batch";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kWalSync:
      return "wal_sync";
  }
  return "unknown";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(capacity == 0 ? 0 : RoundUpPow2(capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRing::Emit(SpanKind kind, uint16_t worker, uint64_t sn,
                     int64_t start_ns, int64_t duration_ns, uint64_t detail0,
                     uint64_t detail1) {
  if (slots_.empty()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  TraceSpan& slot = slots_[seq & (slots_.size() - 1)];
  slot.kind = kind;
  slot.worker = worker;
  slot.sn = sn;
  slot.start_ns = start_ns;
  slot.duration_ns = duration_ns;
  slot.detail0 = detail0;
  slot.detail1 = detail1;
  slot.seq = seq;
}

std::vector<TraceSpan> TraceRing::Snapshot() const {
  std::vector<TraceSpan> out;
  if (slots_.empty()) return out;
  const uint64_t emitted = next_.load(std::memory_order_relaxed);
  const uint64_t retained =
      emitted < slots_.size() ? emitted : static_cast<uint64_t>(slots_.size());
  out.reserve(retained);
  for (uint64_t seq = emitted - retained; seq < emitted; ++seq) {
    out.push_back(slots_[seq & (slots_.size() - 1)]);
  }
  return out;
}

}  // namespace obs
}  // namespace chronicle
