// Exporters for the observability snapshot (obs/stats.h).
//
// Three renderings of the same StatsSnapshot:
//   * RenderText        — human-oriented `\stats` shell output.
//   * RenderPrometheus  — Prometheus text exposition format (HELP/TYPE
//                         lines, histogram _bucket{le=...}/_sum/_count).
//   * RenderJson        — machine-readable dump benches and CI assert
//                         against (STATS_E13.json).
// Plus RenderTraceText for the `\trace` command and ValidateJson, a
// dependency-free JSON syntax checker the fuzz test and the bench
// self-check use (the toolchain has no JSON library and we do not add
// one).

#ifndef CHRONICLE_OBS_EXPORT_H_
#define CHRONICLE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace chronicle {
namespace obs {

// Human-readable multi-line summary (shell `\stats`).
std::string RenderText(const StatsSnapshot& snapshot);

// Prometheus text exposition format, version 0.0.4. Every metric is
// prefixed `chronicle_`; per-view stats become labelled series
// (`chronicle_view_ticks{view="clicks_by_user"} 42`).
std::string RenderPrometheus(const StatsSnapshot& snapshot);

// Machine-readable JSON dump. Guaranteed to pass ValidateJson; field
// layout is documented in docs/OBSERVABILITY.md.
std::string RenderJson(const StatsSnapshot& snapshot);

// Human-readable span listing (shell `\trace`), oldest first.
std::string RenderTraceText(const std::vector<TraceSpan>& spans,
                            uint64_t total_emitted, uint64_t capacity);

// JSON span listing for the monitoring endpoint (/trace.json) and the
// flight recorder: {"emitted":N,"capacity":N,"spans":[{...}]}. Every span
// carries a "shard" tag (-1 for an unsharded engine) so merged listings
// stay attributable. Guaranteed to pass ValidateJson.
std::string RenderTraceJson(const std::vector<TraceSpan>& spans,
                            uint64_t total_emitted, uint64_t capacity);

// One shard engine's trace-ring window, for the merged sharded
// /trace.json. Shard workers emit into their own ring with worker-local
// sequence numbers; tagging each span with its shard id at export is what
// keeps the merged listing attributable (seq orders spans only WITHIN a
// shard).
struct ShardTraceSnapshot {
  int shard = -1;  // -1 = the unsharded engine
  uint64_t emitted = 0;
  uint64_t capacity = 0;
  std::vector<TraceSpan> spans;
};

// Merged multi-shard render: {"emitted":sum,"capacity":sum,"shards":[
// {"shard":k,"emitted":N,"capacity":N,"spans":[{...,"shard":k}]}]}.
std::string RenderTraceJson(const std::vector<ShardTraceSnapshot>& shards);

// Escapes `s` for use inside a JSON string literal (also valid as a
// Prometheus label value). Exposed so other JSON emitters (plan EXPLAIN,
// the HTTP error bodies) share one escaping implementation.
std::string JsonEscape(const std::string& s);

// Minimal recursive-descent JSON syntax checker: accepts exactly the
// RFC 8259 grammar (objects, arrays, strings with escapes, numbers,
// true/false/null). Returns OK iff `text` is one complete JSON value.
Status ValidateJson(const std::string& text);

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_EXPORT_H_
