// MetricsRegistry: always-on, low-overhead named counters and log-bucketed
// latency histograms for the maintenance path.
//
// The paper's complexity claim (Theorems 4.2/4.3) bounds per-append cost;
// this registry is how a live database demonstrates it: tick latencies,
// delta sizes, and arena pressure become observable without benches. The
// design constraints, in order:
//
//   * ZERO contention on the hot path. Every metric is sharded per worker
//     (kShards cache-line-padded slots); the parallel fan-out's task t
//     writes shard t and the serial driver writes shard 0, so increments
//     never bounce a cache line between threads. Counters are relaxed
//     atomics (a racy read is still a defined read); histograms are plain
//     per-shard state with a single writer each.
//   * MERGED ON READ. CounterValue / MergedHistogram / Snapshot fold the
//     shards. Reads are only performed by the driver thread between
//     appends (ThreadPool::Wait establishes the happens-before), matching
//     the single-writer discipline of the rest of the database.
//   * REGISTRATION OFF THE HOT PATH. Metrics are registered once at
//     database construction; the append path indexes a flat array by a
//     pre-resolved MetricId and never hashes a name.
//
// The registry is deliberately unit-agnostic: histograms record any
// non-negative int64 (nanoseconds, batch sizes, bytes); the metric name
// carries the unit suffix (`_ns`, `_ticks`, `_bytes`) per Prometheus
// convention — see docs/OBSERVABILITY.md for the catalog.

#ifndef CHRONICLE_OBS_METRICS_H_
#define CHRONICLE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace chronicle {
namespace obs {

// Index into the registry's metric table, resolved at registration time.
using MetricId = uint32_t;

// One merged metric, as read by the exporters (obs/export.h).
struct MetricSample {
  std::string name;
  std::string help;
  bool is_histogram = false;
  uint64_t value = 0;           // counters
  LatencyHistogram histogram;   // histograms
};

class MetricsRegistry {
 public:
  // Worker shards per metric. Worker indexes beyond this wrap (`& mask`),
  // which only costs precision-free sharing of a slot, never correctness.
  static constexpr size_t kShards = 16;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (construction time only, single-threaded) ---

  MetricId AddCounter(std::string name, std::string help);
  MetricId AddHistogram(std::string name, std::string help);

  // --- hot path (lock-free; `worker` is the fan-out task index) ---

  void Count(MetricId id, uint64_t delta, size_t worker = 0) {
    metrics_[id]->counters[worker & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Observe(MetricId id, int64_t value, size_t worker = 0) {
    metrics_[id]->histograms[worker & (kShards - 1)].Record(value);
  }

  // --- merged on read (driver thread, between appends) ---

  uint64_t CounterValue(MetricId id) const;
  LatencyHistogram MergedHistogram(MetricId id) const;
  // Appends every metric, in registration order, to `out`.
  void Snapshot(std::vector<MetricSample>* out) const;

  size_t num_metrics() const { return metrics_.size(); }

 private:
  // One cache line per counter shard so concurrent workers never share.
  struct alignas(64) CounterShard {
    std::atomic<uint64_t> value{0};
  };
  struct Metric {
    std::string name;
    std::string help;
    bool is_histogram = false;
    CounterShard counters[kShards];
    LatencyHistogram histograms[kShards];
  };

  // unique_ptr keeps Metric addresses stable across registration and makes
  // the non-copyable atomics storable in a vector.
  std::vector<std::unique_ptr<Metric>> metrics_;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_METRICS_H_
