#include "obs/metrics.h"

namespace chronicle {
namespace obs {

MetricId MetricsRegistry::AddCounter(std::string name, std::string help) {
  auto metric = std::make_unique<Metric>();
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->is_histogram = false;
  metrics_.push_back(std::move(metric));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId MetricsRegistry::AddHistogram(std::string name, std::string help) {
  auto metric = std::make_unique<Metric>();
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->is_histogram = true;
  metrics_.push_back(std::move(metric));
  return static_cast<MetricId>(metrics_.size() - 1);
}

uint64_t MetricsRegistry::CounterValue(MetricId id) const {
  const Metric& metric = *metrics_[id];
  uint64_t total = 0;
  for (const CounterShard& shard : metric.counters) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

LatencyHistogram MetricsRegistry::MergedHistogram(MetricId id) const {
  const Metric& metric = *metrics_[id];
  LatencyHistogram merged;
  for (const LatencyHistogram& shard : metric.histograms) {
    merged.Merge(shard);
  }
  return merged;
}

void MetricsRegistry::Snapshot(std::vector<MetricSample>* out) const {
  out->reserve(out->size() + metrics_.size());
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    const Metric& metric = *metrics_[id];
    MetricSample sample;
    sample.name = metric.name;
    sample.help = metric.help;
    sample.is_histogram = metric.is_histogram;
    if (metric.is_histogram) {
      sample.histogram = MergedHistogram(id);
    } else {
      sample.value = CounterValue(id);
    }
    out->push_back(std::move(sample));
  }
}

}  // namespace obs
}  // namespace chronicle
