#include "obs/history.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace chronicle {
namespace obs {

namespace {

// Percentile over the bucket-wise DIFFERENCE of two cumulative histograms
// (newer minus older): the distribution of only the samples recorded
// between them. Same resolution contract as LatencyHistogram's own
// PercentileNanos (the bucket upper bound).
int64_t DiffPercentile(const LatencyHistogram& newer,
                       const LatencyHistogram& older, double q) {
  uint64_t total = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    total += newer.bucket(i) - older.bucket(i);
  }
  if (total == 0) return 0;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += newer.bucket(i) - older.bucket(i);
    if (cumulative > target || cumulative == total) {
      return LatencyHistogram::BucketUpperBound(i);
    }
  }
  return LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets - 1);
}

uint64_t MetricValue(const StatsSnapshot& snapshot, const char* name) {
  for (const MetricSample& m : snapshot.metrics) {
    if (!m.is_histogram && m.name == name) return m.value;
  }
  return 0;
}

const LatencyHistogram* MetricHistogram(const StatsSnapshot& snapshot,
                                        const char* name) {
  for (const MetricSample& m : snapshot.metrics) {
    if (m.is_histogram && m.name == name) return &m.histogram;
  }
  return nullptr;
}

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                         ? static_cast<size_t>(n)
                         : sizeof(buf) - 1);
  }
}

// One sparkline over `values`, scaled to the max (all-zero renders flat).
std::string Sparkline(const std::vector<double>& values) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};
  double max = 0.0;
  for (double v : values) max = std::max(max, v);
  std::string out;
  for (double v : values) {
    const int level =
        max <= 0.0 ? 0
                   : std::min(7, static_cast<int>(v / max * 7.0 + 0.5));
    out += kBars[level];
  }
  return out;
}

std::string HumanRate(double v) {
  char buf[32];
  if (v >= 1e6) {
    snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

StatsHistory::StatsHistory(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void StatsHistory::Push(int64_t t_ns, const StatsSnapshot& snapshot) {
  HistorySample sample;
  sample.t_ns = t_ns;
  sample.appends = snapshot.appends_processed;
  sample.delta_rows = MetricValue(snapshot, "maintenance_delta_rows_total");
  sample.view_ticks = MetricValue(snapshot, "maintenance_view_ticks_total");
  if (const LatencyHistogram* h =
          MetricHistogram(snapshot, "maintenance_tick_ns")) {
    sample.tick_latency = *h;
  }
  if (snapshot.sharding.attached) {
    sample.shards.reserve(snapshot.sharding.shards.size());
    for (const ShardStatsSnapshot& s : snapshot.sharding.shards) {
      ShardHistorySample shard;
      shard.shard = s.shard;
      shard.appends = s.appends_processed;
      shard.routed_rows = s.routed_rows;
      shard.queue_depth = s.queue_depth;
      if (s.tick_latency_populated) shard.tick_latency = s.tick_latency;
      sample.shards.push_back(std::move(shard));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_ % capacity_] = std::move(sample);
  }
  ++next_;
}

std::vector<HistorySample> StatsHistory::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistorySample> out;
  out.reserve(ring_.size());
  const uint64_t oldest = next_ < capacity_ ? 0 : next_ - capacity_;
  for (uint64_t i = oldest; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

std::vector<HistoryWindow> StatsHistory::Windows() const {
  const std::vector<HistorySample> samples = Samples();
  std::vector<HistoryWindow> out;
  if (samples.size() < 2) return out;
  out.reserve(samples.size() - 1);
  for (size_t i = 1; i < samples.size(); ++i) {
    const HistorySample& a = samples[i - 1];
    const HistorySample& b = samples[i];
    HistoryWindow w;
    w.t_ns = b.t_ns;
    w.seconds = static_cast<double>(b.t_ns - a.t_ns) / 1e9;
    const double secs = w.seconds > 0.0 ? w.seconds : 1e-9;
    w.appends_per_sec = static_cast<double>(b.appends - a.appends) / secs;
    w.delta_rows_per_sec =
        static_cast<double>(b.delta_rows - a.delta_rows) / secs;
    w.view_ticks = b.view_ticks - a.view_ticks;
    w.tick_p50_ns = DiffPercentile(b.tick_latency, a.tick_latency, 0.5);
    w.tick_p99_ns = DiffPercentile(b.tick_latency, a.tick_latency, 0.99);
    // Per-shard windows only when both samples describe the same shard
    // layout; a mismatch (resharding, sampler started mid-reopen) would
    // make the counter differences meaningless.
    if (!b.shards.empty() && a.shards.size() == b.shards.size()) {
      bool same_layout = true;
      for (size_t k = 0; k < b.shards.size(); ++k) {
        if (a.shards[k].shard != b.shards[k].shard) {
          same_layout = false;
          break;
        }
      }
      if (same_layout) {
        w.shards.reserve(b.shards.size());
        for (size_t k = 0; k < b.shards.size(); ++k) {
          const ShardHistorySample& sa = a.shards[k];
          const ShardHistorySample& sb = b.shards[k];
          ShardHistoryWindow sw;
          sw.shard = sb.shard;
          sw.appends_per_sec =
              static_cast<double>(sb.appends - sa.appends) / secs;
          sw.routed_rows_per_sec =
              static_cast<double>(sb.routed_rows - sa.routed_rows) / secs;
          sw.queue_depth = sb.queue_depth;
          sw.tick_p50_ns =
              DiffPercentile(sb.tick_latency, sa.tick_latency, 0.5);
          sw.tick_p99_ns =
              DiffPercentile(sb.tick_latency, sa.tick_latency, 0.99);
          w.shards.push_back(sw);
        }
      }
    }
    out.push_back(w);
  }
  return out;
}

uint64_t StatsHistory::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

std::string RenderHistoryJson(const std::vector<HistoryWindow>& windows,
                              uint64_t total_samples, uint64_t capacity) {
  std::string out;
  Appendf(&out, "{\"samples\":%" PRIu64 ",\"capacity\":%" PRIu64
                ",\"windows\":[",
          total_samples, capacity);
  for (size_t i = 0; i < windows.size(); ++i) {
    const HistoryWindow& w = windows[i];
    if (i > 0) out += ",";
    Appendf(&out,
            "{\"t_ns\":%" PRId64 ",\"seconds\":%.6f,\"appends_per_sec\":%.3f"
            ",\"delta_rows_per_sec\":%.3f,\"view_ticks\":%" PRIu64
            ",\"tick_p50_ns\":%" PRId64 ",\"tick_p99_ns\":%" PRId64,
            w.t_ns, w.seconds, w.appends_per_sec, w.delta_rows_per_sec,
            w.view_ticks, w.tick_p50_ns, w.tick_p99_ns);
    if (!w.shards.empty()) {
      out += ",\"shards\":[";
      for (size_t k = 0; k < w.shards.size(); ++k) {
        const ShardHistoryWindow& s = w.shards[k];
        if (k > 0) out += ",";
        Appendf(&out,
                "{\"shard\":%zu,\"appends_per_sec\":%.3f"
                ",\"routed_rows_per_sec\":%.3f,\"queue_depth\":%" PRIu64
                ",\"tick_p50_ns\":%" PRId64 ",\"tick_p99_ns\":%" PRId64 "}",
                s.shard, s.appends_per_sec, s.routed_rows_per_sec,
                s.queue_depth, s.tick_p50_ns, s.tick_p99_ns);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string RenderHistoryText(const std::vector<HistoryWindow>& windows) {
  if (windows.empty()) {
    return "history: not enough samples yet (need two sampler ticks)\n";
  }
  std::vector<double> appends, rows, p99;
  appends.reserve(windows.size());
  rows.reserve(windows.size());
  p99.reserve(windows.size());
  for (const HistoryWindow& w : windows) {
    appends.push_back(w.appends_per_sec);
    rows.push_back(w.delta_rows_per_sec);
    p99.push_back(static_cast<double>(w.tick_p99_ns));
  }
  const HistoryWindow& last = windows.back();
  std::string out;
  Appendf(&out, "history: %zu window(s), newest last\n", windows.size());
  Appendf(&out, "  appends/s    %s  now %s\n", Sparkline(appends).c_str(),
          HumanRate(last.appends_per_sec).c_str());
  Appendf(&out, "  delta rows/s %s  now %s\n", Sparkline(rows).c_str(),
          HumanRate(last.delta_rows_per_sec).c_str());
  Appendf(&out,
          "  tick p99     %s  now %.1fus (p50 %.1fus, %" PRIu64 " ticks)\n",
          Sparkline(p99).c_str(), last.tick_p99_ns / 1e3, last.tick_p50_ns / 1e3,
          last.view_ticks);
  return out;
}

StatsSampler::StatsSampler(StatsHistory* history, SnapshotProvider provider,
                           int64_t interval_ms)
    : history_(history),
      provider_(std::move(provider)),
      interval_ms_(interval_ms < 1 ? 1 : interval_ms) {
  history_->Push(NowNanos(), provider_());
  thread_ = std::thread([this] { Loop(); });
}

StatsSampler::~StatsSampler() { Stop(); }

int64_t StatsSampler::NowNanos() const {
  // Absolute steady-clock nanoseconds: the same timebase the database's
  // off-schedule SampleStatsNow stamps with, so windows straddling a
  // sampler restart keep positive widths.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void StatsSampler::SampleNow() { history_->Push(NowNanos(), provider_()); }

void StatsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    history_->Push(NowNanos(), provider_());
    lock.lock();
  }
}

}  // namespace obs
}  // namespace chronicle
