// StatsHistory + StatsSampler: short-term time-series over the stats
// snapshot, the piece a single CollectStats cannot give you — a snapshot
// reports counts since start, not rates, and a histogram merged since
// start buries the last second's p99 under an hour of samples.
//
// StatsHistory is a fixed-capacity ring of distilled samples (counter
// values + the cumulative tick-latency histogram) pushed periodically by
// a StatsSampler thread; Windows() derives, on read, the per-interval
// rates (appends/s, delta-rows/s) and percentiles (p50/p99 tick latency
// from the bucket-wise histogram difference of adjacent samples). Nothing
// here touches the maintenance hot path: the sampler calls the same
// CollectStats the shell does, at a human cadence.
//
// Thread safety: StatsHistory is internally mutexed (pushed by the
// sampler thread, read by the HTTP handler, the shell, and the flight
// recorder). StatsSampler owns its thread; Stop() (or destruction) joins.

#ifndef CHRONICLE_OBS_HISTORY_H_
#define CHRONICLE_OBS_HISTORY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/stats.h"

namespace chronicle {
namespace obs {

// One shard's slice of a periodic sample (sharded snapshots only).
struct ShardHistorySample {
  size_t shard = 0;
  uint64_t appends = 0;        // shard engine's appends_processed
  uint64_t routed_rows = 0;    // rows routed to this shard, cumulative
  uint64_t queue_depth = 0;    // gauge at sample time (not differenced)
  LatencyHistogram tick_latency;  // shard's cumulative maintenance_tick_ns
};

// One periodic sample, distilled from a StatsSnapshot at push time so the
// ring holds a few hundred bytes per entry, not whole snapshots.
struct HistorySample {
  int64_t t_ns = 0;            // sampler clock, ns since the history epoch
  uint64_t appends = 0;        // appends_processed
  uint64_t delta_rows = 0;     // maintenance_delta_rows_total
  uint64_t view_ticks = 0;     // maintenance_view_ticks_total
  LatencyHistogram tick_latency;  // cumulative maintenance_tick_ns
  std::vector<ShardHistorySample> shards;  // empty when unsharded
};

// One shard's slice of a derived window.
struct ShardHistoryWindow {
  size_t shard = 0;
  double appends_per_sec = 0.0;
  double routed_rows_per_sec = 0.0;
  uint64_t queue_depth = 0;    // gauge at window end
  int64_t tick_p50_ns = 0;     // percentile of the shard's OWN window
  int64_t tick_p99_ns = 0;
};

// One derived window between two adjacent samples.
struct HistoryWindow {
  int64_t t_ns = 0;        // window end, ns since the history epoch
  double seconds = 0.0;    // window length
  double appends_per_sec = 0.0;
  double delta_rows_per_sec = 0.0;
  uint64_t view_ticks = 0;     // ticks inside the window
  int64_t tick_p50_ns = 0;     // percentile of the window's OWN samples
  int64_t tick_p99_ns = 0;     // (bucket-wise histogram difference)
  // Per-shard breakdown; derived only when both samples report the same
  // shard layout (empty across a resharding boundary or when unsharded).
  std::vector<ShardHistoryWindow> shards;
};

class StatsHistory {
 public:
  // `capacity` samples are retained; older ones are overwritten.
  explicit StatsHistory(size_t capacity);

  // Distills `snapshot` into a sample stamped `t_ns` and appends it.
  void Push(int64_t t_ns, const StatsSnapshot& snapshot);

  // Retained samples, oldest first.
  std::vector<HistorySample> Samples() const;
  // Derived windows between adjacent retained samples, oldest first
  // (empty until two samples exist).
  std::vector<HistoryWindow> Windows() const;

  size_t capacity() const { return capacity_; }
  uint64_t total_samples() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<HistorySample> ring_;
  uint64_t next_ = 0;  // samples ever pushed
};

// JSON rendering of the derived windows ({"samples":…,"capacity":…,
// "windows":[…]}); guaranteed to pass ValidateJson.
std::string RenderHistoryJson(const std::vector<HistoryWindow>& windows,
                              uint64_t total_samples, uint64_t capacity);

// Sparkline rendering for the shell's `\history`.
std::string RenderHistoryText(const std::vector<HistoryWindow>& windows);

// Periodically pushes provider() into a StatsHistory from its own thread.
// The first sample is taken immediately at construction, so one interval
// after startup the history already yields a window.
class StatsSampler {
 public:
  using SnapshotProvider = std::function<StatsSnapshot()>;

  // `history` must outlive the sampler. `interval_ms` is clamped to >= 1.
  StatsSampler(StatsHistory* history, SnapshotProvider provider,
               int64_t interval_ms);
  ~StatsSampler();  // Stop()

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  // Takes one sample now, off-schedule (shell `\history`, tests).
  void SampleNow();

  // Joins the sampler thread. Idempotent.
  void Stop();

 private:
  void Loop();
  int64_t NowNanos() const;

  StatsHistory* history_;
  SnapshotProvider provider_;
  const int64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_HISTORY_H_
