// HttpServer: a dependency-free HTTP/1.1 endpoint for the observability
// exporters (the toolchain has no HTTP library and we do not add one).
//
// Production systems are scraped over the network; this server is the
// smallest thing that satisfies a Prometheus scraper and `curl`: one
// blocking accept loop on its own thread, GET only, one request per
// connection (`Connection: close`), loopback bind. Routing is the
// caller's: Start takes a handler that maps an HttpRequest to an
// HttpResponse (ChronicleDatabase::StartMonitoring installs the /metrics,
// /stats.json, ... catalog documented in docs/OBSERVABILITY.md).
//
// Shutdown: Stop() flips a flag and shutdown(2)s the listening socket,
// which wakes the blocked accept with an error; the accept thread then
// exits and is joined. No self-pipe is needed because the listener is
// never re-armed after shutdown.
//
// Concurrency: the handler runs on the accept thread, concurrently with
// the database's append path — the handler is responsible for its own
// synchronization (the database serializes snapshot reads against ticks
// with its stats mutex).

#ifndef CHRONICLE_OBS_HTTP_SERVER_H_
#define CHRONICLE_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace chronicle {
namespace obs {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper-case, as sent)
  std::string path;    // "/metrics", "/views/fan/explain.json", ...
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();  // calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  // starts the accept thread. Fails if already running or the bind/listen
  // fails. `handler` is invoked on the accept thread for every parsed
  // request; malformed requests get a 400 and non-GET methods a 405
  // without reaching it.
  Status Start(uint16_t port, HttpHandler handler);

  // Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_; }
  // The bound port (the ephemeral one when Start was given 0).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  HttpHandler handler_;
  std::thread thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_HTTP_SERVER_H_
