// HttpServer: a dependency-free HTTP/1.1 endpoint (the toolchain has no
// HTTP library and we do not add one).
//
// Two configurations share this one implementation:
//
//   * Monitoring (the PR 5 defaults): GET only, one request per
//     connection (`Connection: close`), served inline on the accept
//     thread. The smallest thing that satisfies a Prometheus scraper and
//     `curl`. Start(port, handler) keeps exactly this behavior.
//
//   * Wire service (src/net): Start(port, handler, options) with
//     enable_post + keep_alive + max_connections > 0 turns on POST bodies
//     (Content-Length framing, Expect: 100-continue honored), persistent
//     pipelined HTTP/1.1 connections, per-request response headers
//     (Retry-After), and a bounded thread-per-connection model — beyond
//     the cap new connections get 503 without touching the handler.
//
// Body framing is strict: Transfer-Encoding is rejected with 501 (its
// framing is not implemented, so the body length is unknowable), a
// malformed Content-Length gets 400, and both close the connection. A
// well-framed body on a request the handler will not consume (a 405'd
// method, a GET with Content-Length) is drained before the next pipelined
// request is parsed — leftover body bytes are never misread as a request.
//
// Both bind 127.0.0.1 only. Routing is the caller's: Start takes a
// handler that maps an HttpRequest to an HttpResponse
// (ChronicleDatabase::StartMonitoring installs the /metrics, /stats.json,
// ... catalog; net::WireService installs /v1/*).
//
// Shutdown: Stop() flips a flag, shutdown(2)s the listening socket (which
// wakes the blocked accept), shutdown(2)s every open connection (which
// wakes blocked recvs), and waits for the connection threads to drain. No
// self-pipe is needed because the listener is never re-armed.
//
// Concurrency: with max_connections == 0 the handler runs on the accept
// thread; otherwise on per-connection threads, concurrently with each
// other. Either way it runs concurrently with the database's append path —
// the handler is responsible for its own synchronization.

#ifndef CHRONICLE_OBS_HTTP_SERVER_H_
#define CHRONICLE_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"

namespace chronicle {
namespace obs {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper-case, as sent)
  std::string path;    // "/metrics", "/v1/append", ... (query stripped)
  std::string query;   // raw query string after '?' ("" when absent)
  std::string body;    // POST body (empty unless options.enable_post)
  // Header (name, value) pairs in arrival order; names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;

  // First header with this lower-case name, or nullptr.
  const std::string* FindHeader(const std::string& lower_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return &value;
    }
    return nullptr;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Extra response headers, e.g. {"Retry-After", "1"}.
  std::vector<std::pair<std::string, std::string>> extra_headers;
  // Force `Connection: close` after this response even under keep-alive.
  bool close = false;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  // Accept POST requests and read Content-Length bodies. Off: non-GET
  // gets 405 and bodies are never read (no monitoring route accepts one).
  bool enable_post = false;
  // Serve multiple pipelined requests per connection (HTTP/1.1 keep-alive)
  // until the client sends `Connection: close`, idles out, or hangs up.
  bool keep_alive = false;
  // Request line + headers larger than this get 400.
  size_t max_header_bytes = 8192;
  // Bodies larger than this get 413 without being read.
  size_t max_body_bytes = 1 << 20;
  // > 0: one thread per connection, at most this many concurrent (beyond
  // the cap: 503). 0: serve inline on the accept thread.
  size_t max_connections = 0;
  // Per-direction socket timeout; an idle keep-alive connection is closed
  // after this long.
  int idle_timeout_sec = 5;
};

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();  // calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  // starts the accept thread. Fails if already running or the bind/listen
  // fails. `handler` is invoked for every parsed request; malformed
  // requests get a 400 and unsupported methods a 405 without reaching it.
  Status Start(uint16_t port, HttpHandler handler);
  Status Start(uint16_t port, HttpHandler handler, HttpServerOptions options);

  // Stops the accept loop, wakes and drains every connection, joins the
  // accept thread. Idempotent.
  void Stop();

  bool running() const { return running_; }
  // The bound port (the ephemeral one when Start was given 0).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void ServeOnThread(int fd);

  HttpHandler handler_;
  HttpServerOptions options_;
  std::thread thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  // Connection-thread bookkeeping (max_connections > 0). Threads detach;
  // Stop() waits until active_connections_ drains, so none can outlive
  // the server. open_fds_ lets Stop() wake blocked recvs.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  size_t active_connections_ = 0;
  std::unordered_set<int> open_fds_;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_HTTP_SERVER_H_
