// Observability data model: per-view maintenance statistics, the WAL/
// ingest statistics mirror, and the whole-database snapshot the exporters
// (obs/export.h) render.
//
// Everything in this header is plain data. The structs are filled by the
// components that own the live counters — ViewManager (per-view stats),
// ChronicleDatabase (appends, metrics registry, trace), and the shell or
// bench that owns a Wal (WAL stats are mirrored field-by-field so obs does
// not depend on src/wal) — and the exporters only ever see the snapshot.

#ifndef CHRONICLE_OBS_STATS_H_
#define CHRONICLE_OBS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chronicle {
namespace obs {

// Knobs for the observability layer, owned by DatabaseOptions. The layer
// is designed to stay on in production (bench E13 bounds the overhead at
// <= 5%); the flags exist for apples-to-apples baselines, not for normal
// operation.
struct ObservabilityOptions {
  // Per-view ViewStats, the metrics registry, and MaintenanceReport batch
  // timings. Off: the maintenance path takes no clocks and touches no
  // counters beyond the seed's MaintenanceReport.
  bool metrics = true;
  // Span slots in the trace ring (rounded up to a power of two); 0
  // disables tracing.
  size_t trace_capacity = 256;
  // Per-view latency histograms (two extra clock reads per view per
  // tick). Equivalent to ViewManager::set_profiling(true) at open.
  bool profile_view_latency = false;
  // Per-slot plan profiling for EXPLAIN (\explain, /views/<name>/
  // explain.json). When on, every slot_sample_period-th tick of each
  // compiled view is executed with per-instruction clocks; the samples
  // are folded into a per-view slot profile. Bounded by the same <= 5%
  // E13 overhead gate as the rest of the layer.
  bool profile_plan_slots = false;
  // Sample every Nth tick when profile_plan_slots is on (clamped >= 1).
  // 1 profiles every tick (tests); 16 keeps the amortized cost low.
  size_t slot_sample_period = 16;
  // Samples retained by the stats history ring (0 disables history even
  // when monitoring is started).
  size_t history_capacity = 128;
  // Sampler cadence for the history ring while monitoring is active.
  int64_t history_interval_ms = 1000;
  // Flight recorder: a maintenance tick slower than this budget dumps
  // trace + snapshot + the offending view's EXPLAIN to a JSON file.
  // 0 disables the recorder.
  int64_t slow_tick_budget_ns = 0;
  // Where slow-tick dumps land (created on first dump) and how many are
  // retained (oldest deleted beyond the cap).
  std::string flight_recorder_dir = "flight-recorder";
  size_t flight_recorder_max_dumps = 8;
  // Request tracing (obs::RequestTracer, owned by cql::Session): span
  // slots in the request-trace ring (rounded up to a power of two; 0
  // disables request tracing entirely).
  size_t request_trace_capacity = 256;
  // Head-sampling probability in [0,1]. 0 records no spans on the
  // server's own initiative — but a client-supplied traceparent header
  // with the sampled flag still forces a full span tree, so 0 is the
  // production default (RED counters are recorded for every request
  // regardless).
  double request_sample_rate = 0.0;
  // A sampled request slower than this budget dumps its span tree + a
  // stats snapshot through the flight recorder. 0 disables the capture.
  int64_t slow_request_budget_ns = 0;
};

// Per-view maintenance statistics, accumulated inside MaintainOne /
// DeltaPlan execution. Single-writer: each view is touched by exactly one
// fan-out task per tick, so these are plain counters (same discipline as
// the per-view latency histogram).
struct ViewStats {
  uint64_t ticks = 0;              // deltas computed for this view
  uint64_t updates = 0;            // ticks that produced >= 1 delta row
  uint64_t delta_rows = 0;         // total rows folded into the view
  uint64_t compiled_ticks = 0;     // ticks served by the compiled DeltaPlan
  uint64_t interpreted_ticks = 0;  // ticks served by the interpreter
  uint64_t relation_lookups = 0;   // index probes (the log|R|/O(1) term)
  uint64_t max_intermediate_rows = 0;  // high-water across all ticks
  // Compiled-execution pressure gauges (0 for interpreter-only views).
  uint32_t plan_slots = 0;         // slots in the compiled program (static)
  uint64_t arena_hwm_bytes = 0;    // per-tick arena high-water mark
  double max_dedupe_load = 0.0;    // dedupe-set load factor high-water
};

// One view's row in the snapshot.
struct ViewStatsSnapshot {
  std::string name;
  ViewStats stats;
  bool profiled = false;       // latency histogram is populated
  LatencyHistogram latency;    // empty unless profiling was on
};

// WAL/ingest statistics, mirrored from wal::Wal by whoever owns it (the
// db does not — durability is an attachment). `attached` false means the
// whole section is absent from exports.
struct WalStatsSnapshot {
  bool attached = false;
  uint64_t records_logged = 0;
  uint64_t bytes_logged = 0;
  uint64_t syncs = 0;
  uint64_t segments_created = 0;
  uint64_t segments_removed = 0;
  uint64_t checkpoints_written = 0;
  uint64_t group_commits = 0;        // LogAppendGroup calls
  uint64_t group_commit_ticks = 0;   // ticks covered by those calls
  LatencyHistogram fsync_latency;
  // Filled after a wal::Recover, from the RecoveryReport.
  bool recovered = false;
  uint64_t recovery_records_applied = 0;
  uint64_t recovery_records_skipped = 0;
};

// One chronicle's hot/warm tier breakdown in the storage section.
struct ChronicleTierSnapshot {
  std::string name;
  uint64_t hot_rows = 0;
  uint64_t hot_bytes = 0;        // ApproxTupleBytes footprint of the deque
  uint64_t warm_segments = 0;
  uint64_t warm_rows = 0;
  uint64_t warm_bytes = 0;       // on-disk encoded bytes
  uint64_t warm_raw_bytes = 0;   // in-memory-equivalent of the warm rows
  uint64_t last_sealed_sn = 0;
};

// Tiered-store statistics, mirrored from store::TieredStore by the
// database (obs does not depend on src/store). `attached` false means the
// section renders as absent/null.
struct StorageStatsSnapshot {
  bool attached = false;
  std::string data_dir;
  uint64_t segments_sealed = 0;
  uint64_t segments_evicted = 0;
  uint64_t segments_quarantined = 0;
  uint64_t rows_sealed = 0;
  uint64_t rows_evicted = 0;
  uint64_t bytes_written = 0;
  uint64_t seal_failures = 0;
  // Late-view backfill totals (db-level; the per-event metrics live in the
  // registry as backfill_events_total / backfill_rows_total).
  uint64_t backfill_views = 0;
  uint64_t backfill_rows = 0;
  std::vector<ChronicleTierSnapshot> chronicles;  // tiered chronicles only
};

// One shard's row in the sharding section: the router-side queue gauges
// plus the shard engine's own append/tick accounting.
struct ShardStatsSnapshot {
  size_t shard = 0;
  uint64_t appends_processed = 0;   // ticks applied by this shard's engine
  uint64_t queue_depth = 0;         // rows of all this shard's SPSC lanes
  uint64_t enqueued_batches = 0;    // batches handed to this shard so far
  uint64_t routed_rows = 0;         // rows routed to this shard so far
  bool tick_latency_populated = false;
  LatencyHistogram tick_latency;    // this shard's maintenance_tick_ns
};

// Sharding statistics, filled by shard::ShardedDatabase::CollectStats
// (obs does not depend on src/shard). `attached` false (a plain
// ChronicleDatabase) renders the section as absent/null.
struct ShardingStatsSnapshot {
  bool attached = false;
  size_t num_shards = 1;
  std::string partition_key;        // effective routing column ("" = mixed)
  std::vector<ShardStatsSnapshot> shards;
};

// One wire-service session's row in the net section.
struct NetSessionSnapshot {
  std::string id;
  uint64_t statements = 0;             // /v1/sql statements executed
  uint64_t append_rows_accepted = 0;   // rows accepted into the queue
  uint64_t append_rows_applied = 0;    // rows the ingest worker applied
  uint64_t queue_rows = 0;             // rows waiting in the bounded queue
  uint64_t rejected_backpressure = 0;  // 429s from a full queue
  uint64_t rejected_quota = 0;         // 429s from a spent row quota
  uint64_t row_quota = 0;              // configured quota (0 = unlimited)
};

// Network front-end statistics, filled by net::WireService through the
// session's stats-enricher chain (obs does not depend on src/net).
// `attached` false (no wire service running) renders the section as
// absent/null.
struct NetStatsSnapshot {
  bool attached = false;
  uint16_t port = 0;
  uint64_t requests_total = 0;         // HTTP requests routed
  uint64_t http_errors_total = 0;      // responses with status >= 400
  uint64_t sessions_opened = 0;
  uint64_t active_sessions = 0;
  uint64_t sql_statements_total = 0;
  uint64_t append_batches_total = 0;   // ticks accepted across sessions
  uint64_t append_rows_total = 0;      // rows accepted across sessions
  uint64_t rows_applied_total = 0;     // rows the ingest worker applied
  uint64_t queue_rows = 0;             // rows currently queued, all sessions
  uint64_t rejected_backpressure_total = 0;
  uint64_t rejected_quota_total = 0;
  uint64_t rejected_auth_total = 0;    // 401s (bad token / unknown session)
  std::vector<NetSessionSnapshot> sessions;
};

// One fixed request stage's latency histogram in the req section
// ("parse", "queue_wait", "append", "wal_commit", "maintain", "merge",
// "respond" — the chronicle_req_stage_* families).
struct ReqStageStatsSnapshot {
  std::string stage;
  LatencyHistogram latency;
};

// One endpoint's RED (rate/error/duration) row in the req section.
struct ReqEndpointStatsSnapshot {
  std::string endpoint;
  uint64_t requests = 0;
  uint64_t errors = 0;
  LatencyHistogram duration;
};

// Request-tracing statistics, filled by obs::RequestTracer::Fill through
// the session's stats-enricher chain. `attached` false (no tracer)
// renders the section as absent/null.
struct ReqStatsSnapshot {
  bool attached = false;
  double sample_rate = 0.0;
  uint64_t sampled_requests = 0;
  uint64_t unsampled_requests = 0;
  uint64_t spans_emitted = 0;
  uint64_t capacity = 0;
  uint64_t slow_captures = 0;
  int64_t slow_budget_ns = 0;
  std::vector<ReqStageStatsSnapshot> stages;        // the 7 fixed stages
  std::vector<ReqEndpointStatsSnapshot> endpoints;  // RED per endpoint
};

// The whole-database snapshot: everything the exporters render and the
// benches assert against. Built by ChronicleDatabase::CollectStats();
// the WAL section is merged in by the Wal's owner.
struct StatsSnapshot {
  uint64_t appends_processed = 0;
  uint64_t live_views = 0;
  uint64_t delta_cache_hits = 0;
  uint64_t delta_cache_misses = 0;
  std::vector<MetricSample> metrics;     // registry, registration order
  std::vector<ViewStatsSnapshot> views;  // live views, registration order
  WalStatsSnapshot wal;
  StorageStatsSnapshot storage;
  ShardingStatsSnapshot sharding;
  NetStatsSnapshot net;
  ReqStatsSnapshot req;
  uint64_t trace_emitted = 0;
  uint64_t trace_capacity = 0;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_STATS_H_
