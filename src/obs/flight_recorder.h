// FlightRecorder: automatic capture of slow maintenance ticks.
//
// When a tick blows ObservabilityOptions::slow_tick_budget_ns, the
// database assembles the evidence a post-hoc debugging session needs —
// the trace-ring window (what the tick actually did), the full stats
// snapshot (the state it did it in), and the offending view's plan
// EXPLAIN (where inside the plan the time went) — and hands the
// pre-rendered JSON pieces here. The recorder writes them as ONE
// timestamped JSON file, atomically (tmp + rename), into a configurable
// directory with a bounded file count (oldest deleted), so a production
// incident leaves artifacts without any reproduction run.
//
// The recorder itself is filesystem-only plumbing: it never reads
// database state, so it stays dependency-free and testable in isolation.
// Callers serialize (the database records under its stats mutex).

#ifndef CHRONICLE_OBS_FLIGHT_RECORDER_H_
#define CHRONICLE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/status.h"

namespace chronicle {
namespace obs {

struct FlightRecorderOptions {
  std::string dir = "flight-recorder";  // created on first dump
  size_t max_dumps = 8;                 // oldest file deleted beyond this
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Writes one slow-tick dump; every *_json argument must already be a
  // complete JSON value ("null" for an absent section). Returns the path
  // written. Not thread-safe: callers serialize.
  Result<std::string> RecordSlowTick(uint64_t sn, int64_t tick_ns,
                                     int64_t budget_ns,
                                     const std::string& snapshot_json,
                                     const std::string& trace_json,
                                     const std::string& explain_json);

  // Writes one slow-REQUEST dump: a traced request that blew its
  // slow_request_budget_ns, identified by its 128-bit trace id.
  // `trace_json` is the request's span tree (RequestTracer::
  // RenderTraceTreeJson), `snapshot_json` the full stats snapshot at
  // capture time. Same atomicity/retention contract as RecordSlowTick;
  // the two dump kinds share one bounded directory.
  Result<std::string> RecordSlowRequest(uint64_t trace_hi, uint64_t trace_lo,
                                        int64_t total_ns, int64_t budget_ns,
                                        const std::string& snapshot_json,
                                        const std::string& trace_json);

  uint64_t dumps_written() const { return dumps_written_; }
  const FlightRecorderOptions& options() const { return options_; }

 private:
  // Shared tail: atomic tmp+rename write of `body` as `name` in the dump
  // dir, then the bounded-retention sweep.
  Result<std::string> WriteDump(const std::string& name,
                                const std::string& body);

  FlightRecorderOptions options_;
  std::deque<std::string> written_;  // retained dump paths, oldest first
  uint64_t dumps_written_ = 0;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_FLIGHT_RECORDER_H_
