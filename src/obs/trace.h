// TraceRing: a fixed-size ring of span records for the append tick.
//
// Each maintained append leaves a handful of spans — the tick itself, the
// routing phase, one span per worker batch of the parallel fan-out, and
// the batch-order merge — so a stall or an imbalance is visible after the
// fact without a profiler attached. The ring is sized at construction and
// NEVER allocates on the emission path: a span costs one relaxed
// fetch_add to claim a slot plus a handful of relaxed stores. Old spans
// are overwritten (it is a flight recorder, not a log); Snapshot() returns
// the retained window oldest-first.
//
// Concurrency: emission is lock-free and safe from multiple workers —
// each Emit claims a distinct slot. Snapshot may now run CONCURRENTLY with
// emission (the live monitoring endpoint and the flight recorder read the
// ring from other threads): every slot is a seqlock — an atomic version
// that is odd while a writer is inside plus atomic fields — so a reader
// that races an overwrite detects the torn slot (version odd, or changed
// across the read) and drops that span instead of returning garbage.
//
// Timestamps are steady-clock nanoseconds relative to the ring's creation
// (NowNanos), so spans from one process compare directly and no wall-clock
// is involved.

#ifndef CHRONICLE_OBS_TRACE_H_
#define CHRONICLE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace chronicle {
namespace obs {

// What a span measures. detail0/detail1 are kind-specific payloads.
enum class SpanKind : uint8_t {
  kAppendTick = 0,   // whole maintenance of one append; d0=views considered, d1=delta rows
  kRouting = 1,      // candidate selection + guard filtering; d0=candidates, d1=work size
  kWorkerBatch = 2,  // one fan-out task's batch; d0=views in batch, d1=delta rows
  kMerge = 3,        // batch-order report merge; d0=batches, d1=0
  kWalSync = 4,      // one fsync; d0=bytes since last sync, d1=0
};

// Human-readable name of a SpanKind, e.g. "append_tick".
const char* SpanKindToString(SpanKind kind);

struct TraceSpan {
  uint64_t seq = 0;        // monotone emission number (global order)
  SpanKind kind = SpanKind::kAppendTick;
  uint16_t worker = 0;     // fan-out task index (0 outside the fan-out)
  uint64_t sn = 0;         // sequence number of the tick the span belongs to
  int64_t start_ns = 0;    // offset from ring creation (steady clock)
  int64_t duration_ns = 0;
  uint64_t detail0 = 0;
  uint64_t detail1 = 0;
};

class TraceRing {
 public:
  // `capacity` is rounded up to a power of two; 0 disables the ring
  // entirely (Emit returns immediately, Snapshot is empty).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  bool enabled() const { return !slots_.empty(); }
  size_t capacity() const { return slots_.size(); }

  // Steady-clock nanoseconds since the ring was created; the timebase of
  // every span's start_ns.
  int64_t NowNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Records one span. Lock-free; overwrites the oldest span when full.
  void Emit(SpanKind kind, uint16_t worker, uint64_t sn, int64_t start_ns,
            int64_t duration_ns, uint64_t detail0 = 0, uint64_t detail1 = 0);

  // Spans still retained, oldest first. Safe to call from any thread;
  // slots caught mid-overwrite are skipped (see header comment), so a
  // snapshot racing heavy emission may return slightly fewer spans than
  // the retained window.
  std::vector<TraceSpan> Snapshot() const;

  // Spans ever emitted; emitted - min(emitted, capacity) were overwritten.
  uint64_t total_emitted() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  // One ring slot: a per-slot seqlock. `version` is odd while a writer is
  // inside; the payload fields are relaxed atomics so a racing read is a
  // defined read (the version check decides whether it is also coherent).
  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint16_t> worker{0};
    std::atomic<uint64_t> sn{0};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
    std::atomic<uint64_t> detail0{0};
    std::atomic<uint64_t> detail1{0};
  };

  // Reads `slot` coherently into `out`; false if a writer raced every try.
  static bool ReadSlot(const Slot& slot, TraceSpan* out);

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_TRACE_H_
