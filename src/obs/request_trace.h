// RequestTracer: end-to-end request tracing across the wire front-end.
//
// A request entering net::WireService is assigned (or arrives with) a
// 128-bit trace id plus a root span id, carried as a W3C-traceparent-style
// header: `00-<32 hex trace id>-<16 hex span id>-<2 hex flags>`. The
// context rides through cql::Session execution, across the ingest-queue
// handoff, and (via the thread-local RequestScope) into the per-shard
// maintenance tick, so a single append leaves one parent-linked span tree
// covering every stage it crossed:
//
//   parse       decode the request body (TSV ticks / CQL script)
//   queue_wait  time between enqueue and the ingest worker's pop
//   append      session AppendRows (split + route + apply)
//   wal_commit  WAL group-commit for the batch (per shard when sharded)
//   maintain    one view-maintenance tick (per shard when sharded)
//   merge       router split + shard fan-out bookkeeping
//   respond     request entry to response write-out (the root's tail)
//
// Sampling is probabilistic head sampling: the decision is made once at
// request entry (client-supplied `sampled` flag forces it), and an
// unsampled request takes the zero-overhead path — no span is emitted, no
// clock beyond the RED accounting is read. RED (rate/error/duration)
// counters are recorded for EVERY request, sampled or not.
//
// Storage is the same per-slot seqlock ring discipline as obs::TraceRing:
// emission is one relaxed fetch_add plus relaxed payload stores bracketed
// by an odd/even version, so shard workers and HTTP threads emit
// concurrently without locks and a reader snapshotting mid-overwrite
// drops the torn slot instead of returning garbage. Span trees are
// stitched on READ by grouping the ring on trace id — nothing at emission
// time cares which thread a span came from.
//
// Slow-request capture: when a sampled request's total latency exceeds
// `slow_budget_ns`, MaybeCaptureSlow invokes the installed callback
// (cql::Session wires it to obs::FlightRecorder::RecordSlowRequest) with
// the trace id, so the full span tree + stats snapshot land in one
// atomically-written dump file.

#ifndef CHRONICLE_OBS_REQUEST_TRACE_H_
#define CHRONICLE_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/stats.h"

namespace chronicle {
namespace obs {

// The fixed stage vocabulary. kRequest is the root span (exported via the
// RED duration families); the other seven are the `chronicle_req_stage_*`
// histogram families.
enum class ReqStage : uint8_t {
  kRequest = 0,
  kParse = 1,
  kQueueWait = 2,
  kAppend = 3,
  kWalCommit = 4,
  kMaintain = 5,
  kMerge = 6,
  kRespond = 7,
};
constexpr int kNumReqStages = 8;

// "request", "parse", "queue_wait", ...
const char* ReqStageToString(ReqStage stage);

// Endpoint classification for the RED families.
enum class ReqEndpoint : uint8_t {
  kSession = 0,  // /v1/session and /v1/session/close
  kSql = 1,      // /v1/sql
  kAppend = 2,   // /v1/append
  kDrain = 3,    // /v1/drain
  kMonitor = 4,  // the GET monitoring catalog
  kOther = 5,    // everything else (404s, bad paths)
};
constexpr int kNumReqEndpoints = 6;

const char* ReqEndpointToString(ReqEndpoint endpoint);

// The propagated context: 128-bit trace id + the id of the span that is
// the parent of whatever the carrier does next.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t parent_span = 0;
  bool sampled = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

// Parses a `00-<32hex>-<16hex>-<2hex>` traceparent header. Strict: exact
// length 55, version "00", non-zero trace and span ids. Returns false
// (and leaves *ctx untouched) on any malformation.
bool ParseTraceparent(const std::string& header, TraceContext* ctx);

// Renders the header the other way: `ctx`'s trace id with `span_id` as
// the span field and ctx.sampled as the flags bit.
std::string FormatTraceparent(const TraceContext& ctx, uint64_t span_id);

// One span as read back out of the ring.
struct RequestSpan {
  uint64_t seq = 0;          // monotone emission number
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;  // 0 for the request root
  ReqStage stage = ReqStage::kRequest;
  int32_t shard = -1;        // -1 = not shard-specific / unsharded
  uint16_t worker = 0;       // emitting worker/thread tag
  int64_t start_ns = 0;      // offset from tracer creation (steady clock)
  int64_t duration_ns = 0;
  uint64_t detail = 0;       // stage-specific payload (rows, shards, ...)
};

class RequestTracer {
 public:
  // `capacity` span slots (rounded up to a power of two; 0 disables the
  // ring and with it all span emission), `sample_rate` in [0,1],
  // `slow_budget_ns` (0 disables slow capture).
  RequestTracer(size_t capacity, double sample_rate, int64_t slow_budget_ns);

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  bool enabled() const { return !slots_.empty(); }
  size_t capacity() const { return slots_.size(); }
  double sample_rate() const { return sample_rate_; }
  int64_t slow_budget_ns() const { return slow_budget_ns_; }

  // Steady-clock nanoseconds since construction; the timebase of every
  // span's start_ns.
  int64_t NowNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Mints a fresh context (new non-zero trace id, sampling decided by the
  // configured rate). parent_span is left 0 — the caller emits the root.
  TraceContext Mint();

  // A fresh non-zero span id.
  uint64_t NewSpanId();

  // Records one span and folds its duration into the per-stage histogram.
  // Lock-free; call only for sampled contexts (the unsampled path must
  // not reach here — that is the overhead contract).
  void Emit(const TraceContext& ctx, uint64_t span_id, uint64_t parent_span,
            ReqStage stage, int32_t shard, uint16_t worker, int64_t start_ns,
            int64_t duration_ns, uint64_t detail = 0);

  // RED accounting, recorded for EVERY request (sampled or not).
  void CountRequest(ReqEndpoint endpoint, bool error, int64_t duration_ns);
  // Sampling-decision tally (feeds chronicle_req_sampled_total /
  // chronicle_req_unsampled_total).
  void CountSample(bool sampled);

  // Retained spans, oldest first; torn slots skipped (see header).
  std::vector<RequestSpan> Snapshot() const;

  uint64_t total_emitted() const {
    return next_.load(std::memory_order_relaxed);
  }
  uint64_t sampled_requests() const {
    return sampled_requests_.load(std::memory_order_relaxed);
  }
  uint64_t unsampled_requests() const {
    return unsampled_requests_.load(std::memory_order_relaxed);
  }
  uint64_t slow_captures() const {
    return slow_captures_.load(std::memory_order_relaxed);
  }

  // Fills the `req` section of a stats snapshot (stage histograms, RED
  // families, sampling counters). Safe concurrently with emission.
  void Fill(ReqStatsSnapshot* out) const;

  // `GET /requests.json`: the most recent sampled span trees (newest
  // first, at most `max_traces`), spans within a tree in start order.
  // Schema documented in docs/OBSERVABILITY.md. Passes ValidateJson.
  std::string RenderRequestsJson(size_t max_traces = 32) const;

  // One trace's tree as a standalone JSON object ("{}" placeholder shape
  // when the ring no longer holds it) — the flight recorder's payload.
  std::string RenderTraceTreeJson(uint64_t trace_hi, uint64_t trace_lo) const;

  // Slow-request capture hook: invoked (serialized) from MaybeCaptureSlow
  // when a sampled request exceeds slow_budget_ns.
  using SlowCaptureFn =
      std::function<void(uint64_t trace_hi, uint64_t trace_lo,
                         int64_t total_ns)>;
  void set_slow_capture(SlowCaptureFn fn);

  // Call at request completion with the root's total latency; dispatches
  // the capture hook when the budget is configured and exceeded.
  void MaybeCaptureSlow(const TraceContext& ctx, int64_t total_ns);

 private:
  // One ring slot: the same per-slot seqlock as obs::TraceRing — version
  // odd while a writer is inside, payload fields relaxed atomics.
  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_hi{0};
    std::atomic<uint64_t> trace_lo{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span{0};
    std::atomic<uint8_t> stage{0};
    std::atomic<int32_t> shard{-1};
    std::atomic<uint16_t> worker{0};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
    std::atomic<uint64_t> detail{0};
  };

  // A lock-free mirror of LatencyHistogram: relaxed atomic buckets the
  // emission path increments, converted to a plain histogram on read.
  struct AtomicHist {
    std::atomic<uint64_t> buckets[LatencyHistogram::kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};  // sentinel until first Record
    std::atomic<int64_t> max{0};

    void Record(int64_t nanos);
    LatencyHistogram ToHistogram() const;
  };

  struct EndpointCounters {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    AtomicHist duration;
  };

  static bool ReadSlot(const Slot& slot, RequestSpan* out);
  uint64_t NextRand();

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_;

  double sample_rate_;
  // NextRand() < threshold  <=>  sampled (avoids a float compare per
  // request); the always/never flags cover the exact endpoints.
  uint64_t sample_threshold_ = 0;
  bool always_sample_ = false;
  bool never_sample_ = true;
  int64_t slow_budget_ns_;
  std::atomic<uint64_t> rng_state_;

  std::atomic<uint64_t> sampled_requests_{0};
  std::atomic<uint64_t> unsampled_requests_{0};
  std::atomic<uint64_t> slow_captures_{0};
  AtomicHist stage_hist_[kNumReqStages];
  EndpointCounters endpoints_[kNumReqEndpoints];

  std::mutex slow_mu_;  // serializes the capture callback
  SlowCaptureFn slow_capture_;
};

// The thread-local carrier that lets deep layers (the WAL commit inside
// ChronicleDatabase::AppendInternal, the maintenance tick, the shard
// router) emit spans without threading a context through every signature.
// Valid because the sharded sync append path drives every shard engine on
// the calling thread, and the ingest worker installs a scope around each
// batch it applies.
struct RequestScopeState {
  RequestTracer* tracer = nullptr;  // nullptr = no active sampled request
  TraceContext ctx;
  uint64_t root_span = 0;
  uint16_t worker = 0;
};

class RequestScope {
 public:
  // Installs the scope on this thread. A null tracer or an unsampled
  // context installs nothing (Current() stays as it was) — the overhead
  // path is a single thread_local read.
  RequestScope(RequestTracer* tracer, const TraceContext& ctx,
               uint64_t root_span, uint16_t worker = 0);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  // The active scope on this thread, or nullptr.
  static RequestScopeState* Current();

 private:
  bool installed_ = false;
  RequestScopeState saved_;
};

}  // namespace obs
}  // namespace chronicle

#endif  // CHRONICLE_OBS_REQUEST_TRACE_H_
