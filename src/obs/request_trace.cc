#include "obs/request_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

namespace chronicle {
namespace obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64: one fetch_add on the state, then a mix. Statistically fine
// for ids and sampling; never used for anything security-relevant.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // upper case is rejected: the wire format is lower-case hex
}

// Parses exactly `n` lower-case hex chars at text[at..at+n).
bool ParseHex(const std::string& text, size_t at, size_t n, uint64_t* out) {
  uint64_t value = 0;
  for (size_t i = 0; i < n; ++i) {
    const int nibble = HexNibble(text[at + i]);
    if (nibble < 0) return false;
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  *out = value;
  return true;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf,
                static_cast<size_t>(n) < sizeof(buf) ? n : sizeof(buf) - 1);
  }
}

}  // namespace

const char* ReqStageToString(ReqStage stage) {
  switch (stage) {
    case ReqStage::kRequest:
      return "request";
    case ReqStage::kParse:
      return "parse";
    case ReqStage::kQueueWait:
      return "queue_wait";
    case ReqStage::kAppend:
      return "append";
    case ReqStage::kWalCommit:
      return "wal_commit";
    case ReqStage::kMaintain:
      return "maintain";
    case ReqStage::kMerge:
      return "merge";
    case ReqStage::kRespond:
      return "respond";
  }
  return "unknown";
}

const char* ReqEndpointToString(ReqEndpoint endpoint) {
  switch (endpoint) {
    case ReqEndpoint::kSession:
      return "session";
    case ReqEndpoint::kSql:
      return "sql";
    case ReqEndpoint::kAppend:
      return "append";
    case ReqEndpoint::kDrain:
      return "drain";
    case ReqEndpoint::kMonitor:
      return "monitor";
    case ReqEndpoint::kOther:
      return "other";
  }
  return "unknown";
}

bool ParseTraceparent(const std::string& header, TraceContext* ctx) {
  // 00-<32 hex>-<16 hex>-<2 hex>  =>  2+1+32+1+16+1+2 = 55 chars, exactly.
  if (header.size() != 55) return false;
  if (header[0] != '0' || header[1] != '0') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;
  uint64_t hi = 0, lo = 0, span = 0, flags = 0;
  if (!ParseHex(header, 3, 16, &hi) || !ParseHex(header, 19, 16, &lo) ||
      !ParseHex(header, 36, 16, &span) || !ParseHex(header, 53, 2, &flags)) {
    return false;
  }
  if ((hi | lo) == 0 || span == 0) return false;
  ctx->trace_hi = hi;
  ctx->trace_lo = lo;
  ctx->parent_span = span;
  ctx->sampled = (flags & 0x01) != 0;
  return true;
}

std::string FormatTraceparent(const TraceContext& ctx, uint64_t span_id) {
  char buf[64];
  snprintf(buf, sizeof(buf), "00-%016" PRIx64 "%016" PRIx64 "-%016" PRIx64
                             "-%02x",
           ctx.trace_hi, ctx.trace_lo, span_id, ctx.sampled ? 1u : 0u);
  return buf;
}

void RequestTracer::AtomicHist::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets[static_cast<size_t>(LatencyHistogram::BucketIndexFor(nanos))]
      .fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(nanos, std::memory_order_relaxed);
  int64_t cur = min.load(std::memory_order_relaxed);
  while (nanos < cur &&
         !min.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
  cur = max.load(std::memory_order_relaxed);
  while (nanos > cur &&
         !max.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram RequestTracer::AtomicHist::ToHistogram() const {
  std::array<uint64_t, LatencyHistogram::kBuckets> raw{};
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    raw[static_cast<size_t>(i)] =
        buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  LatencyHistogram h;
  const uint64_t n = count.load(std::memory_order_relaxed);
  const int64_t lo = min.load(std::memory_order_relaxed);
  h.AccumulateRaw(raw, n,
                  static_cast<double>(sum.load(std::memory_order_relaxed)),
                  lo == INT64_MAX ? 0 : lo,
                  max.load(std::memory_order_relaxed));
  return h;
}

RequestTracer::RequestTracer(size_t capacity, double sample_rate,
                             int64_t slow_budget_ns)
    : epoch_(std::chrono::steady_clock::now()),
      sample_rate_(sample_rate),
      slow_budget_ns_(slow_budget_ns),
      rng_state_(
          static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          reinterpret_cast<uintptr_t>(this)) {
  if (capacity > 0) {
    slots_ = std::vector<Slot>(RoundUpPow2(capacity));
  }
  if (sample_rate_ >= 1.0) {
    always_sample_ = true;
    never_sample_ = false;
  } else if (sample_rate_ > 0.0) {
    never_sample_ = false;
    // rate * 2^64, computed as rate * 2^32 * 2^32 to stay in double range.
    sample_threshold_ = static_cast<uint64_t>(
        sample_rate_ * 4294967296.0 * 4294967296.0);
    if (sample_threshold_ == 0) sample_threshold_ = 1;
  }
}

uint64_t RequestTracer::NextRand() {
  const uint64_t z =
      rng_state_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed) +
      0x9e3779b97f4a7c15ULL;
  return Mix64(z);
}

TraceContext RequestTracer::Mint() {
  TraceContext ctx;
  do {
    ctx.trace_hi = NextRand();
    ctx.trace_lo = NextRand();
  } while (!ctx.valid());
  if (always_sample_) {
    ctx.sampled = true;
  } else if (never_sample_) {
    ctx.sampled = false;
  } else {
    ctx.sampled = NextRand() < sample_threshold_;
  }
  // A sampled context is useless without a ring to land spans in.
  if (slots_.empty()) ctx.sampled = false;
  return ctx;
}

uint64_t RequestTracer::NewSpanId() {
  uint64_t id;
  do {
    id = NextRand();
  } while (id == 0);
  return id;
}

void RequestTracer::Emit(const TraceContext& ctx, uint64_t span_id,
                         uint64_t parent_span, ReqStage stage, int32_t shard,
                         uint16_t worker, int64_t start_ns,
                         int64_t duration_ns, uint64_t detail) {
  stage_hist_[static_cast<size_t>(stage)].Record(duration_ns);
  if (slots_.empty()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (slots_.size() - 1)];
  const uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.trace_hi.store(ctx.trace_hi, std::memory_order_relaxed);
  slot.trace_lo.store(ctx.trace_lo, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_span.store(parent_span, std::memory_order_relaxed);
  slot.stage.store(static_cast<uint8_t>(stage), std::memory_order_relaxed);
  slot.shard.store(shard, std::memory_order_relaxed);
  slot.worker.store(worker, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

void RequestTracer::CountRequest(ReqEndpoint endpoint, bool error,
                                 int64_t duration_ns) {
  EndpointCounters& c = endpoints_[static_cast<size_t>(endpoint)];
  c.requests.fetch_add(1, std::memory_order_relaxed);
  if (error) c.errors.fetch_add(1, std::memory_order_relaxed);
  c.duration.Record(duration_ns);
}

void RequestTracer::CountSample(bool sampled) {
  if (sampled) {
    sampled_requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    unsampled_requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool RequestTracer::ReadSlot(const Slot& slot, RequestSpan* out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;
    out->seq = slot.seq.load(std::memory_order_relaxed);
    out->trace_hi = slot.trace_hi.load(std::memory_order_relaxed);
    out->trace_lo = slot.trace_lo.load(std::memory_order_relaxed);
    out->span_id = slot.span_id.load(std::memory_order_relaxed);
    out->parent_span = slot.parent_span.load(std::memory_order_relaxed);
    out->stage =
        static_cast<ReqStage>(slot.stage.load(std::memory_order_relaxed));
    out->shard = slot.shard.load(std::memory_order_relaxed);
    out->worker = slot.worker.load(std::memory_order_relaxed);
    out->start_ns = slot.start_ns.load(std::memory_order_relaxed);
    out->duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    out->detail = slot.detail.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) == v1) return true;
  }
  return false;
}

std::vector<RequestSpan> RequestTracer::Snapshot() const {
  std::vector<RequestSpan> out;
  if (slots_.empty()) return out;
  const uint64_t emitted = next_.load(std::memory_order_acquire);
  const uint64_t retained =
      std::min<uint64_t>(emitted, slots_.size());
  out.reserve(static_cast<size_t>(retained));
  RequestSpan span;
  for (uint64_t i = emitted - retained; i < emitted; ++i) {
    if (ReadSlot(slots_[i & (slots_.size() - 1)], &span)) {
      out.push_back(span);
    }
  }
  return out;
}

void RequestTracer::Fill(ReqStatsSnapshot* out) const {
  out->attached = true;
  out->sample_rate = sample_rate_;
  out->capacity = slots_.size();
  out->spans_emitted = total_emitted();
  out->sampled_requests = sampled_requests();
  out->unsampled_requests = unsampled_requests();
  out->slow_captures = slow_captures();
  out->slow_budget_ns = slow_budget_ns_;
  out->stages.clear();
  // The seven fixed stage families, kRequest excluded (it is the RED
  // duration); all seven are present even when empty so dashboards can
  // key on them before traffic arrives.
  for (int s = 1; s < kNumReqStages; ++s) {
    ReqStageStatsSnapshot stage;
    stage.stage = ReqStageToString(static_cast<ReqStage>(s));
    stage.latency = stage_hist_[static_cast<size_t>(s)].ToHistogram();
    out->stages.push_back(std::move(stage));
  }
  out->endpoints.clear();
  for (int e = 0; e < kNumReqEndpoints; ++e) {
    ReqEndpointStatsSnapshot endpoint;
    endpoint.endpoint = ReqEndpointToString(static_cast<ReqEndpoint>(e));
    const EndpointCounters& c = endpoints_[static_cast<size_t>(e)];
    endpoint.requests = c.requests.load(std::memory_order_relaxed);
    endpoint.errors = c.errors.load(std::memory_order_relaxed);
    endpoint.duration = c.duration.ToHistogram();
    out->endpoints.push_back(std::move(endpoint));
  }
}

namespace {

// Spans of one trace, grouped on read.
struct TraceGroup {
  uint64_t hi = 0;
  uint64_t lo = 0;
  uint64_t max_seq = 0;
  const RequestSpan* root = nullptr;
  std::vector<const RequestSpan*> spans;
};

void RenderOneTrace(std::string* out, const TraceGroup& trace) {
  char trace_id[40];
  snprintf(trace_id, sizeof(trace_id), "%016" PRIx64 "%016" PRIx64, trace.hi,
           trace.lo);
  int64_t start_ns = INT64_MAX;
  int64_t end_ns = 0;
  for (const RequestSpan* s : trace.spans) {
    start_ns = std::min(start_ns, s->start_ns);
    end_ns = std::max(end_ns, s->start_ns + s->duration_ns);
  }
  if (trace.spans.empty()) start_ns = 0;
  const int64_t total_ns =
      trace.root != nullptr ? trace.root->duration_ns : end_ns - start_ns;
  AppendF(out, "{\"trace_id\":\"%s\",\"root_span_id\":\"%016" PRIx64
               "\",\"start_ns\":%" PRId64 ",\"total_ns\":%" PRId64
               ",\"spans\":[",
          trace_id, trace.root != nullptr ? trace.root->span_id : 0,
          start_ns, total_ns);
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const RequestSpan& s = *trace.spans[i];
    if (i > 0) *out += ",";
    AppendF(out, "{\"span_id\":\"%016" PRIx64 "\",\"parent_span_id\":\"%016"
                 PRIx64 "\",\"stage\":\"%s\",\"shard\":%d,\"worker\":%u"
                 ",\"start_ns\":%" PRId64 ",\"duration_ns\":%" PRId64
                 ",\"detail\":%" PRIu64 "}",
            s.span_id, s.parent_span, ReqStageToString(s.stage), s.shard,
            unsigned{s.worker}, s.start_ns, s.duration_ns, s.detail);
  }
  *out += "]}";
}

std::vector<TraceGroup> GroupTraces(const std::vector<RequestSpan>& spans) {
  std::map<std::pair<uint64_t, uint64_t>, size_t> index;
  std::vector<TraceGroup> traces;
  for (const RequestSpan& span : spans) {
    const auto key = std::make_pair(span.trace_hi, span.trace_lo);
    auto [it, inserted] = index.emplace(key, traces.size());
    if (inserted) {
      traces.emplace_back();
      traces.back().hi = span.trace_hi;
      traces.back().lo = span.trace_lo;
    }
    TraceGroup& trace = traces[it->second];
    trace.max_seq = std::max(trace.max_seq, span.seq);
    // The request span is the root. Matching on stage (not parent 0)
    // keeps detection working when a client traceparent supplied the
    // parent: the server root then carries the CLIENT's span id as its
    // parent, which is nonzero.
    if (span.stage == ReqStage::kRequest) trace.root = &span;
    trace.spans.push_back(&span);
  }
  for (TraceGroup& trace : traces) {
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const RequestSpan* a, const RequestSpan* b) {
                if (a->start_ns != b->start_ns) {
                  return a->start_ns < b->start_ns;
                }
                return a->seq < b->seq;
              });
  }
  return traces;
}

}  // namespace

std::string RequestTracer::RenderRequestsJson(size_t max_traces) const {
  const std::vector<RequestSpan> spans = Snapshot();
  std::vector<TraceGroup> traces = GroupTraces(spans);
  std::sort(traces.begin(), traces.end(),
            [](const TraceGroup& a, const TraceGroup& b) {
              return a.max_seq > b.max_seq;  // newest first
            });
  if (traces.size() > max_traces) traces.resize(max_traces);

  std::string out;
  AppendF(&out, "{\"emitted\":%" PRIu64 ",\"capacity\":%zu"
                ",\"sample_rate\":%g,\"traces\":[",
          total_emitted(), slots_.size(), sample_rate_);
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ",";
    RenderOneTrace(&out, traces[i]);
  }
  out += "]}";
  return out;
}

std::string RequestTracer::RenderTraceTreeJson(uint64_t trace_hi,
                                               uint64_t trace_lo) const {
  const std::vector<RequestSpan> spans = Snapshot();
  const std::vector<TraceGroup> traces = GroupTraces(spans);
  for (const TraceGroup& trace : traces) {
    if (trace.hi == trace_hi && trace.lo == trace_lo) {
      std::string out;
      RenderOneTrace(&out, trace);
      return out;
    }
  }
  // The ring has already recycled this trace's slots: an empty tree with
  // the id, so the dump still says WHICH request was slow.
  char trace_id[40];
  snprintf(trace_id, sizeof(trace_id), "%016" PRIx64 "%016" PRIx64, trace_hi,
           trace_lo);
  std::string out;
  AppendF(&out, "{\"trace_id\":\"%s\",\"root_span_id\":"
                "\"0000000000000000\",\"start_ns\":0,\"total_ns\":0,"
                "\"spans\":[]}",
          trace_id);
  return out;
}

void RequestTracer::set_slow_capture(SlowCaptureFn fn) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_capture_ = std::move(fn);
}

void RequestTracer::MaybeCaptureSlow(const TraceContext& ctx,
                                     int64_t total_ns) {
  if (slow_budget_ns_ <= 0 || total_ns <= slow_budget_ns_) return;
  if (!ctx.sampled || !ctx.valid()) return;
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (!slow_capture_) return;
  slow_captures_.fetch_add(1, std::memory_order_relaxed);
  slow_capture_(ctx.trace_hi, ctx.trace_lo, total_ns);
}

namespace {
thread_local RequestScopeState g_request_scope;
}  // namespace

RequestScope::RequestScope(RequestTracer* tracer, const TraceContext& ctx,
                           uint64_t root_span, uint16_t worker) {
  if (tracer == nullptr || !ctx.sampled) return;
  installed_ = true;
  saved_ = g_request_scope;
  g_request_scope.tracer = tracer;
  g_request_scope.ctx = ctx;
  g_request_scope.root_span = root_span;
  g_request_scope.worker = worker;
}

RequestScope::~RequestScope() {
  if (installed_) g_request_scope = saved_;
}

RequestScopeState* RequestScope::Current() {
  return g_request_scope.tracer != nullptr ? &g_request_scope : nullptr;
}

}  // namespace obs
}  // namespace chronicle
