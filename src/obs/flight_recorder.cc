#include "obs/flight_recorder.h"

#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace chronicle {
namespace obs {

namespace {

// mkdir -p: creates every missing component of `dir`.
Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty flight-recorder dir");
  std::string path;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    path = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (path.empty()) continue;  // leading '/'
    if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + path + ": " + strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.max_dumps == 0) options_.max_dumps = 1;
}

namespace {

// Wall-clock stamp (ms) so files sort chronologically in a listing.
int64_t WallMillis() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return static_cast<int64_t>(tv.tv_sec) * 1000 + tv.tv_usec / 1000;
}

}  // namespace

Result<std::string> FlightRecorder::RecordSlowTick(
    uint64_t sn, int64_t tick_ns, int64_t budget_ns,
    const std::string& snapshot_json, const std::string& trace_json,
    const std::string& explain_json) {
  // The dump counter disambiguates two slow ticks inside one millisecond.
  const int64_t wall_ms = WallMillis();
  char name[128];
  snprintf(name, sizeof(name), "slow-tick-%" PRId64 "-%" PRIu64 "-sn%" PRIu64
                               ".json",
           wall_ms, dumps_written_, sn);

  std::string body;
  body.reserve(snapshot_json.size() + trace_json.size() +
               explain_json.size() + 256);
  char head[256];
  snprintf(head, sizeof(head),
           "{\"sn\":%" PRIu64 ",\"tick_ns\":%" PRId64 ",\"budget_ns\":%" PRId64
           ",\"wall_ms\":%" PRId64 ",",
           sn, tick_ns, budget_ns, wall_ms);
  body += head;
  body += "\"snapshot\":" + snapshot_json + ",";
  body += "\"trace\":" + trace_json + ",";
  body += "\"explain\":" + explain_json + "}\n";
  return WriteDump(name, body);
}

Result<std::string> FlightRecorder::RecordSlowRequest(
    uint64_t trace_hi, uint64_t trace_lo, int64_t total_ns, int64_t budget_ns,
    const std::string& snapshot_json, const std::string& trace_json) {
  const int64_t wall_ms = WallMillis();
  char name[160];
  snprintf(name, sizeof(name),
           "slow-request-%" PRId64 "-%" PRIu64 "-%016" PRIx64 "%016" PRIx64
           ".json",
           wall_ms, dumps_written_, trace_hi, trace_lo);

  std::string body;
  body.reserve(snapshot_json.size() + trace_json.size() + 256);
  char head[256];
  snprintf(head, sizeof(head),
           "{\"trace_id\":\"%016" PRIx64 "%016" PRIx64 "\",\"total_ns\":%"
           PRId64 ",\"budget_ns\":%" PRId64 ",\"wall_ms\":%" PRId64 ",",
           trace_hi, trace_lo, total_ns, budget_ns, wall_ms);
  body += head;
  body += "\"snapshot\":" + snapshot_json + ",";
  body += "\"trace\":" + trace_json + "}\n";
  return WriteDump(name, body);
}

Result<std::string> FlightRecorder::WriteDump(const std::string& name,
                                              const std::string& body) {
  CHRONICLE_RETURN_NOT_OK(MakeDirs(options_.dir));
  const std::string path = options_.dir + "/" + name;
  const std::string tmp = path + ".tmp";

  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("open " + tmp + ": " + strerror(errno));
  }
  const size_t n = fwrite(body.data(), 1, body.size(), f);
  if (fclose(f) != 0 || n != body.size()) {
    unlink(tmp.c_str());
    return Status::Internal("write " + tmp + " failed");
  }
  // rename(2) is atomic within a filesystem: a reader never sees a
  // half-written dump.
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = strerror(errno);
    unlink(tmp.c_str());
    return Status::Internal("rename " + tmp + ": " + err);
  }
  ++dumps_written_;
  written_.push_back(path);
  while (written_.size() > options_.max_dumps) {
    unlink(written_.front().c_str());
    written_.pop_front();
  }
  return path;
}

}  // namespace obs
}  // namespace chronicle
