#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace chronicle {
namespace obs {

namespace {

// Appends a printf-style formatted chunk to `out`.
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? n : sizeof(buf) - 1);
}

// Escapes a string for a JSON string literal or a Prometheus label value
// (both use backslash escapes for `"` and `\`; JSON additionally needs
// control characters escaped, which is harmless in label values too).
// The public name is JsonEscape (bottom of file).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders a double without locale surprises; trims to something readable.
std::string Dbl(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// --- Prometheus helpers ---

void PromHistogram(std::string* out, const std::string& name,
                   const std::string& labels, const LatencyHistogram& h) {
  // Only emit non-empty buckets (plus the terminal +Inf) — 52 series per
  // histogram would drown the exposition; cumulative counts stay exact.
  uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.bucket(i);
    if (h.bucket(i) == 0 && i != LatencyHistogram::kBuckets - 1) continue;
    const int64_t ub = LatencyHistogram::BucketUpperBound(i);
    std::string le = (i == LatencyHistogram::kBuckets - 1)
                         ? std::string("+Inf")
                         : std::to_string(ub);
    Appendf(out, "%s_bucket{%s%sle=\"%s\"} %" PRIu64 "\n", name.c_str(),
            labels.c_str(), labels.empty() ? "" : ",", le.c_str(), cumulative);
  }
  const std::string brace = labels.empty() ? "" : "{" + labels + "}";
  Appendf(out, "%s_sum%s %s\n", name.c_str(), brace.c_str(),
          Dbl(h.SumNanos()).c_str());
  Appendf(out, "%s_count%s %" PRIu64 "\n", name.c_str(), brace.c_str(),
          h.count());
}

void PromCounter(std::string* out, const std::string& name,
                 const std::string& help, uint64_t value) {
  Appendf(out, "# HELP %s %s\n# TYPE %s counter\n%s %" PRIu64 "\n",
          name.c_str(), help.c_str(), name.c_str(), name.c_str(), value);
}

// --- JSON helpers (emission) ---

void JsonHistogram(std::string* out, const LatencyHistogram& h) {
  Appendf(out, "{\"count\":%" PRIu64 ",\"sum\":%s,\"min\":%" PRId64
               ",\"max\":%" PRId64 ",\"p50\":%" PRId64 ",\"p99\":%" PRId64 "}",
          h.count(), Dbl(h.SumNanos()).c_str(), h.MinNanos(), h.MaxNanos(),
          h.PercentileNanos(0.5), h.PercentileNanos(0.99));
}

// --- JSON validation (recursive descent over RFC 8259) ---

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Validate() {
    SkipWs();
    CHRONICLE_RETURN_NOT_OK(Value(0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters after value");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) {
    return Status::ParseError("JSON invalid at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  Status Expect(char c) {
    if (!Peek(c)) return Err(std::string("expected '") + c + "'");
    ++pos_;
    return Status::OK();
  }

  Status Literal(const char* word) {
    const size_t len = strlen(word);
    if (text_.compare(pos_, len, word) != 0) return Err("bad literal");
    pos_ += len;
    return Status::OK();
  }

  Status String() {
    CHRONICLE_RETURN_NOT_OK(Expect('"'));
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Err("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Err("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Err("bad \\u escape");
            }
          }
        } else if (strchr("\"\\/bfnrt", e) == nullptr) {
          return Err("bad escape character");
        }
      }
      ++pos_;
    }
    return Err("unterminated string");
  }

  Status Number() {
    if (Peek('-')) ++pos_;
    if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Err("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Peek('.')) {
      ++pos_;
      if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Err("bad fraction");
      }
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Peek('e') || Peek('E')) {
      ++pos_;
      if (Peek('+') || Peek('-')) ++pos_;
      if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Err("bad exponent");
      }
      while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return Status::OK();
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || isdigit(static_cast<unsigned char>(c))) return Number();
    return Err("unexpected character");
  }

  Status Object(int depth) {
    CHRONICLE_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      CHRONICLE_RETURN_NOT_OK(String());
      SkipWs();
      CHRONICLE_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      CHRONICLE_RETURN_NOT_OK(Value(depth + 1));
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status Array(int depth) {
    CHRONICLE_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      CHRONICLE_RETURN_NOT_OK(Value(depth + 1));
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string RenderText(const StatsSnapshot& snapshot) {
  std::string out;
  Appendf(&out, "appends processed: %" PRIu64 "\n", snapshot.appends_processed);
  Appendf(&out, "live views:        %" PRIu64 "\n", snapshot.live_views);
  Appendf(&out, "delta cache:       %" PRIu64 " hits / %" PRIu64 " misses\n",
          snapshot.delta_cache_hits, snapshot.delta_cache_misses);
  Appendf(&out, "trace ring:        %" PRIu64 " spans emitted (capacity %" PRIu64 ")\n",
          snapshot.trace_emitted, snapshot.trace_capacity);
  if (!snapshot.metrics.empty()) {
    out += "\nmetrics:\n";
    for (const MetricSample& m : snapshot.metrics) {
      if (m.is_histogram) {
        Appendf(&out, "  %-40s %s\n", m.name.c_str(),
                m.histogram.ToString().c_str());
      } else {
        Appendf(&out, "  %-40s %" PRIu64 "\n", m.name.c_str(), m.value);
      }
    }
  }
  if (!snapshot.views.empty()) {
    out += "\nviews:\n";
    for (const ViewStatsSnapshot& v : snapshot.views) {
      const ViewStats& s = v.stats;
      Appendf(&out,
              "  %-24s ticks=%" PRIu64 " updates=%" PRIu64 " rows=%" PRIu64
              " compiled=%" PRIu64 "/%" PRIu64 " lookups=%" PRIu64 "\n",
              v.name.c_str(), s.ticks, s.updates, s.delta_rows,
              s.compiled_ticks, s.ticks, s.relation_lookups);
      if (s.plan_slots > 0) {
        Appendf(&out,
                "  %-24s slots=%u arena_hwm=%" PRIu64
                "B dedupe_load=%s max_rows=%" PRIu64 "\n",
                "", s.plan_slots, s.arena_hwm_bytes,
                Dbl(s.max_dedupe_load).c_str(), s.max_intermediate_rows);
      }
      if (v.profiled) {
        Appendf(&out, "  %-24s latency %s\n", "", v.latency.ToString().c_str());
      }
    }
  }
  if (snapshot.wal.attached) {
    const WalStatsSnapshot& w = snapshot.wal;
    out += "\nwal:\n";
    Appendf(&out,
            "  records=%" PRIu64 " bytes=%" PRIu64 " syncs=%" PRIu64
            " group_commits=%" PRIu64 " (%" PRIu64 " ticks)\n",
            w.records_logged, w.bytes_logged, w.syncs, w.group_commits,
            w.group_commit_ticks);
    Appendf(&out,
            "  segments=+%" PRIu64 "/-%" PRIu64 " checkpoints=%" PRIu64 "\n",
            w.segments_created, w.segments_removed, w.checkpoints_written);
    if (w.fsync_latency.count() > 0) {
      Appendf(&out, "  fsync latency %s\n", w.fsync_latency.ToString().c_str());
    }
    if (w.recovered) {
      Appendf(&out, "  recovery: %" PRIu64 " applied, %" PRIu64 " skipped\n",
              w.recovery_records_applied, w.recovery_records_skipped);
    }
  }
  if (snapshot.storage.attached) {
    const StorageStatsSnapshot& s = snapshot.storage;
    out += "\nstorage:\n";
    Appendf(&out, "  data dir: %s\n", s.data_dir.c_str());
    Appendf(&out,
            "  segments=+%" PRIu64 "/-%" PRIu64 " quarantined=%" PRIu64
            " seal_failures=%" PRIu64 "\n",
            s.segments_sealed, s.segments_evicted, s.segments_quarantined,
            s.seal_failures);
    Appendf(&out,
            "  rows sealed=%" PRIu64 " evicted=%" PRIu64
            " bytes_written=%" PRIu64 "\n",
            s.rows_sealed, s.rows_evicted, s.bytes_written);
    if (s.backfill_views > 0) {
      Appendf(&out, "  backfill: %" PRIu64 " views, %" PRIu64 " rows\n",
              s.backfill_views, s.backfill_rows);
    }
    for (const ChronicleTierSnapshot& c : s.chronicles) {
      Appendf(&out,
              "  %-24s hot=%" PRIu64 " rows (%" PRIu64 "B) warm=%" PRIu64
              " rows in %" PRIu64 " segs (%" PRIu64 "B disk / %" PRIu64
              "B raw) sealed_sn=%" PRIu64 "\n",
              c.name.c_str(), c.hot_rows, c.hot_bytes, c.warm_rows,
              c.warm_segments, c.warm_bytes, c.warm_raw_bytes,
              c.last_sealed_sn);
    }
  }
  if (snapshot.sharding.attached) {
    const ShardingStatsSnapshot& sh = snapshot.sharding;
    out += "\nsharding:\n";
    Appendf(&out, "  shards=%zu partition_key=%s\n", sh.num_shards,
            sh.partition_key.empty() ? "<mixed>" : sh.partition_key.c_str());
    for (const ShardStatsSnapshot& s : sh.shards) {
      Appendf(&out,
              "  shard %-3zu appends=%" PRIu64 " queue_depth=%" PRIu64
              " batches=%" PRIu64 " rows=%" PRIu64 "\n",
              s.shard, s.appends_processed, s.queue_depth, s.enqueued_batches,
              s.routed_rows);
      if (s.tick_latency_populated && s.tick_latency.count() > 0) {
        Appendf(&out, "  %-9s tick latency %s\n", "",
                s.tick_latency.ToString().c_str());
      }
    }
  }
  if (snapshot.net.attached) {
    const NetStatsSnapshot& n = snapshot.net;
    out += "\nnet:\n";
    Appendf(&out,
            "  port=%u requests=%" PRIu64 " http_errors=%" PRIu64
            " sessions=%" PRIu64 " active=%" PRIu64 "\n",
            unsigned{n.port}, n.requests_total, n.http_errors_total,
            n.sessions_opened, n.active_sessions);
    Appendf(&out,
            "  sql=%" PRIu64 " append_batches=%" PRIu64 " append_rows=%" PRIu64
            " applied=%" PRIu64 " queued=%" PRIu64 "\n",
            n.sql_statements_total, n.append_batches_total, n.append_rows_total,
            n.rows_applied_total, n.queue_rows);
    Appendf(&out,
            "  rejected: backpressure=%" PRIu64 " quota=%" PRIu64
            " auth=%" PRIu64 "\n",
            n.rejected_backpressure_total, n.rejected_quota_total,
            n.rejected_auth_total);
    for (const NetSessionSnapshot& s : n.sessions) {
      Appendf(&out,
              "  session %-12s stmts=%" PRIu64 " accepted=%" PRIu64
              " applied=%" PRIu64 " queued=%" PRIu64 " rejected=%" PRIu64
              "/%" PRIu64 "\n",
              s.id.c_str(), s.statements, s.append_rows_accepted,
              s.append_rows_applied, s.queue_rows, s.rejected_backpressure,
              s.rejected_quota);
    }
  }
  if (snapshot.req.attached) {
    const ReqStatsSnapshot& r = snapshot.req;
    out += "\nreq:\n";
    Appendf(&out,
            "  sample_rate=%s sampled=%" PRIu64 " unsampled=%" PRIu64
            " spans=%" PRIu64 " (capacity %" PRIu64 ") slow_captures=%" PRIu64
            "\n",
            Dbl(r.sample_rate).c_str(), r.sampled_requests,
            r.unsampled_requests, r.spans_emitted, r.capacity,
            r.slow_captures);
    for (const ReqStageStatsSnapshot& s : r.stages) {
      if (s.latency.count() == 0) continue;
      Appendf(&out, "  stage %-12s %s\n", s.stage.c_str(),
              s.latency.ToString().c_str());
    }
    for (const ReqEndpointStatsSnapshot& e : r.endpoints) {
      if (e.requests == 0) continue;
      Appendf(&out,
              "  endpoint %-9s requests=%" PRIu64 " errors=%" PRIu64 " %s\n",
              e.endpoint.c_str(), e.requests, e.errors,
              e.duration.ToString().c_str());
    }
  }
  return out;
}

std::string RenderPrometheus(const StatsSnapshot& snapshot) {
  std::string out;
  PromCounter(&out, "chronicle_appends_processed_total",
              "Appends routed through view maintenance",
              snapshot.appends_processed);
  PromCounter(&out, "chronicle_live_views", "Currently registered views",
              snapshot.live_views);
  PromCounter(&out, "chronicle_delta_cache_hits_total",
              "Delta memo cache hits", snapshot.delta_cache_hits);
  PromCounter(&out, "chronicle_delta_cache_misses_total",
              "Delta memo cache misses", snapshot.delta_cache_misses);
  PromCounter(&out, "chronicle_trace_spans_emitted_total",
              "Spans emitted into the trace ring", snapshot.trace_emitted);

  for (const MetricSample& m : snapshot.metrics) {
    const std::string name = "chronicle_" + m.name;
    if (m.is_histogram) {
      Appendf(&out, "# HELP %s %s\n# TYPE %s histogram\n", name.c_str(),
              m.help.c_str(), name.c_str());
      PromHistogram(&out, name, "", m.histogram);
    } else {
      PromCounter(&out, name, m.help, m.value);
    }
  }

  if (!snapshot.views.empty()) {
    struct Field {
      const char* metric;
      const char* help;
      uint64_t (*get)(const ViewStats&);
    };
    static const Field kFields[] = {
        {"chronicle_view_ticks_total", "Delta computations for the view",
         [](const ViewStats& s) { return s.ticks; }},
        {"chronicle_view_updates_total", "Ticks that changed the view",
         [](const ViewStats& s) { return s.updates; }},
        {"chronicle_view_delta_rows_total", "Delta rows folded into the view",
         [](const ViewStats& s) { return s.delta_rows; }},
        {"chronicle_view_compiled_ticks_total",
         "Ticks served by the compiled plan",
         [](const ViewStats& s) { return s.compiled_ticks; }},
        {"chronicle_view_interpreted_ticks_total",
         "Ticks served by the interpreter",
         [](const ViewStats& s) { return s.interpreted_ticks; }},
        {"chronicle_view_relation_lookups_total",
         "Relation index probes during maintenance",
         [](const ViewStats& s) { return s.relation_lookups; }},
        {"chronicle_view_plan_slots", "Slots in the compiled delta plan",
         [](const ViewStats& s) { return uint64_t{s.plan_slots}; }},
        {"chronicle_view_arena_hwm_bytes", "Scratch arena high-water mark",
         [](const ViewStats& s) { return s.arena_hwm_bytes; }},
    };
    for (const Field& f : kFields) {
      Appendf(&out, "# HELP %s %s\n# TYPE %s counter\n", f.metric, f.help,
              f.metric);
      for (const ViewStatsSnapshot& v : snapshot.views) {
        Appendf(&out, "%s{view=\"%s\"} %" PRIu64 "\n", f.metric,
                Escape(v.name).c_str(), f.get(v.stats));
      }
    }
  }

  if (snapshot.wal.attached) {
    const WalStatsSnapshot& w = snapshot.wal;
    PromCounter(&out, "chronicle_wal_records_total", "WAL records logged",
                w.records_logged);
    PromCounter(&out, "chronicle_wal_bytes_total", "WAL bytes logged",
                w.bytes_logged);
    PromCounter(&out, "chronicle_wal_syncs_total", "WAL fsync calls", w.syncs);
    PromCounter(&out, "chronicle_wal_group_commits_total",
                "Group-commit batches written", w.group_commits);
    PromCounter(&out, "chronicle_wal_group_commit_ticks_total",
                "Ticks covered by group commits", w.group_commit_ticks);
    Appendf(&out,
            "# HELP chronicle_wal_fsync_latency_ns WAL fsync latency\n"
            "# TYPE chronicle_wal_fsync_latency_ns histogram\n");
    PromHistogram(&out, "chronicle_wal_fsync_latency_ns", "", w.fsync_latency);
  }

  if (snapshot.storage.attached) {
    const StorageStatsSnapshot& s = snapshot.storage;
    // Aggregate counters (storage_*_total) come from the metrics registry
    // above; only the section-local aggregates and per-chronicle tier
    // gauges are rendered here, under distinct names.
    PromCounter(&out, "chronicle_storage_segments_quarantined_total",
                "Segments quarantined as corrupt at attach",
                s.segments_quarantined);
    PromCounter(&out, "chronicle_storage_backfill_views_total",
                "Views registered with historical backfill", s.backfill_views);
    PromCounter(&out, "chronicle_storage_backfill_rows_total",
                "Rows replayed into late-registered views", s.backfill_rows);
    if (!s.chronicles.empty()) {
      struct Field {
        const char* metric;
        const char* help;
        uint64_t (*get)(const ChronicleTierSnapshot&);
      };
      static const Field kFields[] = {
          {"chronicle_storage_hot_rows", "Rows in the hot in-memory window",
           [](const ChronicleTierSnapshot& c) { return c.hot_rows; }},
          {"chronicle_storage_hot_bytes",
           "Approximate in-memory bytes of the hot window",
           [](const ChronicleTierSnapshot& c) { return c.hot_bytes; }},
          {"chronicle_storage_warm_rows", "Rows in sealed warm segments",
           [](const ChronicleTierSnapshot& c) { return c.warm_rows; }},
          {"chronicle_storage_warm_segments", "Sealed warm segment files",
           [](const ChronicleTierSnapshot& c) { return c.warm_segments; }},
          {"chronicle_storage_warm_bytes", "On-disk bytes of warm segments",
           [](const ChronicleTierSnapshot& c) { return c.warm_bytes; }},
          {"chronicle_storage_warm_raw_bytes",
           "In-memory-equivalent bytes of the warm rows",
           [](const ChronicleTierSnapshot& c) { return c.warm_raw_bytes; }},
          {"chronicle_storage_last_sealed_sn",
           "Highest SN covered by a sealed segment",
           [](const ChronicleTierSnapshot& c) { return c.last_sealed_sn; }},
      };
      for (const Field& f : kFields) {
        Appendf(&out, "# HELP %s %s\n# TYPE %s gauge\n", f.metric, f.help,
                f.metric);
        for (const ChronicleTierSnapshot& c : s.chronicles) {
          Appendf(&out, "%s{chronicle=\"%s\"} %" PRIu64 "\n", f.metric,
                  Escape(c.name).c_str(), f.get(c));
        }
      }
    }
  }

  if (snapshot.sharding.attached) {
    const ShardingStatsSnapshot& sh = snapshot.sharding;
    Appendf(&out,
            "# HELP chronicle_sharding_num_shards Shards in the router\n"
            "# TYPE chronicle_sharding_num_shards gauge\n"
            "chronicle_sharding_num_shards %zu\n",
            sh.num_shards);
    struct Field {
      const char* metric;
      const char* help;
      const char* type;
      uint64_t (*get)(const ShardStatsSnapshot&);
    };
    static const Field kFields[] = {
        {"chronicle_shard_appends_processed_total",
         "Ticks applied by the shard's engine", "counter",
         [](const ShardStatsSnapshot& s) { return s.appends_processed; }},
        {"chronicle_shard_queue_depth",
         "Rows waiting in the shard's ingest lanes", "gauge",
         [](const ShardStatsSnapshot& s) { return s.queue_depth; }},
        {"chronicle_shard_enqueued_batches_total",
         "Batches routed to the shard", "counter",
         [](const ShardStatsSnapshot& s) { return s.enqueued_batches; }},
        {"chronicle_shard_routed_rows_total", "Rows routed to the shard",
         "counter",
         [](const ShardStatsSnapshot& s) { return s.routed_rows; }},
    };
    for (const Field& f : kFields) {
      Appendf(&out, "# HELP %s %s\n# TYPE %s %s\n", f.metric, f.help, f.metric,
              f.type);
      for (const ShardStatsSnapshot& s : sh.shards) {
        Appendf(&out, "%s{shard=\"%zu\"} %" PRIu64 "\n", f.metric, s.shard,
                f.get(s));
      }
    }
    Appendf(&out,
            "# HELP chronicle_shard_tick_ns Per-shard maintenance tick "
            "latency\n# TYPE chronicle_shard_tick_ns histogram\n");
    for (const ShardStatsSnapshot& s : sh.shards) {
      if (!s.tick_latency_populated) continue;
      PromHistogram(&out, "chronicle_shard_tick_ns",
                    "shard=\"" + std::to_string(s.shard) + "\"",
                    s.tick_latency);
    }
  }

  if (snapshot.net.attached) {
    const NetStatsSnapshot& n = snapshot.net;
    PromCounter(&out, "chronicle_net_requests_total",
                "HTTP requests routed by the wire service", n.requests_total);
    PromCounter(&out, "chronicle_net_http_errors_total",
                "Wire-service responses with status >= 400",
                n.http_errors_total);
    PromCounter(&out, "chronicle_net_sessions_opened_total",
                "Sessions opened over the wire", n.sessions_opened);
    Appendf(&out,
            "# HELP chronicle_net_active_sessions Currently open sessions\n"
            "# TYPE chronicle_net_active_sessions gauge\n"
            "chronicle_net_active_sessions %" PRIu64 "\n",
            n.active_sessions);
    PromCounter(&out, "chronicle_net_sql_statements_total",
                "Statements executed via POST /v1/sql",
                n.sql_statements_total);
    PromCounter(&out, "chronicle_net_append_batches_total",
                "Ticks accepted via POST /v1/append", n.append_batches_total);
    PromCounter(&out, "chronicle_net_append_rows_total",
                "Rows accepted via POST /v1/append", n.append_rows_total);
    PromCounter(&out, "chronicle_net_rows_applied_total",
                "Accepted rows applied by the ingest worker",
                n.rows_applied_total);
    Appendf(&out,
            "# HELP chronicle_net_queue_rows Rows waiting in session ingest "
            "queues\n# TYPE chronicle_net_queue_rows gauge\n"
            "chronicle_net_queue_rows %" PRIu64 "\n",
            n.queue_rows);
    PromCounter(&out, "chronicle_net_rejected_backpressure_total",
                "Appends rejected with 429 by a full session queue",
                n.rejected_backpressure_total);
    PromCounter(&out, "chronicle_net_rejected_quota_total",
                "Appends rejected with 429 by a spent session row quota",
                n.rejected_quota_total);
    PromCounter(&out, "chronicle_net_rejected_auth_total",
                "Requests rejected with 401", n.rejected_auth_total);
    if (!n.sessions.empty()) {
      struct Field {
        const char* metric;
        const char* help;
        const char* type;
        uint64_t (*get)(const NetSessionSnapshot&);
      };
      static const Field kFields[] = {
          {"chronicle_net_session_statements_total",
           "Statements executed by the session", "counter",
           [](const NetSessionSnapshot& s) { return s.statements; }},
          {"chronicle_net_session_rows_accepted_total",
           "Rows accepted into the session's queue", "counter",
           [](const NetSessionSnapshot& s) { return s.append_rows_accepted; }},
          {"chronicle_net_session_rows_applied_total",
           "Session rows applied by the ingest worker", "counter",
           [](const NetSessionSnapshot& s) { return s.append_rows_applied; }},
          {"chronicle_net_session_queue_rows",
           "Rows waiting in the session's bounded queue", "gauge",
           [](const NetSessionSnapshot& s) { return s.queue_rows; }},
          {"chronicle_net_session_rejected_backpressure_total",
           "Session 429s from a full queue", "counter",
           [](const NetSessionSnapshot& s) { return s.rejected_backpressure; }},
          {"chronicle_net_session_rejected_quota_total",
           "Session 429s from a spent row quota", "counter",
           [](const NetSessionSnapshot& s) { return s.rejected_quota; }},
      };
      for (const Field& f : kFields) {
        Appendf(&out, "# HELP %s %s\n# TYPE %s %s\n", f.metric, f.help,
                f.metric, f.type);
        for (const NetSessionSnapshot& s : n.sessions) {
          Appendf(&out, "%s{session=\"%s\"} %" PRIu64 "\n", f.metric,
                  Escape(s.id).c_str(), f.get(s));
        }
      }
    }
  }

  if (snapshot.req.attached) {
    const ReqStatsSnapshot& r = snapshot.req;
    PromCounter(&out, "chronicle_req_sampled_total",
                "Requests whose span tree was sampled", r.sampled_requests);
    PromCounter(&out, "chronicle_req_unsampled_total",
                "Requests that took the zero-span overhead path",
                r.unsampled_requests);
    PromCounter(&out, "chronicle_req_spans_emitted_total",
                "Spans emitted into the request-trace ring",
                r.spans_emitted);
    PromCounter(&out, "chronicle_req_slow_captures_total",
                "Slow-request flight-recorder captures", r.slow_captures);
    // Per-stage latency: one histogram family with a stage label; every
    // fixed stage is present (empty histograms still emit _sum/_count)
    // so dashboards can key on the full glossary before traffic.
    Appendf(&out,
            "# HELP chronicle_req_stage_ns Per-stage request latency\n"
            "# TYPE chronicle_req_stage_ns histogram\n");
    for (const ReqStageStatsSnapshot& s : r.stages) {
      PromHistogram(&out, "chronicle_req_stage_ns",
                    "stage=\"" + Escape(s.stage) + "\"", s.latency);
    }
    // RED per endpoint: rate, errors, duration.
    Appendf(&out,
            "# HELP chronicle_req_requests_total Requests per endpoint\n"
            "# TYPE chronicle_req_requests_total counter\n");
    for (const ReqEndpointStatsSnapshot& e : r.endpoints) {
      Appendf(&out, "chronicle_req_requests_total{endpoint=\"%s\"} %" PRIu64
                    "\n",
              Escape(e.endpoint).c_str(), e.requests);
    }
    Appendf(&out,
            "# HELP chronicle_req_errors_total Responses with status >= 400 "
            "per endpoint\n"
            "# TYPE chronicle_req_errors_total counter\n");
    for (const ReqEndpointStatsSnapshot& e : r.endpoints) {
      Appendf(&out, "chronicle_req_errors_total{endpoint=\"%s\"} %" PRIu64
                    "\n",
              Escape(e.endpoint).c_str(), e.errors);
    }
    Appendf(&out,
            "# HELP chronicle_req_duration_ns Request latency per endpoint\n"
            "# TYPE chronicle_req_duration_ns histogram\n");
    for (const ReqEndpointStatsSnapshot& e : r.endpoints) {
      PromHistogram(&out, "chronicle_req_duration_ns",
                    "endpoint=\"" + Escape(e.endpoint) + "\"", e.duration);
    }
  }
  return out;
}

std::string RenderJson(const StatsSnapshot& snapshot) {
  std::string out;
  out += "{";
  Appendf(&out, "\"appends_processed\":%" PRIu64 ",", snapshot.appends_processed);
  Appendf(&out, "\"live_views\":%" PRIu64 ",", snapshot.live_views);
  Appendf(&out, "\"delta_cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64 "},",
          snapshot.delta_cache_hits, snapshot.delta_cache_misses);
  Appendf(&out, "\"trace\":{\"emitted\":%" PRIu64 ",\"capacity\":%" PRIu64 "},",
          snapshot.trace_emitted, snapshot.trace_capacity);

  out += "\"metrics\":{";
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricSample& m = snapshot.metrics[i];
    if (i > 0) out += ",";
    Appendf(&out, "\"%s\":", Escape(m.name).c_str());
    if (m.is_histogram) {
      JsonHistogram(&out, m.histogram);
    } else {
      Appendf(&out, "%" PRIu64, m.value);
    }
  }
  out += "},";

  out += "\"views\":[";
  for (size_t i = 0; i < snapshot.views.size(); ++i) {
    const ViewStatsSnapshot& v = snapshot.views[i];
    const ViewStats& s = v.stats;
    if (i > 0) out += ",";
    Appendf(&out,
            "{\"name\":\"%s\",\"ticks\":%" PRIu64 ",\"updates\":%" PRIu64
            ",\"delta_rows\":%" PRIu64 ",\"compiled_ticks\":%" PRIu64
            ",\"interpreted_ticks\":%" PRIu64 ",\"relation_lookups\":%" PRIu64
            ",\"max_intermediate_rows\":%" PRIu64 ",\"plan_slots\":%u"
            ",\"arena_hwm_bytes\":%" PRIu64 ",\"max_dedupe_load\":%s",
            Escape(v.name).c_str(), s.ticks, s.updates, s.delta_rows,
            s.compiled_ticks, s.interpreted_ticks, s.relation_lookups,
            s.max_intermediate_rows, s.plan_slots, s.arena_hwm_bytes,
            Dbl(s.max_dedupe_load).c_str());
    if (v.profiled) {
      out += ",\"latency\":";
      JsonHistogram(&out, v.latency);
    }
    out += "}";
  }
  out += "],";

  out += "\"wal\":";
  if (snapshot.wal.attached) {
    const WalStatsSnapshot& w = snapshot.wal;
    Appendf(&out,
            "{\"records_logged\":%" PRIu64 ",\"bytes_logged\":%" PRIu64
            ",\"syncs\":%" PRIu64 ",\"segments_created\":%" PRIu64
            ",\"segments_removed\":%" PRIu64 ",\"checkpoints_written\":%" PRIu64
            ",\"group_commits\":%" PRIu64 ",\"group_commit_ticks\":%" PRIu64
            ",\"fsync_latency\":",
            w.records_logged, w.bytes_logged, w.syncs, w.segments_created,
            w.segments_removed, w.checkpoints_written, w.group_commits,
            w.group_commit_ticks);
    JsonHistogram(&out, w.fsync_latency);
    if (w.recovered) {
      Appendf(&out,
              ",\"recovery\":{\"applied\":%" PRIu64 ",\"skipped\":%" PRIu64 "}",
              w.recovery_records_applied, w.recovery_records_skipped);
    }
    out += "}";
  } else {
    out += "null";
  }

  out += ",\"storage\":";
  if (snapshot.storage.attached) {
    const StorageStatsSnapshot& s = snapshot.storage;
    Appendf(&out,
            "{\"data_dir\":\"%s\",\"segments_sealed\":%" PRIu64
            ",\"segments_evicted\":%" PRIu64
            ",\"segments_quarantined\":%" PRIu64 ",\"rows_sealed\":%" PRIu64
            ",\"rows_evicted\":%" PRIu64 ",\"bytes_written\":%" PRIu64
            ",\"seal_failures\":%" PRIu64 ",\"backfill_views\":%" PRIu64
            ",\"backfill_rows\":%" PRIu64 ",\"chronicles\":[",
            Escape(s.data_dir).c_str(), s.segments_sealed, s.segments_evicted,
            s.segments_quarantined, s.rows_sealed, s.rows_evicted,
            s.bytes_written, s.seal_failures, s.backfill_views,
            s.backfill_rows);
    for (size_t i = 0; i < s.chronicles.size(); ++i) {
      const ChronicleTierSnapshot& c = s.chronicles[i];
      if (i > 0) out += ",";
      Appendf(&out,
              "{\"name\":\"%s\",\"hot_rows\":%" PRIu64 ",\"hot_bytes\":%" PRIu64
              ",\"warm_segments\":%" PRIu64 ",\"warm_rows\":%" PRIu64
              ",\"warm_bytes\":%" PRIu64 ",\"warm_raw_bytes\":%" PRIu64
              ",\"last_sealed_sn\":%" PRIu64 "}",
              Escape(c.name).c_str(), c.hot_rows, c.hot_bytes, c.warm_segments,
              c.warm_rows, c.warm_bytes, c.warm_raw_bytes, c.last_sealed_sn);
    }
    out += "]}";
  } else {
    out += "null";
  }

  out += ",\"sharding\":";
  if (snapshot.sharding.attached) {
    const ShardingStatsSnapshot& sh = snapshot.sharding;
    Appendf(&out, "{\"num_shards\":%zu,\"partition_key\":\"%s\",\"shards\":[",
            sh.num_shards, Escape(sh.partition_key).c_str());
    for (size_t i = 0; i < sh.shards.size(); ++i) {
      const ShardStatsSnapshot& s = sh.shards[i];
      if (i > 0) out += ",";
      Appendf(&out,
              "{\"shard\":%zu,\"appends_processed\":%" PRIu64
              ",\"queue_depth\":%" PRIu64 ",\"enqueued_batches\":%" PRIu64
              ",\"routed_rows\":%" PRIu64,
              s.shard, s.appends_processed, s.queue_depth, s.enqueued_batches,
              s.routed_rows);
      if (s.tick_latency_populated) {
        out += ",\"tick_latency\":";
        JsonHistogram(&out, s.tick_latency);
      }
      out += "}";
    }
    out += "]}";
  } else {
    out += "null";
  }

  out += ",\"net\":";
  if (snapshot.net.attached) {
    const NetStatsSnapshot& n = snapshot.net;
    Appendf(&out,
            "{\"port\":%u,\"requests_total\":%" PRIu64
            ",\"http_errors_total\":%" PRIu64 ",\"sessions_opened\":%" PRIu64
            ",\"active_sessions\":%" PRIu64 ",\"sql_statements_total\":%" PRIu64
            ",\"append_batches_total\":%" PRIu64
            ",\"append_rows_total\":%" PRIu64 ",\"rows_applied_total\":%" PRIu64
            ",\"queue_rows\":%" PRIu64
            ",\"rejected_backpressure_total\":%" PRIu64
            ",\"rejected_quota_total\":%" PRIu64
            ",\"rejected_auth_total\":%" PRIu64 ",\"sessions\":[",
            unsigned{n.port}, n.requests_total, n.http_errors_total,
            n.sessions_opened, n.active_sessions, n.sql_statements_total,
            n.append_batches_total, n.append_rows_total, n.rows_applied_total,
            n.queue_rows, n.rejected_backpressure_total,
            n.rejected_quota_total, n.rejected_auth_total);
    for (size_t i = 0; i < n.sessions.size(); ++i) {
      const NetSessionSnapshot& s = n.sessions[i];
      if (i > 0) out += ",";
      Appendf(&out,
              "{\"id\":\"%s\",\"statements\":%" PRIu64
              ",\"append_rows_accepted\":%" PRIu64
              ",\"append_rows_applied\":%" PRIu64 ",\"queue_rows\":%" PRIu64
              ",\"rejected_backpressure\":%" PRIu64
              ",\"rejected_quota\":%" PRIu64 ",\"row_quota\":%" PRIu64 "}",
              Escape(s.id).c_str(), s.statements, s.append_rows_accepted,
              s.append_rows_applied, s.queue_rows, s.rejected_backpressure,
              s.rejected_quota, s.row_quota);
    }
    out += "]}";
  } else {
    out += "null";
  }

  out += ",\"req\":";
  if (snapshot.req.attached) {
    const ReqStatsSnapshot& r = snapshot.req;
    Appendf(&out,
            "{\"sample_rate\":%s,\"sampled_requests\":%" PRIu64
            ",\"unsampled_requests\":%" PRIu64 ",\"spans_emitted\":%" PRIu64
            ",\"capacity\":%" PRIu64 ",\"slow_captures\":%" PRIu64
            ",\"slow_budget_ns\":%" PRId64 ",\"stages\":{",
            Dbl(r.sample_rate).c_str(), r.sampled_requests,
            r.unsampled_requests, r.spans_emitted, r.capacity,
            r.slow_captures, r.slow_budget_ns);
    for (size_t i = 0; i < r.stages.size(); ++i) {
      const ReqStageStatsSnapshot& s = r.stages[i];
      if (i > 0) out += ",";
      Appendf(&out, "\"%s\":", Escape(s.stage).c_str());
      JsonHistogram(&out, s.latency);
    }
    out += "},\"endpoints\":{";
    for (size_t i = 0; i < r.endpoints.size(); ++i) {
      const ReqEndpointStatsSnapshot& e = r.endpoints[i];
      if (i > 0) out += ",";
      Appendf(&out, "\"%s\":{\"requests\":%" PRIu64 ",\"errors\":%" PRIu64
                    ",\"duration\":",
              Escape(e.endpoint).c_str(), e.requests, e.errors);
      JsonHistogram(&out, e.duration);
      out += "}";
    }
    out += "}}";
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

std::string RenderTraceText(const std::vector<TraceSpan>& spans,
                            uint64_t total_emitted, uint64_t capacity) {
  std::string out;
  Appendf(&out, "trace ring: %" PRIu64 " spans emitted, %zu retained (capacity %" PRIu64 ")\n",
          total_emitted, spans.size(), capacity);
  for (const TraceSpan& span : spans) {
    Appendf(&out,
            "  #%-6" PRIu64 " %-12s sn=%-6" PRIu64 " worker=%-2u t=%.3fms dur=%.3fus d0=%" PRIu64
            " d1=%" PRIu64 "\n",
            span.seq, SpanKindToString(span.kind), span.sn,
            unsigned{span.worker}, span.start_ns / 1e6, span.duration_ns / 1e3,
            span.detail0, span.detail1);
  }
  return out;
}

namespace {

// One span listing, every span tagged with the shard that emitted it
// (-1 = unsharded) — seq orders spans only within one shard's ring.
void JsonSpanArray(std::string* out, const std::vector<TraceSpan>& spans,
                   int shard) {
  *out += "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) *out += ",";
    Appendf(out,
            "{\"seq\":%" PRIu64 ",\"kind\":\"%s\",\"shard\":%d,\"worker\":%u"
            ",\"sn\":%" PRIu64 ",\"start_ns\":%" PRId64
            ",\"duration_ns\":%" PRId64 ",\"detail0\":%" PRIu64
            ",\"detail1\":%" PRIu64 "}",
            span.seq, SpanKindToString(span.kind), shard,
            unsigned{span.worker}, span.sn, span.start_ns, span.duration_ns,
            span.detail0, span.detail1);
  }
  *out += "]";
}

}  // namespace

std::string RenderTraceJson(const std::vector<TraceSpan>& spans,
                            uint64_t total_emitted, uint64_t capacity) {
  std::string out;
  Appendf(&out, "{\"emitted\":%" PRIu64 ",\"capacity\":%" PRIu64
                ",\"spans\":",
          total_emitted, capacity);
  JsonSpanArray(&out, spans, /*shard=*/-1);
  out += "}";
  return out;
}

std::string RenderTraceJson(const std::vector<ShardTraceSnapshot>& shards) {
  uint64_t emitted = 0;
  uint64_t capacity = 0;
  for (const ShardTraceSnapshot& s : shards) {
    emitted += s.emitted;
    capacity += s.capacity;
  }
  std::string out;
  Appendf(&out, "{\"emitted\":%" PRIu64 ",\"capacity\":%" PRIu64
                ",\"shards\":[",
          emitted, capacity);
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardTraceSnapshot& s = shards[i];
    if (i > 0) out += ",";
    Appendf(&out, "{\"shard\":%d,\"emitted\":%" PRIu64 ",\"capacity\":%" PRIu64
                  ",\"spans\":",
            s.shard, s.emitted, s.capacity);
    JsonSpanArray(&out, s.spans, s.shard);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string JsonEscape(const std::string& s) { return Escape(s); }

Status ValidateJson(const std::string& text) {
  return JsonParser(text).Validate();
}

}  // namespace obs
}  // namespace chronicle
