#include "workload/call_records.h"

namespace chronicle {

namespace {
const char* kRegions[] = {"NJ", "NY", "CA", "TX", "IL", "WA", "FL", "MA",
                          "PA", "OH", "GA", "MI", "NC", "VA", "AZ", "CO"};
constexpr int kMaxRegions = static_cast<int>(sizeof(kRegions) / sizeof(kRegions[0]));
}  // namespace

CallRecordGenerator::CallRecordGenerator(CallRecordOptions options)
    : options_(options),
      rng_(options.seed),
      accounts_(options.num_accounts, options.account_skew, options.seed ^ 0x5bd1) {
  if (options_.num_regions > kMaxRegions) options_.num_regions = kMaxRegions;
  if (options_.num_regions < 1) options_.num_regions = 1;
}

Schema CallRecordGenerator::RecordSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64},
                 {"charge", DataType::kDouble}});
}

Schema CallRecordGenerator::CustomerSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"name", DataType::kString},
                 {"region", DataType::kString}});
}

Tuple CallRecordGenerator::Next() {
  const int64_t caller = static_cast<int64_t>(accounts_.Next());
  const char* region = kRegions[rng_.Uniform(static_cast<uint64_t>(options_.num_regions))];
  const int64_t minutes = rng_.UniformInt(1, options_.max_minutes);
  const double charge = static_cast<double>(minutes) * options_.rate_per_minute;
  return Tuple{Value(caller), Value(region), Value(minutes), Value(charge)};
}

std::vector<Tuple> CallRecordGenerator::NextBatch(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

std::vector<Tuple> CallRecordGenerator::CustomerRows() const {
  Rng rng(options_.seed ^ 0xc0ffee);
  std::vector<Tuple> out;
  out.reserve(options_.num_accounts);
  for (uint64_t acct = 0; acct < options_.num_accounts; ++acct) {
    const char* region =
        kRegions[rng.Uniform(static_cast<uint64_t>(options_.num_regions))];
    out.push_back(Tuple{Value(static_cast<int64_t>(acct)),
                        Value("cust_" + std::to_string(acct)), Value(region)});
  }
  return out;
}

}  // namespace chronicle
