// FlyerGenerator: the frequent-flyer scenario of Examples 2.1 / 2.2 —
// mileage transactions joined against a customer relation whose addresses
// change over time (proactive updates + implicit temporal join: a flight
// earns the NJ bonus only if the customer lived in NJ when it was
// recorded).

#ifndef CHRONICLE_WORKLOAD_FLYER_H_
#define CHRONICLE_WORKLOAD_FLYER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

struct FlyerOptions {
  uint64_t num_customers = 2000;
  double customer_skew = 0.8;
  int64_t max_miles = 3000;
  // Probability per generated flight that some customer moves first.
  double address_change_rate = 0.01;
  uint64_t seed = 1234;
};

class FlyerGenerator {
 public:
  explicit FlyerGenerator(FlyerOptions options = {});

  // Mileage chronicle: (acct INT64, flight STRING, miles INT64)
  static Schema FlightSchema();
  // Customer relation: (acct INT64, name STRING, state STRING), key acct.
  static Schema CustomerSchema();

  // Initial customer relation contents.
  std::vector<Tuple> CustomerRows() const;

  // One flight record.
  Tuple NextFlight();
  // With probability address_change_rate, returns a replacement customer
  // row (same acct, new state) to apply as a proactive update BEFORE the
  // next flight is appended.
  std::optional<Tuple> MaybeAddressChange();

  const FlyerOptions& options() const { return options_; }

 private:
  std::string RandomState(Rng* rng) const;

  FlyerOptions options_;
  Rng rng_;
  ZipfSampler customers_;
};

}  // namespace chronicle

#endif  // CHRONICLE_WORKLOAD_FLYER_H_
