// StockTradeGenerator: synthetic trade stream for the §5.1 moving-window
// scenario ("total number of shares of a stock sold during the 30 days
// preceding that day").

#ifndef CHRONICLE_WORKLOAD_STOCK_H_
#define CHRONICLE_WORKLOAD_STOCK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

struct StockOptions {
  int num_symbols = 64;
  double symbol_skew = 1.0;
  int64_t max_shares = 10000;
  double base_price = 50.0;
  uint64_t seed = 99;
};

class StockTradeGenerator {
 public:
  explicit StockTradeGenerator(StockOptions options = {});

  // (symbol STRING, shares INT64, price DOUBLE)
  static Schema RecordSchema();

  Tuple Next();
  std::vector<Tuple> NextBatch(size_t n);

  const StockOptions& options() const { return options_; }

 private:
  StockOptions options_;
  Rng rng_;
  ZipfSampler symbols_;
};

}  // namespace chronicle

#endif  // CHRONICLE_WORKLOAD_STOCK_H_
