// CallRecordGenerator: synthetic cellular call-detail records (CDRs) — the
// paper's motivating workload (a telecom collecting 75 GB/day of
// transaction records, summary queries like "total minutes this month").
//
// Substitution note (DESIGN.md): the paper used proprietary AT&T streams;
// any stream with controllable account cardinality and skew exercises the
// same maintenance code paths, so a seeded Zipf generator preserves the
// behaviors the theorems are about.

#ifndef CHRONICLE_WORKLOAD_CALL_RECORDS_H_
#define CHRONICLE_WORKLOAD_CALL_RECORDS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

struct CallRecordOptions {
  uint64_t num_accounts = 10000;
  double account_skew = 0.9;  // Zipf s-parameter over accounts
  int64_t max_minutes = 120;
  double rate_per_minute = 0.11;  // dollars
  int num_regions = 8;
  uint64_t seed = 42;
};

class CallRecordGenerator {
 public:
  explicit CallRecordGenerator(CallRecordOptions options = {});

  // (caller INT64, region STRING, minutes INT64, charge DOUBLE)
  static Schema RecordSchema();
  // Customer relation rows (acct INT64, name STRING, region STRING), for
  // key-join scenarios: one row per account in [0, num_accounts).
  static Schema CustomerSchema();

  // One call record.
  Tuple Next();
  // `n` call records.
  std::vector<Tuple> NextBatch(size_t n);
  // The full customer relation contents.
  std::vector<Tuple> CustomerRows() const;

  const CallRecordOptions& options() const { return options_; }

 private:
  CallRecordOptions options_;
  Rng rng_;
  ZipfSampler accounts_;
};

}  // namespace chronicle

#endif  // CHRONICLE_WORKLOAD_CALL_RECORDS_H_
