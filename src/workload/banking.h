// BankingGenerator: synthetic ATM/teller transaction records — the
// paper's dollar_balance scenario (and the Chemical Bank anecdote that
// motivates getting the update code out of application logic).

#ifndef CHRONICLE_WORKLOAD_BANKING_H_
#define CHRONICLE_WORKLOAD_BANKING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

struct BankingOptions {
  uint64_t num_accounts = 5000;
  double account_skew = 0.7;
  double max_amount = 500.0;
  // Fraction of withdrawals (the rest are deposits, plus a few fees).
  double withdrawal_fraction = 0.55;
  double fee_fraction = 0.05;
  uint64_t seed = 7;
};

class BankingGenerator {
 public:
  explicit BankingGenerator(BankingOptions options = {});

  // (acct INT64, kind STRING, amount DOUBLE) — amount is signed: deposits
  // positive, withdrawals/fees negative, so SUM(amount) is the balance.
  static Schema RecordSchema();

  Tuple Next();
  std::vector<Tuple> NextBatch(size_t n);

  const BankingOptions& options() const { return options_; }

 private:
  BankingOptions options_;
  Rng rng_;
  ZipfSampler accounts_;
};

}  // namespace chronicle

#endif  // CHRONICLE_WORKLOAD_BANKING_H_
