#include "workload/stock.h"

namespace chronicle {

StockTradeGenerator::StockTradeGenerator(StockOptions options)
    : options_(options),
      rng_(options.seed),
      symbols_(static_cast<uint64_t>(options.num_symbols), options.symbol_skew,
               options.seed ^ 0x51ed) {}

Schema StockTradeGenerator::RecordSchema() {
  return Schema({{"symbol", DataType::kString},
                 {"shares", DataType::kInt64},
                 {"price", DataType::kDouble}});
}

Tuple StockTradeGenerator::Next() {
  const uint64_t sym = symbols_.Next();
  const int64_t shares = rng_.UniformInt(1, options_.max_shares);
  const double price =
      options_.base_price * (0.5 + rng_.NextDouble()) + static_cast<double>(sym);
  return Tuple{Value("SYM" + std::to_string(sym)), Value(shares), Value(price)};
}

std::vector<Tuple> StockTradeGenerator::NextBatch(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace chronicle
