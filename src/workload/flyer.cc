#include "workload/flyer.h"

namespace chronicle {

namespace {
const char* kStates[] = {"NJ", "NY", "PA", "CT", "CA", "TX", "FL", "IL"};
constexpr uint64_t kNumStates = sizeof(kStates) / sizeof(kStates[0]);
const char* kAirports[] = {"EWR", "JFK", "SFO", "ORD", "DFW", "MIA", "SEA", "BOS"};
constexpr uint64_t kNumAirports = sizeof(kAirports) / sizeof(kAirports[0]);
}  // namespace

FlyerGenerator::FlyerGenerator(FlyerOptions options)
    : options_(options),
      rng_(options.seed),
      customers_(options.num_customers, options.customer_skew,
                 options.seed ^ 0xfeed) {}

Schema FlyerGenerator::FlightSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"flight", DataType::kString},
                 {"miles", DataType::kInt64}});
}

Schema FlyerGenerator::CustomerSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"name", DataType::kString},
                 {"state", DataType::kString}});
}

std::string FlyerGenerator::RandomState(Rng* rng) const {
  return kStates[rng->Uniform(kNumStates)];
}

std::vector<Tuple> FlyerGenerator::CustomerRows() const {
  Rng rng(options_.seed ^ 0xabcd);
  std::vector<Tuple> out;
  out.reserve(options_.num_customers);
  for (uint64_t acct = 0; acct < options_.num_customers; ++acct) {
    out.push_back(Tuple{Value(static_cast<int64_t>(acct)),
                        Value("flyer_" + std::to_string(acct)),
                        Value(RandomState(&rng))});
  }
  return out;
}

Tuple FlyerGenerator::NextFlight() {
  const int64_t acct = static_cast<int64_t>(customers_.Next());
  const std::string from = kAirports[rng_.Uniform(kNumAirports)];
  const std::string to = kAirports[rng_.Uniform(kNumAirports)];
  const int64_t miles = rng_.UniformInt(100, options_.max_miles);
  return Tuple{Value(acct), Value(from + "-" + to), Value(miles)};
}

std::optional<Tuple> FlyerGenerator::MaybeAddressChange() {
  if (!rng_.Bernoulli(options_.address_change_rate)) return std::nullopt;
  const int64_t acct =
      rng_.UniformInt(0, static_cast<int64_t>(options_.num_customers) - 1);
  return Tuple{Value(acct), Value("flyer_" + std::to_string(acct)),
               Value(RandomState(&rng_))};
}

}  // namespace chronicle
