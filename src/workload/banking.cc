#include "workload/banking.h"

namespace chronicle {

BankingGenerator::BankingGenerator(BankingOptions options)
    : options_(options),
      rng_(options.seed),
      accounts_(options.num_accounts, options.account_skew, options.seed ^ 0x9e37) {}

Schema BankingGenerator::RecordSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"kind", DataType::kString},
                 {"amount", DataType::kDouble}});
}

Tuple BankingGenerator::Next() {
  const int64_t acct = static_cast<int64_t>(accounts_.Next());
  const double u = rng_.NextDouble();
  const double magnitude = rng_.NextDouble() * options_.max_amount;
  if (u < options_.fee_fraction) {
    return Tuple{Value(acct), Value("fee"), Value(-2.5)};
  }
  if (u < options_.fee_fraction + options_.withdrawal_fraction) {
    return Tuple{Value(acct), Value("withdrawal"), Value(-magnitude)};
  }
  return Tuple{Value(acct), Value("deposit"), Value(magnitude)};
}

std::vector<Tuple> BankingGenerator::NextBatch(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace chronicle
