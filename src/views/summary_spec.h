// SummarySpec: the summarization step of Definition 4.3, mapping a
// chronicle-algebra expression χ into a relation by eliminating the
// sequencing attribute in one of two ways:
//
//   * GroupBy           — GROUPBY(χ, GL, AL) with SN ∉ GL and every
//                         aggregate incrementally computable;
//   * DistinctProjection— Π_{A...}(χ) with the SN projected out. Because
//                         the same payload can arrive under many SNs, the
//                         view keeps a multiplicity per distinct row (the
//                         classic counting algorithm); under append-only
//                         chronicles multiplicities only grow, so a row
//                         never disappears.

#ifndef CHRONICLE_VIEWS_SUMMARY_SPEC_H_
#define CHRONICLE_VIEWS_SUMMARY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aggregates/aggregate.h"
#include "common/status.h"
#include "types/schema.h"

namespace chronicle {

class SummarySpec {
 public:
  enum class Kind : uint8_t {
    kGroupBy = 0,
    kDistinctProjection = 1,
  };

  // GROUPBY(χ, group_columns, aggregates); `input` is χ's payload schema.
  // `group_columns` may be empty (a single global group, e.g. one running
  // total for the whole chronicle).
  static Result<SummarySpec> GroupBy(const Schema& input,
                                     std::vector<std::string> group_columns,
                                     std::vector<AggSpec> aggregates);

  // Π_{columns}(χ) with SN dropped.
  static Result<SummarySpec> DistinctProjection(
      const Schema& input, std::vector<std::string> columns);

  Kind kind() const { return kind_; }
  // Indexes of the grouping / projected columns in χ's payload.
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  // Schema of the resulting relation: key columns then aggregate outputs.
  const Schema& output_schema() const { return output_schema_; }

  // Extracts the view key of one delta tuple.
  Tuple KeyOf(const Tuple& row) const;

  std::string ToString() const;

 private:
  SummarySpec(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::vector<size_t> key_columns_;
  std::vector<AggSpec> aggregates_;
  Schema output_schema_;
};

}  // namespace chronicle

#endif  // CHRONICLE_VIEWS_SUMMARY_SPEC_H_
