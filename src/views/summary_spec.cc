#include "views/summary_spec.h"

namespace chronicle {

Result<SummarySpec> SummarySpec::GroupBy(const Schema& input,
                                         std::vector<std::string> group_columns,
                                         std::vector<AggSpec> aggregates) {
  if (aggregates.empty()) {
    return Status::InvalidArgument(
        "summarizing GROUPBY requires at least one aggregate");
  }
  SummarySpec spec(Kind::kGroupBy);
  std::vector<Field> fields;
  for (const std::string& name : group_columns) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(name));
    spec.key_columns_.push_back(idx);
    fields.push_back(input.field(idx));
  }
  spec.aggregates_ = std::move(aggregates);
  for (AggSpec& agg : spec.aggregates_) {
    CHRONICLE_RETURN_NOT_OK(agg.Bind(input));
    fields.push_back(agg.OutputField());
  }
  CHRONICLE_ASSIGN_OR_RETURN(spec.output_schema_, Schema::Make(std::move(fields)));
  return spec;
}

Result<SummarySpec> SummarySpec::DistinctProjection(
    const Schema& input, std::vector<std::string> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("distinct projection requires columns");
  }
  SummarySpec spec(Kind::kDistinctProjection);
  std::vector<Field> fields;
  for (const std::string& name : columns) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(name));
    spec.key_columns_.push_back(idx);
    fields.push_back(input.field(idx));
  }
  CHRONICLE_ASSIGN_OR_RETURN(spec.output_schema_, Schema::Make(std::move(fields)));
  return spec;
}

Tuple SummarySpec::KeyOf(const Tuple& row) const {
  Tuple key;
  key.reserve(key_columns_.size());
  for (size_t idx : key_columns_) key.push_back(row[idx]);
  return key;
}

std::string SummarySpec::ToString() const {
  std::string out =
      kind_ == Kind::kGroupBy ? "GROUPBY[" : "DISTINCT_PROJECT[";
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += output_schema_.field(i).name;
  }
  if (kind_ == Kind::kGroupBy) {
    out += " ; ";
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (i > 0) out += ", ";
      out += aggregates_[i].ToString();
    }
  }
  out += "]";
  return out;
}

}  // namespace chronicle
