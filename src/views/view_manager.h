// ViewManager: registry and maintenance driver for persistent views, with
// the §5.2 machinery for identifying affected views.
//
// "When multiple views are to be maintained over the same chronicle, each
// update to the chronicle would require checking all the views" — unless
// the system can filter early. The manager supports three routing modes,
// benchmarked against each other in experiment E3:
//
//   kCheckAll — the paper's strawman: every registered view is handed every
//               append; the delta computation discovers emptiness.
//   kGuards   — per-chronicle dependency lists plus guard predicates: a
//               view whose defining expression selects on the base
//               chronicle (σ_p directly above the scan) is skipped when no
//               inserted tuple satisfies p. Sound because an empty scan
//               delta on every inserted chronicle forces an empty view
//               delta (monotonicity).
//   kEqIndex  — additionally, views whose guard contains an equality
//               conjunct `col = constant` are indexed by that constant, so
//               an append probes a hash table instead of testing every
//               view's guard (the "indices on persistent views" of §5.2).

#ifndef CHRONICLE_VIEWS_VIEW_MANAGER_H_
#define CHRONICLE_VIEWS_VIEW_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/delta_engine.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/delta_plan.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "views/persistent_view.h"

namespace chronicle {

enum class RoutingMode : uint8_t {
  kCheckAll = 0,
  kGuards = 1,
  kEqIndex = 2,
};

// Knobs for the parallel maintenance path. Theorem 4.2 makes each view's
// per-append delta independent of every other view, so once routing has
// selected the affected views their deltas can be computed concurrently.
// The fold stays deterministic: views are partitioned into contiguous
// batches by registration order, each view is touched by exactly one
// worker, and the per-batch MaintenanceReport counters are summed — the
// merged report is byte-identical to the serial one regardless of how the
// OS schedules the workers.
struct MaintenanceOptions {
  // Worker threads for delta computation. 1 (the default) keeps the seed's
  // serial path — no pool is created at all.
  size_t num_threads = 1;
  // Don't split the affected-view list into more batches than would leave
  // each worker at least this many views; below 2x this, run serially.
  // Guards against paying dispatch latency on ticks that touch few views.
  size_t min_views_per_task = 8;
  // Execute deltas through the compiled DeltaPlan (src/exec) each view
  // gets at registration time: flat post-order programs over reused
  // scratch buffers, no per-tick memo hashing or per-operator allocation.
  // false falls back to the tree-walking DeltaEngine interpreter (which is
  // also what any view whose plan failed to compile uses). Results are
  // identical either way (enforced by tests/plan_equivalence_fuzz_test.cc);
  // only the constant factors differ (bench E13). Note the interpreter's
  // cross-view DeltaCache sharing does not apply to compiled execution —
  // sharing there is within-plan, by slot construction.
  bool use_compiled_plans = true;
  // Within compiled execution, run instructions the compiler marked
  // columnar on the vectorized column kernels (exec/vector_kernels.h).
  // false pins every instruction to the row engine. A pure runtime toggle
  // on PlanScratch — flipping it never recompiles a plan — and byte-for-
  // byte output equivalence is fuzzed three ways alongside the
  // interpreter. No effect when use_compiled_plans is false.
  bool use_columnar_kernels = true;
};

// One view's contribution to a tick. Only populated when observability is
// attached (set_observability); the exporter round-trip test reconstructs
// every per-view counter from these.
struct MaintenanceViewOutcome {
  ViewId view = 0;
  size_t delta_rows = 0;   // rows folded into the view this tick
  bool compiled = false;   // served by the compiled DeltaPlan
};

// Timing of one fan-out batch. One entry is emitted PER TASK, in batch
// order, even when the batch received zero views — an absent entry would
// let the batch-order merge silently misalign worker timings against
// worker indexes downstream (the bug this struct's discipline fixes).
// The serial path emits a single batch with worker == 0.
struct MaintenanceBatch {
  size_t worker = 0;   // fan-out task index
  size_t views = 0;    // views maintained by this batch
  int64_t nanos = 0;   // wall time of the batch's delta work
};

// Outcome of maintaining all views for one append.
struct MaintenanceReport {
  size_t views_considered = 0;     // views whose delta was computed
  size_t views_updated = 0;        // views that received >= 1 delta row
  size_t views_skipped = 0;        // views filtered out before delta work
  size_t delta_rows_applied = 0;   // total rows folded into views
  // Whole-tick wall time (routing + delta work). 0 unless observability is
  // attached; the database's slow-tick flight recorder keys off it.
  int64_t tick_ns = 0;
  // Per-view outcomes in deterministic work-list (batch-concatenation)
  // order, and per-batch timings. Both empty unless observability is
  // attached — the seed fields above are always maintained.
  std::vector<MaintenanceViewOutcome> views;
  std::vector<MaintenanceBatch> batches;
};

class ViewManager {
 public:
  explicit ViewManager(RoutingMode mode = RoutingMode::kEqIndex);

  RoutingMode routing_mode() const { return mode_; }

  // Registers a view and indexes its guards. The manager owns the view.
  Result<ViewId> AddView(std::unique_ptr<PersistentView> view);

  // Unregisters a view: its materialized state is discarded and it stops
  // being maintained. The slot is tombstoned (ids of other views remain
  // stable) and the name becomes reusable. Restoring an old checkpoint
  // into a renamed/re-created view is guarded by the per-group state-shape
  // checks in RestoreGroup.
  Status DropView(const std::string& name);

  // Number of view slots ever allocated (including tombstones); iterate
  // with GetView and skip NotFound to enumerate live views.
  size_t num_views() const { return views_.size(); }
  size_t num_live_views() const { return live_views_; }
  Result<PersistentView*> GetView(ViewId id);
  Result<const PersistentView*> GetView(ViewId id) const;
  Result<PersistentView*> FindView(const std::string& name);
  Result<const PersistentView*> FindView(const std::string& name) const;

  // Maintains every affected view for one append event. This is the
  // operation whose complexity the whole paper is about. With
  // maintenance_options().num_threads > 1 the per-view delta computations
  // run on the pool; the report is identical either way.
  Result<MaintenanceReport> ProcessAppend(const AppendEvent& event);

  // Replays one historical event into a SINGLE view (the tiered store's
  // backfill path): routing is bypassed — the caller owns event order and
  // coverage — and the delta goes through the same MaintainOne primitive
  // as live maintenance, so a backfilled view converges to the exact state
  // it would have reached had it been registered at SN 0. Serial-path
  // state; must not run concurrently with ProcessAppend.
  Status BackfillView(ViewId id, const AppendEvent& event,
                      MaintenanceReport* report);

  // Base chronicles of one view's plan (what backfill must stream).
  Result<const std::set<ChronicleId>*> ViewChronicles(ViewId id) const;

  // Reconfigures the parallel maintenance path. Creating/destroying the
  // pool happens here, never on the append path. Must not be called while
  // an append is in flight.
  void set_maintenance_options(const MaintenanceOptions& options);
  const MaintenanceOptions& maintenance_options() const { return options_; }

  // Sum of all views' materialized-table footprints.
  size_t MemoryFootprint() const;

  // Delta-cache statistics: deltas of subexpressions shared between views
  // (same scan, same guarded selection) are computed once per tick. Hits
  // indicate sharing actually occurred (bench E9).
  uint64_t delta_cache_hits() const { return cache_.hits(); }
  uint64_t delta_cache_misses() const { return cache_.misses(); }

  // Per-view maintenance latency profiling (delta computation + fold).
  // Off by default: the timestamping costs two clock reads per view per
  // tick.
  void set_profiling(bool enabled) { profiling_ = enabled; }
  bool profiling() const { return profiling_; }
  // The latency histogram of one view (empty until profiling is enabled
  // and appends flow).
  Result<const LatencyHistogram*> GetViewLatency(const std::string& name) const;

  // Attaches the observability sinks (owned by the database facade; both
  // may be null to detach). Registers this manager's metric catalog into
  // `metrics` — call once, after construction and before appends flow.
  // With metrics attached, ProcessAppend additionally samples per-view
  // ViewStats, fills MaintenanceReport::views / ::batches, and emits
  // routing / worker / merge spans into `trace`.
  void set_observability(obs::MetricsRegistry* metrics, obs::TraceRing* trace);
  bool observability_enabled() const { return metrics_ != nullptr; }

  // Accumulated statistics of one view (zeroed until observability is
  // attached and appends flow).
  Result<const obs::ViewStats*> GetViewStats(const std::string& name) const;
  // Appends one ViewStatsSnapshot per live view, in registration order.
  void SnapshotViewStats(std::vector<obs::ViewStatsSnapshot>* out) const;

  // Per-slot plan profiling behind EXPLAIN: every `sample_period`-th tick
  // of each compiled view runs with per-instruction clocks, folded into a
  // per-view SlotProfile accumulator. Independent of set_profiling (that
  // one times whole views; this times slots inside one view's plan).
  void set_plan_profiling(bool enabled, size_t sample_period);
  bool plan_profiling() const { return plan_profiling_; }

  // EXPLAIN for one view: the compiled plan tree annotated with the
  // sampled per-slot time shares and row counts (structure only until
  // samples exist). An interpreted-only view yields a one-line note (text)
  // / {"compiled":false} (JSON).
  Result<std::string> ExplainView(const std::string& name) const;
  Result<std::string> ExplainViewJson(const std::string& name) const;
  // The raw accumulator (empty until a profiled tick ran); exposed for the
  // database's flight recorder and tests.
  Result<const std::vector<exec::SlotProfile>*> GetViewSlotProfile(
      const std::string& name) const;

 private:
  // One equality conjunct `column = literal` of a guard.
  struct EqConstraint {
    size_t column;
    Value literal;
  };
  // The guard of one base-chronicle scan inside a view's plan.
  struct ScanGuard {
    ChronicleId chronicle;
    // Conjunction of the Select predicates sitting directly above the scan
    // (owned clones, bound to the chronicle payload schema). Empty means
    // the scan is unguarded: any insert can produce delta rows.
    std::vector<ScalarExprPtr> predicates;
    std::vector<EqConstraint> eq_constraints;
  };
  struct ViewEntry {
    std::unique_ptr<PersistentView> view;
    // Compiled at AddView (never on the append path); null only if the
    // plan is outside CA, in which case the interpreter path — which
    // rejects it with the same diagnostic — serves the view.
    exec::DeltaPlanPtr compiled;
    std::vector<ScanGuard> guards;      // one per scan in the plan
    std::set<ChronicleId> chronicles;   // base chronicles the view reads
    bool eq_indexed = false;            // participates in the eq index
    LatencyHistogram latency;           // populated when profiling is on
    // Accumulated maintenance statistics (observability). Single-writer:
    // contiguous batch partitioning gives each view to exactly one worker
    // per tick, and ThreadPool::Wait orders ticks.
    obs::ViewStats stats;
    // EXPLAIN profile: per-slot self-time/rows folded from sampled ticks.
    // Same single-writer discipline as `stats`.
    std::vector<exec::SlotProfile> slot_profile;
    uint64_t profile_clock = 0;  // ticks seen while plan profiling was on
  };

  // Extracts scan guards from a plan.
  static void CollectGuards(const CaExpr& expr,
                            std::vector<const ScalarExpr*>* pending,
                            std::vector<ScanGuard>* out);
  // Pulls `col = literal` conjuncts out of a guard predicate.
  static void CollectEqConstraints(const ScalarExpr& pred,
                                   std::vector<EqConstraint>* out);

  // True if the event can possibly produce delta rows for the view.
  Result<bool> GuardsPass(const ViewEntry& entry, const AppendEvent& event) const;

  // Computes and folds one view's delta for the tick, accumulating into
  // `report`. `cache` is the per-tick delta memo the call may share with
  // other views (serial path: all views; parallel path: one per worker) —
  // interpreter mode only. `scratch` is the reused-across-ticks compiled
  // execution state (serial path: the manager's; parallel path: one per
  // worker) — compiled mode only. `worker` is the fan-out task index (0 on
  // the serial path), used to pick the metric shard.
  Status MaintainOne(ViewId id, const AppendEvent& event, DeltaCache* cache,
                     exec::PlanScratch* scratch, size_t worker,
                     MaintenanceReport* report);

  // Runs MaintainOne over `work` on the pool, one contiguous batch per
  // worker, and merges the per-batch reports into `report`.
  Status MaintainParallel(const std::vector<ViewId>& work,
                          const AppendEvent& event, MaintenanceReport* report);

  // Observability sinks (null = detached, zero overhead) plus the metric
  // ids resolved at attach time — the append path never hashes a name.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  obs::MetricId m_view_ticks_ = 0;      // counter: deltas computed
  obs::MetricId m_view_delta_rows_ = 0; // counter: rows folded into views
  obs::MetricId m_parallel_ticks_ = 0;  // counter: ticks that fanned out
  obs::MetricId m_tick_ns_ = 0;         // histogram: whole-tick latency
  obs::MetricId m_routing_ns_ = 0;      // histogram: candidate+guard phase
  obs::MetricId m_batch_views_ = 0;     // histogram: views per worker batch
  obs::MetricId m_worker_ns_ = 0;       // histogram: per-batch latency
  obs::MetricId m_backfill_events_ = 0; // counter: events replayed
  obs::MetricId m_backfill_rows_ = 0;   // counter: chronicle rows replayed

  RoutingMode mode_;
  bool profiling_ = false;
  bool plan_profiling_ = false;     // per-slot EXPLAIN sampling
  size_t plan_sample_period_ = 16;  // profile every Nth tick per view
  size_t live_views_ = 0;
  DeltaEngine engine_;
  DeltaCache cache_;  // reset at the start of every ProcessAppend
  // Compiled-execution scratch, reused across ticks (clear, don't free).
  // scratch_ serves the serial path; worker_scratch_[t] is owned by task t
  // of the parallel fan-out — no shared mutable state between workers.
  exec::PlanScratch scratch_;
  std::vector<std::unique_ptr<exec::PlanScratch>> worker_scratch_;
  MaintenanceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // non-null iff options_.num_threads > 1
  std::vector<ViewEntry> views_;
  std::unordered_map<std::string, ViewId> by_name_;
  // chronicle -> views that depend on it and are NOT eq-indexed.
  std::unordered_map<ChronicleId, std::vector<ViewId>> residual_by_chronicle_;
  // (chronicle, column) -> literal -> views guarded by `column = literal`.
  std::unordered_map<ChronicleId,
                     std::unordered_map<size_t,
                                        std::unordered_map<Value, std::vector<ViewId>,
                                                           ValueHash>>>
      eq_index_;
};

}  // namespace chronicle

#endif  // CHRONICLE_VIEWS_VIEW_MANAGER_H_
