// PersistentView: a materialized SCA view, "elevated to a first class
// citizen" of the database (paper §1), maintained incrementally per
// Theorem 4.4: Space = |V|, Time = O(t · log|V|) per tick of t delta
// tuples with an ordered index, expected O(t) with the hash index.
//
// A view is (plan χ in CA, summarization step, optional computed columns).
// The view never stores χ's chronicle result — only the summarized groups.
// Computed columns ("finalizers", e.g. premier status derived from a miles
// total with a CASE expression) are scalar expressions over the summarized
// output row, evaluated at query time so they never complicate maintenance.

#ifndef CHRONICLE_VIEWS_PERSISTENT_VIEW_H_
#define CHRONICLE_VIEWS_PERSISTENT_VIEW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/ca_expr.h"
#include "algebra/complexity.h"
#include "algebra/scalar_expr.h"
#include "common/status.h"
#include "storage/keyed_table.h"
#include "views/summary_spec.h"

namespace chronicle {

// Identifies a persistent view within a database.
using ViewId = uint32_t;

// A named computed column appended to every queried view row.
struct ComputedColumn {
  std::string name;
  ScalarExprPtr expr;  // bound against the summarized output schema
};

class PersistentView {
 public:
  // Creates a view over `plan` (must already pass ValidateChronicleAlgebra)
  // with the given summarization. Computed columns are bound here.
  static Result<std::unique_ptr<PersistentView>> Make(
      ViewId id, std::string name, CaExprPtr plan, SummarySpec spec,
      std::vector<ComputedColumn> computed = {},
      IndexMode index_mode = IndexMode::kHash);

  ViewId id() const { return id_; }
  const std::string& name() const { return name_; }
  const CaExprPtr& plan() const { return plan_; }
  const SummarySpec& spec() const { return spec_; }
  // Complexity classification of the defining expression (§3 / Theorem 4.5).
  const ComplexityReport& complexity() const { return complexity_; }
  // Schema of queried rows: summarized columns then computed columns.
  const Schema& output_schema() const { return query_schema_; }
  IndexMode index_mode() const { return index_mode_; }

  // Number of groups / distinct rows currently materialized (|V|).
  size_t size() const { return table_.size(); }

  // Folds one tick's delta (all rows share one SN) into the view.
  Status ApplyDelta(const std::vector<ChronicleRow>& delta);

  // Point lookup of the finalized row for `key` (the grouping columns, in
  // spec order). NotFound if the group does not exist (yet).
  Result<Tuple> Lookup(const Tuple& key) const;

  // Full scan of finalized rows. Ordered index mode scans in key order.
  Status Scan(const std::function<void(const Tuple&)>& fn) const;

  // Maintenance counters.
  uint64_t ticks_applied() const { return ticks_applied_; }
  uint64_t delta_rows_applied() const { return delta_rows_applied_; }

  // Approximate bytes held by the materialized table (the Thm 4.4 space).
  size_t MemoryFootprint() const;

  // --- checkpoint hooks (src/checkpoint) ---
  // The chronicle is not stored, so view state cannot be rebuilt by replay;
  // checkpointing serializes the raw group states through these hooks.

  // Visits every group's raw state: (key, aggregate states, multiplicity).
  void VisitGroups(
      const std::function<void(const Tuple&, const std::vector<AggState>&,
                               int64_t)>& fn) const;
  // Reinstates one group. Only legal while the view is empty of that key;
  // the counters (ticks/rows applied) are restored separately.
  Status RestoreGroup(Tuple key, std::vector<AggState> states,
                      int64_t multiplicity);
  // Reinstates the maintenance counters.
  void RestoreCounters(uint64_t ticks_applied, uint64_t delta_rows_applied) {
    ticks_applied_ = ticks_applied;
    delta_rows_applied_ = delta_rows_applied;
  }
  // Finalizes externally merged raw states into the row Scan would emit
  // had the group lived in this view (key + aggregates + computed). Used
  // by the sharded merge layer to finalize without materializing here.
  Result<Tuple> FinalizeGroupStates(const Tuple& key,
                                    const std::vector<AggState>& states) const;

 private:
  struct Group {
    std::vector<AggState> states;  // kGroupBy
    int64_t multiplicity = 0;      // kDistinctProjection
  };

  PersistentView(ViewId id, std::string name, CaExprPtr plan, SummarySpec spec,
                 IndexMode index_mode);

  // Builds the finalized row (key + aggregates + computed) for one group.
  Result<Tuple> FinalizeRow(const Tuple& key, const Group& group) const;

  ViewId id_;
  std::string name_;
  CaExprPtr plan_;
  SummarySpec spec_;
  ComplexityReport complexity_;
  std::vector<ComputedColumn> computed_;
  Schema query_schema_;
  IndexMode index_mode_;
  KeyedTable<Group> table_;

  uint64_t ticks_applied_ = 0;
  uint64_t delta_rows_applied_ = 0;
};

}  // namespace chronicle

#endif  // CHRONICLE_VIEWS_PERSISTENT_VIEW_H_
