#include "views/persistent_view.h"

#include "algebra/validate.h"

namespace chronicle {

PersistentView::PersistentView(ViewId id, std::string name, CaExprPtr plan,
                               SummarySpec spec, IndexMode index_mode)
    : id_(id),
      name_(std::move(name)),
      plan_(std::move(plan)),
      spec_(std::move(spec)),
      index_mode_(index_mode),
      table_(index_mode) {}

Result<std::unique_ptr<PersistentView>> PersistentView::Make(
    ViewId id, std::string name, CaExprPtr plan, SummarySpec spec,
    std::vector<ComputedColumn> computed, IndexMode index_mode) {
  if (plan == nullptr) {
    return Status::InvalidArgument("persistent view requires a plan");
  }
  CHRONICLE_RETURN_NOT_OK(ValidateChronicleAlgebra(*plan));
  auto view = std::unique_ptr<PersistentView>(new PersistentView(
      id, std::move(name), std::move(plan), std::move(spec), index_mode));
  view->complexity_ = AnalyzeComplexity(*view->plan_);

  // The query schema appends computed columns to the summarized schema.
  std::vector<Field> fields = view->spec_.output_schema().fields();
  view->computed_ = std::move(computed);
  for (ComputedColumn& cc : view->computed_) {
    if (cc.expr == nullptr) {
      return Status::InvalidArgument("computed column '" + cc.name +
                                     "' has no expression");
    }
    CHRONICLE_RETURN_NOT_OK(cc.expr->Bind(view->spec_.output_schema()));
    // Computed expressions are dynamically typed; surface them as DOUBLE
    // when arithmetic, else INT64. Without full type inference we default
    // to INT64 and document that Lookup returns the runtime type.
    fields.push_back(Field{cc.name, DataType::kInt64});
  }
  CHRONICLE_ASSIGN_OR_RETURN(view->query_schema_, Schema::Make(std::move(fields)));
  return view;
}

Status PersistentView::ApplyDelta(const std::vector<ChronicleRow>& delta) {
  ++ticks_applied_;
  delta_rows_applied_ += delta.size();
  for (const ChronicleRow& row : delta) {
    Tuple key = spec_.KeyOf(row.values);
    Group* group = table_.Find(key);
    if (group == nullptr) {
      group = &table_.GetOrCreate(std::move(key));
      if (spec_.kind() == SummarySpec::Kind::kGroupBy) {
        group->states.reserve(spec_.aggregates().size());
        for (const AggSpec& agg : spec_.aggregates()) {
          group->states.push_back(agg.Init());
        }
      }
    }
    if (spec_.kind() == SummarySpec::Kind::kGroupBy) {
      for (size_t i = 0; i < spec_.aggregates().size(); ++i) {
        spec_.aggregates()[i].Update(&group->states[i], row.values);
      }
    } else {
      ++group->multiplicity;
    }
  }
  return Status::OK();
}

Result<Tuple> PersistentView::FinalizeRow(const Tuple& key,
                                          const Group& group) const {
  return FinalizeGroupStates(key, group.states);
}

Result<Tuple> PersistentView::FinalizeGroupStates(
    const Tuple& key, const std::vector<AggState>& states) const {
  if (spec_.kind() == SummarySpec::Kind::kGroupBy &&
      states.size() != spec_.aggregates().size()) {
    return Status::InvalidArgument(
        "group has " + std::to_string(states.size()) +
        " aggregate states, view '" + name_ + "' expects " +
        std::to_string(spec_.aggregates().size()));
  }
  Tuple row = key;
  if (spec_.kind() == SummarySpec::Kind::kGroupBy) {
    for (size_t i = 0; i < spec_.aggregates().size(); ++i) {
      row.push_back(spec_.aggregates()[i].Finalize(states[i]));
    }
  }
  for (const ComputedColumn& cc : computed_) {
    EvalRow eval{&row, 0, 0};
    CHRONICLE_ASSIGN_OR_RETURN(Value v, cc.expr->Eval(eval));
    row.push_back(std::move(v));
  }
  return row;
}

Result<Tuple> PersistentView::Lookup(const Tuple& key) const {
  const Group* group = table_.Find(key);
  if (group == nullptr) {
    return Status::NotFound("view '" + name_ + "' has no group " +
                            TupleToString(key));
  }
  return FinalizeRow(key, *group);
}

Status PersistentView::Scan(const std::function<void(const Tuple&)>& fn) const {
  Status status;  // first error encountered during the scan
  table_.ForEach([&](const Tuple& key, const Group& group) {
    if (!status.ok()) return;
    Result<Tuple> row = FinalizeRow(key, group);
    if (!row.ok()) {
      status = row.status();
      return;
    }
    fn(*row);
  });
  return status;
}

void PersistentView::VisitGroups(
    const std::function<void(const Tuple&, const std::vector<AggState>&,
                             int64_t)>& fn) const {
  table_.ForEach([&](const Tuple& key, const Group& group) {
    fn(key, group.states, group.multiplicity);
  });
}

Status PersistentView::RestoreGroup(Tuple key, std::vector<AggState> states,
                                    int64_t multiplicity) {
  if (table_.Find(key) != nullptr) {
    return Status::AlreadyExists("group " + TupleToString(key) +
                                 " already present in view '" + name_ + "'");
  }
  if (spec_.kind() == SummarySpec::Kind::kGroupBy &&
      states.size() != spec_.aggregates().size()) {
    return Status::InvalidArgument(
        "checkpointed group has " + std::to_string(states.size()) +
        " aggregate states, view '" + name_ + "' expects " +
        std::to_string(spec_.aggregates().size()));
  }
  Group& group = table_.GetOrCreate(std::move(key));
  group.states = std::move(states);
  group.multiplicity = multiplicity;
  return Status::OK();
}

size_t PersistentView::MemoryFootprint() const {
  // Approximation: per group, the key values plus aggregate states.
  size_t per_group = sizeof(Tuple) + spec_.key_columns().size() * sizeof(Value) +
                     spec_.aggregates().size() * sizeof(AggState) + 48;
  return table_.size() * per_group;
}

}  // namespace chronicle
