#include "views/view_manager.h"

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "exec/plan_compiler.h"
#include "obs/export.h"

namespace chronicle {

ViewManager::ViewManager(RoutingMode mode) : mode_(mode) {}

void ViewManager::CollectGuards(const CaExpr& expr,
                                std::vector<const ScalarExpr*>* pending,
                                std::vector<ScanGuard>* out) {
  if (expr.op() == CaOp::kScan) {
    ScanGuard guard;
    guard.chronicle = expr.chronicle_id();
    for (const ScalarExpr* pred : *pending) {
      guard.predicates.push_back(pred->Clone());
      CollectEqConstraints(*pred, &guard.eq_constraints);
    }
    out->push_back(std::move(guard));
    return;
  }
  if (expr.op() == CaOp::kSelect) {
    // A select directly above a scan (possibly stacked) guards it; for any
    // other child shape the predicate refers to derived columns and is not
    // usable as an early filter.
    pending->push_back(expr.predicate());
    CollectGuards(*expr.child(0), pending, out);
    pending->pop_back();
    return;
  }
  // Any other operator breaks the select-over-scan chain.
  std::vector<const ScalarExpr*> empty;
  for (size_t i = 0; i < expr.num_children(); ++i) {
    CollectGuards(*expr.child(i), &empty, out);
  }
}

void ViewManager::CollectEqConstraints(const ScalarExpr& pred,
                                       std::vector<EqConstraint>* out) {
  if (pred.kind() == ExprKind::kAnd) {
    CollectEqConstraints(pred.child(0), out);
    CollectEqConstraints(pred.child(1), out);
    return;
  }
  if (pred.kind() != ExprKind::kCompare ||
      pred.compare_op() != CompareOp::kEq) {
    return;
  }
  const ScalarExpr& lhs = pred.child(0);
  const ScalarExpr& rhs = pred.child(1);
  if (lhs.kind() == ExprKind::kColumn && rhs.kind() == ExprKind::kLiteral) {
    out->push_back(EqConstraint{lhs.bound_index(), rhs.literal()});
  } else if (rhs.kind() == ExprKind::kColumn &&
             lhs.kind() == ExprKind::kLiteral) {
    out->push_back(EqConstraint{rhs.bound_index(), lhs.literal()});
  }
}

Result<ViewId> ViewManager::AddView(std::unique_ptr<PersistentView> view) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  if (by_name_.count(view->name()) != 0) {
    return Status::AlreadyExists("view '" + view->name() + "' already exists");
  }
  ViewId id = static_cast<ViewId>(views_.size());

  ViewEntry entry;
  entry.view = std::move(view);
  entry.view->plan()->CollectBaseChronicles(&entry.chronicles);
  std::vector<const ScalarExpr*> pending;
  CollectGuards(*entry.view->plan(), &pending, &entry.guards);

  // Lower the plan once, here — never on the append path. A non-CA plan
  // (rejected by the compiler exactly as the interpreter would per tick)
  // simply stays interpreted, preserving the legacy error surface.
  Result<exec::DeltaPlanPtr> compiled =
      exec::CompileDeltaPlan(entry.view->plan());
  if (compiled.ok()) {
    entry.compiled = std::move(compiled).value();
    entry.stats.plan_slots = static_cast<uint32_t>(entry.compiled->num_slots());
  }

  // Eligible for the eq index iff the view reads exactly one chronicle
  // through exactly one scan, and that scan's guard has an eq conjunct:
  // then `no eq match` alone proves the delta empty.
  if (entry.chronicles.size() == 1 && entry.guards.size() == 1 &&
      !entry.guards[0].eq_constraints.empty()) {
    entry.eq_indexed = true;
    const ScanGuard& guard = entry.guards[0];
    const EqConstraint& eq = guard.eq_constraints.front();
    eq_index_[guard.chronicle][eq.column][eq.literal].push_back(id);
  } else {
    for (ChronicleId c : entry.chronicles) {
      residual_by_chronicle_[c].push_back(id);
    }
  }

  by_name_[entry.view->name()] = id;
  views_.push_back(std::move(entry));
  ++live_views_;
  return id;
}

Status ViewManager::DropView(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  const ViewId id = it->second;
  ViewEntry& entry = views_[id];
  // Unhook from routing structures.
  for (auto& [chronicle, ids] : residual_by_chronicle_) {
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  }
  for (auto& [chronicle, by_column] : eq_index_) {
    for (auto& [column, by_literal] : by_column) {
      for (auto& [literal, ids] : by_literal) {
        ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      }
    }
  }
  by_name_.erase(it);
  entry.view.reset();  // tombstone; ids of other views stay stable
  entry.compiled.reset();
  entry.guards.clear();
  entry.chronicles.clear();
  --live_views_;
  return Status::OK();
}

Result<PersistentView*> ViewManager::GetView(ViewId id) {
  if (id >= views_.size() || views_[id].view == nullptr) {
    return Status::NotFound("no view with id " + std::to_string(id));
  }
  return views_[id].view.get();
}

Result<const PersistentView*> ViewManager::GetView(ViewId id) const {
  if (id >= views_.size() || views_[id].view == nullptr) {
    return Status::NotFound("no view with id " + std::to_string(id));
  }
  return static_cast<const PersistentView*>(views_[id].view.get());
}

Result<PersistentView*> ViewManager::FindView(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return views_[it->second].view.get();
}

Result<const PersistentView*> ViewManager::FindView(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return static_cast<const PersistentView*>(views_[it->second].view.get());
}

Result<bool> ViewManager::GuardsPass(const ViewEntry& entry,
                                     const AppendEvent& event) const {
  // The view must be processed iff some inserted chronicle it depends on
  // can produce scan-delta rows.
  for (const auto& [chronicle, tuples] : event.inserts) {
    if (entry.chronicles.count(chronicle) == 0) continue;
    for (const ScanGuard& guard : entry.guards) {
      if (guard.chronicle != chronicle) continue;
      if (guard.predicates.empty()) return true;  // unguarded scan
      for (const Tuple& t : tuples) {
        bool all = true;
        for (const ScalarExprPtr& pred : guard.predicates) {
          EvalRow row{&t, event.sn, event.chronon};
          CHRONICLE_ASSIGN_OR_RETURN(bool pass, pred->EvalBool(row));
          if (!pass) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
    }
  }
  return false;
}

Result<MaintenanceReport> ViewManager::ProcessAppend(const AppendEvent& event) {
  MaintenanceReport report;
  cache_.Clear();  // node deltas memoized below are valid for this tick only

  // Observability: with metrics detached, this tick takes zero clock reads
  // beyond the seed's. With tracing on, all timestamps come from the
  // ring's timebase so spans and histogram samples agree.
  const bool obs_on = metrics_ != nullptr;
  const bool tracing = trace_ != nullptr && trace_->enabled();
  auto now_ns = [&]() -> int64_t {
    if (tracing) return trace_->NowNanos();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  const int64_t tick_start = obs_on || tracing ? now_ns() : 0;

  // 1. Candidate selection.
  std::vector<ViewId> candidates;
  if (mode_ == RoutingMode::kCheckAll) {
    candidates.reserve(views_.size());
    for (ViewId id = 0; id < views_.size(); ++id) candidates.push_back(id);
  } else {
    std::unordered_set<ViewId> seen;
    auto add = [&](ViewId id) {
      if (seen.insert(id).second) candidates.push_back(id);
    };
    for (const auto& [chronicle, tuples] : event.inserts) {
      auto res_it = residual_by_chronicle_.find(chronicle);
      if (res_it != residual_by_chronicle_.end()) {
        for (ViewId id : res_it->second) add(id);
      }
      if (mode_ == RoutingMode::kEqIndex) {
        auto eq_it = eq_index_.find(chronicle);
        if (eq_it == eq_index_.end()) continue;
        for (const auto& [column, by_literal] : eq_it->second) {
          for (const Tuple& t : tuples) {
            auto hit = by_literal.find(t[column]);
            if (hit == by_literal.end()) continue;
            for (ViewId id : hit->second) add(id);
          }
        }
      } else {
        // kGuards: eq-indexed views are not probed; fall back to testing
        // their guards like any other view.
        auto eq_it = eq_index_.find(chronicle);
        if (eq_it == eq_index_.end()) continue;
        for (const auto& [column, by_literal] : eq_it->second) {
          for (const auto& [literal, ids] : by_literal) {
            for (ViewId id : ids) add(id);
          }
        }
      }
    }
    report.views_skipped = views_.size() - candidates.size();
  }

  // 2. Guard filtering (cheap predicate probes, kept serial) producing the
  // final work list of views whose delta must actually be computed.
  std::vector<ViewId> work;
  work.reserve(candidates.size());
  for (ViewId id : candidates) {
    ViewEntry& entry = views_[id];
    if (entry.view == nullptr) continue;  // dropped (kCheckAll tombstones)
    if (mode_ != RoutingMode::kCheckAll) {
      CHRONICLE_ASSIGN_OR_RETURN(bool pass, GuardsPass(entry, event));
      if (!pass) {
        ++report.views_skipped;
        continue;
      }
    }
    work.push_back(id);
  }
  report.views_considered = work.size();

  const int64_t routing_end = obs_on || tracing ? now_ns() : 0;
  if (obs_on) metrics_->Observe(m_routing_ns_, routing_end - tick_start);
  if (tracing) {
    trace_->Emit(obs::SpanKind::kRouting, 0, event.sn, tick_start,
                 routing_end - tick_start, candidates.size(), work.size());
  }

  // 3. Delta maintenance: each view in `work` is independent (Thm 4.2), so
  // the fold can fan out across the pool once the list is long enough to
  // amortize dispatch.
  const bool parallel =
      pool_ != nullptr && work.size() >= 2 * options_.min_views_per_task;
  if (!parallel) {
    // Serial path: one shared cache (interpreter) / one scratch (compiled).
    for (ViewId id : work) {
      CHRONICLE_RETURN_NOT_OK(MaintainOne(id, event, &cache_, &scratch_, 0,
                                          &report));
    }
    if (obs_on) {
      const int64_t tick_end = now_ns();
      report.tick_ns = tick_end - tick_start;
      // The serial path is one batch maintained by worker 0.
      report.batches.push_back(
          MaintenanceBatch{0, work.size(), tick_end - routing_end});
      metrics_->Observe(m_batch_views_,
                        static_cast<int64_t>(work.size()));
      metrics_->Observe(m_worker_ns_, tick_end - routing_end);
      metrics_->Observe(m_tick_ns_, tick_end - tick_start);
      if (tracing) {
        trace_->Emit(obs::SpanKind::kAppendTick, 0, event.sn, tick_start,
                     tick_end - tick_start, work.size(),
                     report.delta_rows_applied);
      }
    }
    return report;
  }
  if (obs_on) metrics_->Count(m_parallel_ticks_, 1);
  CHRONICLE_RETURN_NOT_OK(MaintainParallel(work, event, &report));
  if (obs_on) {
    const int64_t tick_end = now_ns();
    report.tick_ns = tick_end - tick_start;
    metrics_->Observe(m_tick_ns_, tick_end - tick_start);
    if (tracing) {
      trace_->Emit(obs::SpanKind::kAppendTick, 0, event.sn, tick_start,
                   tick_end - tick_start, work.size(),
                   report.delta_rows_applied);
    }
  }
  return report;
}

Status ViewManager::BackfillView(ViewId id, const AppendEvent& event,
                                 MaintenanceReport* report) {
  if (id >= views_.size() || views_[id].view == nullptr) {
    return Status::NotFound("no view with id " + std::to_string(id));
  }
  cache_.Clear();  // node deltas memoized below are valid for this event only
  CHRONICLE_RETURN_NOT_OK(
      MaintainOne(id, event, &cache_, &scratch_, 0, report));
  if (metrics_ != nullptr) {
    size_t rows = 0;
    for (const auto& [chron, tuples] : event.inserts) {
      (void)chron;
      rows += tuples.size();
    }
    metrics_->Count(m_backfill_events_, 1);
    metrics_->Count(m_backfill_rows_, rows);
  }
  return Status::OK();
}

Result<const std::set<ChronicleId>*> ViewManager::ViewChronicles(
    ViewId id) const {
  if (id >= views_.size() || views_[id].view == nullptr) {
    return Status::NotFound("no view with id " + std::to_string(id));
  }
  return &views_[id].chronicles;
}

Status ViewManager::MaintainOne(ViewId id, const AppendEvent& event,
                                DeltaCache* cache, exec::PlanScratch* scratch,
                                size_t worker, MaintenanceReport* report) {
  ViewEntry& entry = views_[id];
  Stopwatch watch;
  // With metrics attached, the engines fill a DeltaStats (the same hook the
  // benches use) and the per-view ViewStats absorbs it below. entry.stats
  // is single-writer: this view belongs to exactly `worker` this tick.
  const bool obs_on = metrics_ != nullptr;
  DeltaStats delta_stats;
  DeltaStats* stats = obs_on ? &delta_stats : nullptr;
  const bool compiled_path =
      options_.use_compiled_plans && entry.compiled != nullptr;
  // EXPLAIN sampling: every plan_sample_period_-th tick of this view runs
  // with per-instruction clocks. profile_clock is single-writer, same
  // discipline as entry.stats.
  const bool profile_tick =
      plan_profiling_ && compiled_path &&
      entry.profile_clock++ % plan_sample_period_ == 0;
  size_t rows = 0;
  if (compiled_path) {
    scratch->set_profile_slots(profile_tick);
    // Compiled fast path: delta lands in the scratch's retained row buffer
    // — no per-view allocation at steady state.
    CHRONICLE_ASSIGN_OR_RETURN(
        const std::vector<ChronicleRow>* delta,
        entry.compiled->ExecuteToRows(event, scratch, stats));
    rows = delta->size();
    if (profile_tick) {
      // Fold the sampled per-slot timings into the view's accumulator
      // (single-writer, like entry.stats) and disarm the scratch.
      std::vector<exec::SlotProfile>& prof = entry.slot_profile;
      if (prof.size() != entry.compiled->num_slots()) {
        prof.assign(entry.compiled->num_slots(), exec::SlotProfile{});
      }
      const std::vector<uint64_t>& ns = scratch->slot_ns();
      const std::vector<uint64_t>& slot_rows = scratch->slot_rows();
      const std::vector<uint8_t>& slot_vec = scratch->slot_vec();
      for (size_t i = 0; i < prof.size(); ++i) {
        prof[i].ns += ns[i];
        prof[i].rows += slot_rows[i];
        ++prof[i].samples;
        prof[i].vec_samples += slot_vec[i];
      }
      scratch->set_profile_slots(false);
    }
    if (!delta->empty()) {
      CHRONICLE_RETURN_NOT_OK(entry.view->ApplyDelta(*delta));
      ++report->views_updated;
      report->delta_rows_applied += delta->size();
    }
  } else {
    CHRONICLE_ASSIGN_OR_RETURN(
        std::vector<ChronicleRow> delta,
        engine_.ComputeDelta(*entry.view->plan(), event, stats, cache));
    rows = delta.size();
    if (!delta.empty()) {
      CHRONICLE_RETURN_NOT_OK(entry.view->ApplyDelta(delta));
      ++report->views_updated;
      report->delta_rows_applied += delta.size();
    }
  }
  if (obs_on) {
    obs::ViewStats& s = entry.stats;
    ++s.ticks;
    if (rows > 0) ++s.updates;
    s.delta_rows += rows;
    s.relation_lookups += delta_stats.relation_lookups;
    if (delta_stats.max_intermediate_rows > s.max_intermediate_rows) {
      s.max_intermediate_rows = delta_stats.max_intermediate_rows;
    }
    if (compiled_path) {
      ++s.compiled_ticks;
      if (scratch->arena_bytes_allocated() > s.arena_hwm_bytes) {
        s.arena_hwm_bytes = scratch->arena_bytes_allocated();
      }
      const double load = scratch->dedupe_load_factor();
      if (load > s.max_dedupe_load) s.max_dedupe_load = load;
    } else {
      ++s.interpreted_ticks;
    }
    metrics_->Count(m_view_ticks_, 1, worker);
    metrics_->Count(m_view_delta_rows_, rows, worker);
    report->views.push_back(MaintenanceViewOutcome{id, rows, compiled_path});
  }
  if (profiling_) entry.latency.Record(watch.ElapsedNanos());
  return Status::OK();
}

Status ViewManager::MaintainParallel(const std::vector<ViewId>& work,
                                     const AppendEvent& event,
                                     MaintenanceReport* report) {
  // Contiguous partition by registration order: deterministic, and each
  // view (and its latency histogram) is touched by exactly one worker.
  const size_t per_task = std::max<size_t>(1, options_.min_views_per_task);
  const size_t num_tasks =
      std::min(pool_->num_threads(), std::max<size_t>(1, work.size() / per_task));
  const bool obs_on = metrics_ != nullptr;
  const bool tracing = trace_ != nullptr && trace_->enabled();
  struct TaskState {
    Status status;
    MaintenanceReport partial;
    // Private per-worker memo: DAG sharing still happens within a batch,
    // without cross-thread writes to a shared cache.
    DeltaCache cache;
    size_t batch_views = 0;  // batch size, fixed at dispatch
    int64_t nanos = 0;       // batch wall time, measured by the worker
  };
  std::vector<TaskState> tasks(num_tasks);
  // Per-task compiled-execution scratch, created once and retained across
  // ticks (the whole point is that its buffers warm up). Task t always
  // uses worker_scratch_[t], so no two live closures ever share one.
  while (worker_scratch_.size() < num_tasks) {
    worker_scratch_.push_back(std::make_unique<exec::PlanScratch>());
    worker_scratch_.back()->set_columnar_enabled(
        options_.use_columnar_kernels);
  }
  const size_t base = work.size() / num_tasks;
  const size_t extra = work.size() % num_tasks;
  size_t begin = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    const size_t end = begin + base + (t < extra ? 1 : 0);
    TaskState* state = &tasks[t];
    state->batch_views = end - begin;
    exec::PlanScratch* scratch = worker_scratch_[t].get();
    pool_->Submit(
        [this, &work, &event, state, scratch, t, begin, end, obs_on, tracing] {
          const int64_t start = tracing ? trace_->NowNanos() : 0;
          Stopwatch watch;
          for (size_t i = begin; i < end; ++i) {
            state->status = MaintainOne(work[i], event, &state->cache, scratch,
                                        t, &state->partial);
            if (!state->status.ok()) break;
          }
          if (obs_on) state->nanos = watch.ElapsedNanos();
          if (tracing) {
            trace_->Emit(obs::SpanKind::kWorkerBatch,
                         static_cast<uint16_t>(t), event.sn, start,
                         trace_->NowNanos() - start, end - begin,
                         state->partial.delta_rows_applied);
          }
        });
    begin = end;
  }
  pool_->Wait();
  const int64_t merge_start = tracing ? trace_->NowNanos() : 0;
  // Merge in batch order so counters (and the error returned, if several
  // batches failed) never depend on worker scheduling. A batch entry is
  // emitted for EVERY task — including one that maintained zero views —
  // so batches[t] always describes worker t; dropping empty entries here
  // would shift every later worker's timing onto the wrong index.
  for (size_t t = 0; t < tasks.size(); ++t) {
    const TaskState& task = tasks[t];
    CHRONICLE_RETURN_NOT_OK(task.status);
    report->views_updated += task.partial.views_updated;
    report->delta_rows_applied += task.partial.delta_rows_applied;
    cache_.MergeCounters(task.cache);
    if (obs_on) {
      report->batches.push_back(
          MaintenanceBatch{t, task.batch_views, task.nanos});
      metrics_->Observe(m_batch_views_,
                        static_cast<int64_t>(task.batch_views), t);
      metrics_->Observe(m_worker_ns_, task.nanos, t);
      report->views.insert(report->views.end(), task.partial.views.begin(),
                           task.partial.views.end());
    }
  }
  if (tracing) {
    trace_->Emit(obs::SpanKind::kMerge, 0, event.sn, merge_start,
                 trace_->NowNanos() - merge_start, num_tasks, 0);
  }
  return Status::OK();
}

void ViewManager::set_maintenance_options(const MaintenanceOptions& options) {
  options_ = options;
  if (options_.num_threads <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != options_.num_threads) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  // Runtime engine toggle: retained scratches (and any already-created
  // worker scratches) flip in place; compiled plans are untouched.
  scratch_.set_columnar_enabled(options_.use_columnar_kernels);
  for (auto& ws : worker_scratch_) {
    ws->set_columnar_enabled(options_.use_columnar_kernels);
  }
}

void ViewManager::set_observability(obs::MetricsRegistry* metrics,
                                    obs::TraceRing* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ == nullptr) return;
  // Resolve the manager's metric catalog once; the append path only ever
  // indexes by these ids. Catalog documented in docs/OBSERVABILITY.md.
  // Named maintenance_* so the Prometheus rendering cannot collide with
  // the per-view chronicle_view_* label families (one HELP/TYPE block per
  // metric name).
  m_view_ticks_ = metrics_->AddCounter("maintenance_view_ticks_total",
                                       "Per-view delta computations");
  m_view_delta_rows_ = metrics_->AddCounter(
      "maintenance_delta_rows_total", "Delta rows folded into views");
  m_parallel_ticks_ = metrics_->AddCounter(
      "maintenance_parallel_ticks_total", "Ticks that used the parallel fan-out");
  m_tick_ns_ = metrics_->AddHistogram("maintenance_tick_ns",
                                      "Whole-tick maintenance latency");
  m_routing_ns_ = metrics_->AddHistogram(
      "maintenance_routing_ns", "Candidate selection and guard filter latency");
  m_batch_views_ = metrics_->AddHistogram("maintenance_batch_views",
                                          "Views maintained per fan-out batch");
  m_worker_ns_ = metrics_->AddHistogram("maintenance_worker_ns",
                                        "Per-batch delta work latency");
  m_backfill_events_ = metrics_->AddCounter(
      "backfill_events_total", "Historical events replayed into late views");
  m_backfill_rows_ = metrics_->AddCounter(
      "backfill_rows_total", "Chronicle rows replayed by view backfill");
}

Result<const obs::ViewStats*> ViewManager::GetViewStats(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &views_[it->second].stats;
}

void ViewManager::SnapshotViewStats(
    std::vector<obs::ViewStatsSnapshot>* out) const {
  for (const ViewEntry& entry : views_) {
    if (entry.view == nullptr) continue;
    obs::ViewStatsSnapshot snap;
    snap.name = entry.view->name();
    snap.stats = entry.stats;
    snap.profiled = profiling_ && entry.latency.count() > 0;
    if (snap.profiled) snap.latency = entry.latency;
    out->push_back(std::move(snap));
  }
}

void ViewManager::set_plan_profiling(bool enabled, size_t sample_period) {
  plan_profiling_ = enabled;
  plan_sample_period_ = sample_period == 0 ? 1 : sample_period;
}

Result<std::string> ViewManager::ExplainView(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  const ViewEntry& entry = views_[it->second];
  if (entry.compiled == nullptr) {
    return std::string("view '") + name +
           "': interpreted (plan outside CA, no compiled program)\n";
  }
  return "view '" + name + "'\n" + entry.compiled->Explain(&entry.slot_profile);
}

Result<std::string> ViewManager::ExplainViewJson(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  const ViewEntry& entry = views_[it->second];
  if (entry.compiled == nullptr) {
    return "{\"view\":\"" + obs::JsonEscape(name) + "\",\"compiled\":false}";
  }
  return entry.compiled->ExplainJson(name, &entry.slot_profile);
}

Result<const std::vector<exec::SlotProfile>*> ViewManager::GetViewSlotProfile(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &views_[it->second].slot_profile;
}

Result<const LatencyHistogram*> ViewManager::GetViewLatency(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &views_[it->second].latency;
}

size_t ViewManager::MemoryFootprint() const {
  size_t total = 0;
  for (const ViewEntry& entry : views_) {
    if (entry.view != nullptr) total += entry.view->MemoryFootprint();
  }
  return total;
}

}  // namespace chronicle
