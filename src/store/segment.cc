#include "store/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "checkpoint/serde.h"
#include "common/crc32.h"

namespace chronicle {
namespace store {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::DataLoss(what + " of '" + path +
                          "' failed: " + std::strerror(errno));
}

void EncodeHeader(const SegmentHeader& h, char out[kSegmentHeaderBytes]) {
  checkpoint::Writer w;
  w.Reserve(kSegmentHeaderBytes);
  w.WriteU32(kSegmentMagic);
  w.WriteU32(kSegmentVersion);
  w.WriteU32(h.chronicle_id);
  w.WriteU32(h.row_count);
  w.WriteU64(h.base_sn);
  w.WriteU64(h.last_sn);
  w.WriteU32(h.payload_bytes);
  w.WriteU32(h.payload_crc);
  std::memcpy(out, w.buffer().data(), kSegmentHeaderBytes);
}

}  // namespace

std::string SegmentFileName(SeqNum base_sn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "seg-%020llu%s",
                static_cast<unsigned long long>(base_sn), kSegmentSuffix);
  return buf;
}

SegmentEncoder::SegmentEncoder(uint32_t chronicle_id)
    : chronicle_id_(chronicle_id) {}

void SegmentEncoder::Add(const ChronicleRow& row) {
  if (rows_ == 0) {
    first_sn_ = row.sn;
    last_sn_ = row.sn;
  }
  checkpoint::Writer w;
  w.Reserve(16 + row.values.size() * 12);
  w.WriteVarint(row.sn - last_sn_);
  w.WriteTuple(row.values);
  payload_.append(w.buffer());
  last_sn_ = row.sn;
  ++rows_;
}

size_t SegmentEncoder::payload_bytes() const { return payload_.size(); }

std::string SegmentEncoder::Finish() {
  SegmentHeader h;
  h.chronicle_id = chronicle_id_;
  h.row_count = rows_;
  h.base_sn = first_sn_;
  h.last_sn = last_sn_;
  h.payload_bytes = static_cast<uint32_t>(payload_.size());
  // The CRC covers every header byte before the CRC field itself, then the
  // payload — so a flip anywhere in the file fails closed at Open.
  char header[kSegmentHeaderBytes];
  h.payload_crc = 0;
  EncodeHeader(h, header);
  uint32_t crc = Crc32c(header, kSegmentHeaderBytes - sizeof(uint32_t));
  crc = Crc32cExtend(crc, payload_.data(), payload_.size());
  h.payload_crc = crc;
  EncodeHeader(h, header);
  std::string image;
  image.reserve(kSegmentHeaderBytes + payload_.size());
  image.append(header, kSegmentHeaderBytes);
  image.append(payload_);
  payload_.clear();
  rows_ = 0;
  return image;
}

Status AtomicWriteSegment(const std::string& path, std::string_view data) {
  const std::string tmp = path + kSegmentTempSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = IoError("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = IoError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) return IoError("close", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = IoError("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  // Make the rename itself durable.
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

SegmentReader::~SegmentReader() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<char*>(mapped_), mapped_bytes_);
  }
}

std::string_view SegmentReader::payload() const {
  return std::string_view(mapped_ + kSegmentHeaderBytes,
                          header_.payload_bytes);
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = IoError("fstat", path);
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kSegmentHeaderBytes) {
    ::close(fd);
    return Status::DataLoss("segment " + path + " truncated: " +
                            std::to_string(size) + " bytes, header needs " +
                            std::to_string(kSegmentHeaderBytes));
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) return IoError("mmap", path);

  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->path_ = path;
  reader->mapped_ = static_cast<const char*>(map);
  reader->mapped_bytes_ = size;

  checkpoint::Reader h =
      checkpoint::Reader::Borrowed({reader->mapped_, kSegmentHeaderBytes});
  uint32_t magic = h.ReadU32().value();
  uint32_t version = h.ReadU32().value();
  SegmentHeader& header = reader->header_;
  header.chronicle_id = h.ReadU32().value();
  header.row_count = h.ReadU32().value();
  header.base_sn = h.ReadU64().value();
  header.last_sn = h.ReadU64().value();
  header.payload_bytes = h.ReadU32().value();
  header.payload_crc = h.ReadU32().value();
  if (magic != kSegmentMagic) {
    return Status::DataLoss("segment " + path + " has bad magic");
  }
  if (version != kSegmentVersion) {
    return Status::DataLoss("segment " + path + " has unsupported version " +
                            std::to_string(version));
  }
  if (kSegmentHeaderBytes + static_cast<uint64_t>(header.payload_bytes) !=
      size) {
    return Status::DataLoss(
        "segment " + path + " size mismatch: header claims " +
        std::to_string(header.payload_bytes) + " payload bytes, file has " +
        std::to_string(size - kSegmentHeaderBytes));
  }
  const std::string_view payload = reader->payload();
  uint32_t crc =
      Crc32c(reader->mapped_, kSegmentHeaderBytes - sizeof(uint32_t));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return Status::DataLoss("segment " + path + " CRC mismatch");
  }
  if (header.row_count == 0) {
    return Status::DataLoss("segment " + path + " has zero rows");
  }
  // One full decode pass: proves every row is readable and the header's
  // row count and SN range are consistent with the payload.
  Cursor cursor(reader.get());
  ChronicleRow row;
  uint32_t decoded = 0;
  SeqNum prev = header.base_sn;
  while (true) {
    CHRONICLE_ASSIGN_OR_RETURN(bool more, cursor.Next(&row));
    if (!more) break;
    if (row.sn < prev) {
      return Status::DataLoss("segment " + path + " has decreasing SNs");
    }
    prev = row.sn;
    ++decoded;
  }
  if (decoded != header.row_count || prev != header.last_sn) {
    return Status::DataLoss("segment " + path +
                            " payload disagrees with header");
  }
  return reader;
}

SegmentReader::Cursor::Cursor(const SegmentReader* reader)
    : reader_(reader), prev_sn_(reader->header_.base_sn) {}

Result<bool> SegmentReader::Cursor::Next(ChronicleRow* out) {
  if (row_ >= reader_->header_.row_count) return false;
  const std::string_view payload = reader_->payload();
  if (offset_ >= payload.size()) {
    return Status::DataLoss("segment " + reader_->path_ +
                            " payload ends before row " +
                            std::to_string(row_));
  }
  checkpoint::Reader r =
      checkpoint::Reader::Borrowed(payload.substr(offset_));
  CHRONICLE_ASSIGN_OR_RETURN(uint64_t delta, r.ReadVarint());
  CHRONICLE_ASSIGN_OR_RETURN(Tuple values, r.ReadTuple());
  out->sn = prev_sn_ + delta;
  out->values = std::move(values);
  prev_sn_ = out->sn;
  offset_ += r.position();
  ++row_;
  return true;
}

}  // namespace store
}  // namespace chronicle
