#include "store/tiered_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace chronicle {
namespace store {

namespace fs = std::filesystem;

uint64_t ApproxRowBytes(const ChronicleRow& row) {
  uint64_t bytes =
      sizeof(ChronicleRow) + row.values.capacity() * sizeof(Value);
  for (const Value& v : row.values) {
    if (v.is_string()) bytes += v.str().capacity();
  }
  return bytes;
}

TieredStore::TieredStore(StorageOptions options)
    : options_(std::move(options)) {
  if (options_.segment_rows == 0) options_.segment_rows = 1;
  if (options_.segment_bytes == 0) options_.segment_bytes = 1 << 20;
}

Result<std::unique_ptr<TieredStore>> TieredStore::Open(
    StorageOptions options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("tiered store needs a data_dir");
  }
  std::error_code ec;
  fs::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::DataLoss("cannot create store directory '" +
                            options.data_dir + "': " + ec.message());
  }
  return std::unique_ptr<TieredStore>(new TieredStore(std::move(options)));
}

Status TieredStore::AttachChronicle(ChronicleId id, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tiers_.count(id) != 0) {
    return Status::AlreadyExists("chronicle " + name +
                                 " already attached to the store");
  }
  ChronicleTier tier;
  tier.name = name;
  tier.dir = options_.data_dir + "/" + name;
  std::error_code ec;
  fs::create_directories(tier.dir, ec);
  if (ec) {
    return Status::DataLoss("cannot create segment directory '" + tier.dir +
                            "': " + ec.message());
  }

  // Adopt what survived the last run: delete stray temp files, validate
  // every segment, and keep the longest valid suffix (newest backwards) so
  // the warm window stays contiguous.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(tier.dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.size() > 4 &&
        fname.compare(fname.size() - 4, 4, kSegmentTempSuffix) == 0) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (fname.size() > 4 &&
        fname.compare(fname.size() - 4, 4, kSegmentSuffix) == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());  // name order == SN order

  std::vector<SegmentEntry> adopted;  // newest first while scanning back
  SeqNum newer_base = 0;
  bool have_newer = false;
  size_t quarantined_from = 0;  // files[0, quarantined_from) get renamed
  for (size_t i = files.size(); i-- > 0;) {
    auto opened = SegmentReader::Open(files[i]);
    bool keep = opened.ok();
    if (keep && have_newer &&
        opened.value()->header().last_sn >= newer_base) {
      // Overlaps the newer segment we already kept — treat as corrupt.
      keep = false;
    }
    if (!keep) {
      quarantined_from = i + 1;
      break;
    }
    newer_base = opened.value()->header().base_sn;
    have_newer = true;
    SegmentEntry entry;
    entry.reader = std::move(opened).value();
    adopted.push_back(std::move(entry));
  }
  // Quarantine the corrupt segment and everything older: a hole would
  // break the contiguity of the retained prefix. Those rows fall back to
  // the WAL tail (or expire — retention is a policy).
  for (size_t i = 0; i < quarantined_from; ++i) {
    fs::rename(files[i], files[i] + ".quarantined", ec);
    ++counters_.segments_quarantined;
  }

  for (size_t i = adopted.size(); i-- > 0;) {  // back to oldest-first
    SegmentEntry entry = std::move(adopted[i]);
    const SegmentHeader& h = entry.reader->header();
    Status scan = entry.reader->Scan([&entry](const ChronicleRow& row) {
      entry.raw_bytes += ApproxRowBytes(row);
    });
    if (!scan.ok()) return scan;  // unreachable after a validated Open
    tier.rows += h.row_count;
    tier.bytes += entry.reader->file_bytes();
    tier.raw_bytes += entry.raw_bytes;
    tier.last_sealed_sn = std::max(tier.last_sealed_sn, h.last_sn);
    tier.segments.emplace(h.base_sn, std::move(entry));
  }
  EnforceBudget(tier);
  tiers_.emplace(id, std::move(tier));
  return Status::OK();
}

Status TieredStore::SealOne(ChronicleTier& tier, ChronicleId id,
                            const std::vector<ChronicleRow>& rows,
                            size_t begin, size_t end) {
  SegmentEncoder encoder(id);
  uint64_t raw = 0;
  for (size_t i = begin; i < end; ++i) {
    encoder.Add(rows[i]);
    raw += ApproxRowBytes(rows[i]);
  }
  const SeqNum base = encoder.first_sn();
  const SeqNum last = encoder.last_sn();
  const uint32_t count = encoder.rows();
  const std::string image = encoder.Finish();
  const std::string path = tier.dir + "/" + SegmentFileName(base);
  CHRONICLE_RETURN_NOT_OK(AtomicWriteSegment(path, image));
  CHRONICLE_ASSIGN_OR_RETURN(std::unique_ptr<SegmentReader> reader,
                             SegmentReader::Open(path));
  SegmentEntry entry;
  entry.reader = std::move(reader);
  entry.raw_bytes = raw;
  tier.rows += count;
  tier.bytes += image.size();
  tier.raw_bytes += raw;
  tier.last_sealed_sn = std::max(tier.last_sealed_sn, last);
  tier.segments.emplace(base, std::move(entry));
  ++counters_.segments_sealed;
  counters_.rows_sealed += count;
  counters_.bytes_written += image.size();
  if (metrics_ != nullptr) {
    metrics_->Count(ids_.segments_sealed, 1);
    metrics_->Count(ids_.rows_sealed, count);
    metrics_->Count(ids_.bytes_written, image.size());
  }
  return Status::OK();
}

Status TieredStore::SealRows(ChronicleId id,
                             const std::vector<ChronicleRow>& rows) {
  if (rows.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tiers_.find(id);
  if (it == tiers_.end()) {
    return Status::FailedPrecondition("chronicle " + std::to_string(id) +
                                      " is not attached to the store");
  }
  ChronicleTier& tier = it->second;
  if (pre_seal_barrier_ != nullptr) {
    Status barrier = pre_seal_barrier_();
    if (!barrier.ok()) {
      ++counters_.seal_failures;
      if (metrics_ != nullptr) metrics_->Count(ids_.seal_failures, 1);
      return barrier;
    }
  }
  // Split the batch into segments at the row/byte thresholds, never
  // splitting one SN. Boundaries are a pure function of the row stream,
  // which is what makes crash recovery converge on the same segments.
  size_t begin = 0;
  size_t encoded = 0;
  for (size_t i = 0; i <= rows.size(); ++i) {
    const bool at_end = i == rows.size();
    const bool full = at_end || (i - begin) >= options_.segment_rows ||
                      encoded >= options_.segment_bytes;
    if (full && i > begin && (at_end || rows[i].sn != rows[i - 1].sn)) {
      Status s = SealOne(tier, id, rows, begin, i);
      if (!s.ok()) {
        ++counters_.seal_failures;
        if (metrics_ != nullptr) metrics_->Count(ids_.seal_failures, 1);
        return s;
      }
      begin = i;
      encoded = 0;
    }
    if (at_end) break;
    // Rough per-row encoded size (1 varint byte + serde tuple); only has
    // to be deterministic, not exact.
    encoded += 2;
    for (const Value& v : rows[i].values) {
      encoded += v.is_string() ? 5 + v.str().size() : 9;
    }
  }
  EnforceBudget(tier);
  return Status::OK();
}

void TieredStore::EnforceBudget(ChronicleTier& tier) {
  const uint64_t byte_budget = options_.warm_budget_bytes;
  const size_t seg_budget = options_.warm_budget_segments;
  while (tier.segments.size() > 1 &&
         ((byte_budget != 0 && tier.bytes > byte_budget) ||
          (seg_budget != 0 && tier.segments.size() > seg_budget))) {
    auto oldest = tier.segments.begin();
    const SegmentHeader& h = oldest->second.reader->header();
    tier.rows -= h.row_count;
    tier.bytes -= oldest->second.reader->file_bytes();
    tier.raw_bytes -= oldest->second.raw_bytes;
    ++counters_.segments_evicted;
    counters_.rows_evicted += h.row_count;
    if (metrics_ != nullptr) {
      metrics_->Count(ids_.segments_evicted, 1);
      metrics_->Count(ids_.rows_evicted, h.row_count);
    }
    std::error_code ec;
    const std::string path = oldest->second.reader->path();
    tier.segments.erase(oldest);  // unmap before unlink
    std::filesystem::remove(path, ec);
  }
}

SeqNum TieredStore::last_sealed_sn(ChronicleId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tiers_.find(id);
  return it == tiers_.end() ? 0 : it->second.last_sealed_sn;
}

uint64_t TieredStore::WarmRows(ChronicleId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tiers_.find(id);
  return it == tiers_.end() ? 0 : it->second.rows;
}

Status TieredStore::ScanWarm(
    ChronicleId id,
    const std::function<void(const ChronicleRow&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tiers_.find(id);
  if (it == tiers_.end()) return Status::OK();
  for (const auto& [base, entry] : it->second.segments) {
    (void)base;
    CHRONICLE_RETURN_NOT_OK(entry.reader->Scan(fn));
  }
  return Status::OK();
}

TieredStore::WarmCursor TieredStore::OpenWarmCursor(ChronicleId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarmCursor cursor;
  auto it = tiers_.find(id);
  if (it != tiers_.end()) {
    for (const auto& [base, entry] : it->second.segments) {
      (void)base;
      cursor.segments_.push_back(entry.reader.get());
    }
  }
  return cursor;
}

Result<bool> TieredStore::WarmCursor::Next(ChronicleRow* out) {
  while (index_ < segments_.size()) {
    if (cursor_ == nullptr) {
      cursor_ = std::make_unique<SegmentReader::Cursor>(segments_[index_]);
    }
    CHRONICLE_ASSIGN_OR_RETURN(bool more, cursor_->Next(out));
    if (more) return true;
    cursor_.reset();
    ++index_;
  }
  return false;
}

const SegmentReader* TieredStore::FindSegmentFor(ChronicleId id,
                                                 SeqNum sn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tiers_.find(id);
  if (it == tiers_.end()) return nullptr;
  const auto& segments = it->second.segments;
  auto seg = segments.upper_bound(sn);
  if (seg == segments.begin()) return nullptr;
  --seg;
  return seg->second.reader->header().last_sn >= sn ? seg->second.reader.get()
                                                    : nullptr;
}

StoreMetricIds TieredStore::RegisterMetrics(obs::MetricsRegistry* metrics) {
  StoreMetricIds ids;
  ids.segments_sealed = metrics->AddCounter("storage_segments_sealed_total",
                                            "Warm-tier segments sealed");
  ids.segments_evicted =
      metrics->AddCounter("storage_segments_evicted_total",
                          "Warm-tier segments evicted by budget");
  ids.rows_sealed = metrics->AddCounter("storage_rows_sealed_total",
                                        "Rows spilled to the warm tier");
  ids.rows_evicted = metrics->AddCounter("storage_rows_evicted_total",
                                         "Rows expired from the warm tier");
  ids.bytes_written =
      metrics->AddCounter("storage_warm_bytes_written_total",
                          "Encoded segment bytes written to disk");
  ids.seal_failures = metrics->AddCounter("storage_seal_failures_total",
                                          "Seal attempts that failed");
  return ids;
}

void TieredStore::SetPreSealBarrier(std::function<Status()> barrier) {
  std::lock_guard<std::mutex> lock(mutex_);
  pre_seal_barrier_ = std::move(barrier);
}

void TieredStore::AttachMetrics(obs::MetricsRegistry* metrics,
                                const StoreMetricIds& ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  ids_ = ids;
}

StoreCounters TieredStore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

WarmTierInfo TieredStore::TierOf(ChronicleId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarmTierInfo info;
  auto it = tiers_.find(id);
  if (it == tiers_.end()) return info;
  info.segments = it->second.segments.size();
  info.rows = it->second.rows;
  info.bytes = it->second.bytes;
  info.raw_bytes = it->second.raw_bytes;
  info.last_sealed_sn = it->second.last_sealed_sn;
  return info;
}

}  // namespace store
}  // namespace chronicle
