// Segment files: the on-disk unit of the warm tier.
//
// A segment is an immutable, CRC-protected run of chronicle rows:
//
//   ┌──────────────────────────── header (40 bytes) ───────────────────────┐
//   │ magic "CSEG" u32 │ version u32 │ chronicle_id u32 │ row_count u32    │
//   │ base_sn u64      │ last_sn u64 │ payload_bytes u32 │ payload_crc u32 │
//   └──────────────────────────────────────────────────────────────────────┘
//   payload: row_count × ( varint sn_delta ‖ serde tuple )
//
// Sequence numbers are delta-encoded against the previous row (base_sn for
// the first), so a dense append stream costs one byte per row of SN
// overhead. Tuples reuse checkpoint/serde's length-prefixed encoding. The
// CRC is CRC-32C over the first 36 header bytes (everything before the CRC
// field) followed by the payload, and the header fields are additionally
// cross-checked against the decoded payload at open, so any truncation,
// tear, or bit flip fails closed with a clean Status.
//
// Files are written atomically (temp + fsync + rename); a crash mid-seal
// leaves at most an ignorable *.tmp file, never a torn segment.

#ifndef CHRONICLE_STORE_SEGMENT_H_
#define CHRONICLE_STORE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/chronicle.h"
#include "types/tuple.h"

namespace chronicle {
namespace store {

inline constexpr uint32_t kSegmentMagic = 0x47455343;  // "CSEG" little-endian
inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr size_t kSegmentHeaderBytes = 40;
inline constexpr char kSegmentSuffix[] = ".seg";
inline constexpr char kSegmentTempSuffix[] = ".tmp";

struct SegmentHeader {
  uint32_t chronicle_id = 0;
  uint32_t row_count = 0;
  SeqNum base_sn = 0;
  SeqNum last_sn = 0;
  uint32_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

// `seg-<base_sn, zero-padded>.seg`, so lexicographic order is SN order.
std::string SegmentFileName(SeqNum base_sn);

// Incrementally encodes one segment image. Rows must arrive oldest first
// with non-decreasing sequence numbers.
class SegmentEncoder {
 public:
  explicit SegmentEncoder(uint32_t chronicle_id);

  void Add(const ChronicleRow& row);

  uint32_t rows() const { return rows_; }
  size_t payload_bytes() const;
  SeqNum first_sn() const { return first_sn_; }
  SeqNum last_sn() const { return last_sn_; }

  // Produces the complete file image (header + payload); the encoder is
  // spent afterwards. Requires at least one row.
  std::string Finish();

 private:
  uint32_t chronicle_id_;
  uint32_t rows_ = 0;
  SeqNum first_sn_ = 0;
  SeqNum last_sn_ = 0;
  std::string payload_;
};

// Writes `data` to `path` atomically: temp file in the same directory,
// fsync, rename, fsync of the directory.
Status AtomicWriteSegment(const std::string& path, std::string_view data);

// An mmap-backed, fully validated segment. Open() checks magic, version,
// CRC, and decodes every row once (verifying counts and SN monotonicity);
// after a successful Open the accessors and Scan cannot fail.
class SegmentReader {
 public:
  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  // Maps and validates the segment at `path`. Fails closed (kDataLoss /
  // kParseError) on any corruption; never returns a partially usable
  // reader.
  static Result<std::unique_ptr<SegmentReader>> Open(const std::string& path);

  const SegmentHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  // Bytes on disk (header + payload).
  uint64_t file_bytes() const { return mapped_bytes_; }

  // Applies `fn` to every row, oldest first.
  template <typename Visitor>
  Status Scan(Visitor&& fn) const {
    Cursor cursor(this);
    ChronicleRow row;
    while (true) {
      CHRONICLE_ASSIGN_OR_RETURN(bool more, cursor.Next(&row));
      if (!more) return Status::OK();
      fn(row);
    }
  }

  // Pull-based row iterator for merge scans (backfill).
  class Cursor {
   public:
    explicit Cursor(const SegmentReader* reader);
    // Decodes the next row into `out`; false at end of segment. Decode
    // errors are impossible after a successful Open but still surface as a
    // Status rather than undefined behavior.
    Result<bool> Next(ChronicleRow* out);

   private:
    const SegmentReader* reader_;
    size_t offset_ = 0;  // into the payload
    uint32_t row_ = 0;
    SeqNum prev_sn_ = 0;
  };

 private:
  SegmentReader() = default;

  std::string_view payload() const;

  std::string path_;
  SegmentHeader header_;
  const char* mapped_ = nullptr;
  size_t mapped_bytes_ = 0;
};

}  // namespace store
}  // namespace chronicle

#endif  // CHRONICLE_STORE_SEGMENT_H_
