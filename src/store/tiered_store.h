// TieredStore: the warm tier of tiered retention.
//
// Rows age out of a chronicle's hot in-memory window into sealed segment
// files under `<data_dir>/<chronicle-name>/` (see segment.h for the file
// format). The store keeps an in-memory SN→segment index per chronicle,
// mmap-validates every segment at attach, enforces warm-tier budgets by
// evicting the oldest segments (retention is a policy, not a guarantee —
// paper §2.1), and serves oldest-first scans for window queries, the naive
// baseline, and replayable view backfill.
//
// Recovery contract: a sealed segment is durable before the hot rows it
// covers are dropped, so sealed segments form a checkpoint of the
// chronicle prefix. On restart the chronicle-level dedup guard
// (`sn <= last_sealed_sn`) suppresses checkpoint/WAL replay of rows the
// warm tier already holds; corrupt or torn segments are quarantined at
// attach and their rows fall back to the WAL tail (or expire).
//
// Thread safety: mutations (seal, evict, attach) are driver-thread calls;
// reads of counters and tier sizes may come from the monitoring thread, so
// all bookkeeping is behind a mutex and aggregate counters are atomics.

#ifndef CHRONICLE_STORE_TIERED_STORE_H_
#define CHRONICLE_STORE_TIERED_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/chronicle.h"
#include "store/segment.h"

namespace chronicle {
namespace store {

// Tier budgets and layout; embedded in DatabaseOptions as `storage`.
struct StorageOptions {
  // Root directory for segment files; empty disables the store.
  std::string data_dir;
  // Hot window per tiered chronicle (rows kept in the in-memory deque).
  size_t hot_rows = 8192;
  // Rows handed to the store per seal; the target segment size.
  size_t segment_rows = 4096;
  // A segment also seals early once its encoded payload reaches this size.
  uint64_t segment_bytes = 1 << 20;
  // Warm-tier budgets per chronicle; oldest segments are evicted past
  // either. 0 = unbounded.
  uint64_t warm_budget_bytes = 256ull << 20;
  size_t warm_budget_segments = 0;
};

// Aggregate counters, mirrored into StatsSnapshot.storage.
struct StoreCounters {
  uint64_t segments_sealed = 0;
  uint64_t segments_evicted = 0;
  uint64_t segments_quarantined = 0;
  uint64_t rows_sealed = 0;
  uint64_t rows_evicted = 0;
  uint64_t bytes_written = 0;  // compressed bytes appended to the warm tier
  uint64_t seal_failures = 0;
};

// Pre-resolved registry ids for the storage metric catalog. Registered by
// RegisterMetrics at database construction (the registry is single-
// threaded registration-only), handed to the store when it is lazily
// opened.
struct StoreMetricIds {
  obs::MetricId segments_sealed = 0;
  obs::MetricId segments_evicted = 0;
  obs::MetricId rows_sealed = 0;
  obs::MetricId rows_evicted = 0;
  obs::MetricId bytes_written = 0;
  obs::MetricId seal_failures = 0;
};

// Per-chronicle warm-tier sizes for the stats tier breakdown.
struct WarmTierInfo {
  uint64_t segments = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;      // on-disk (encoded) bytes
  uint64_t raw_bytes = 0;  // ApproxTupleBytes-equivalent of the same rows
  SeqNum last_sealed_sn = 0;
};

class TieredStore : public TierSink {
 public:
  // Creates `options.data_dir` if missing and validates it is usable.
  static Result<std::unique_ptr<TieredStore>> Open(StorageOptions options);

  // Registers a chronicle and adopts any segments already on disk for it
  // (recovery). Corrupt segments are quarantined (renamed *.quarantined);
  // because the retained warm window must stay contiguous, segments older
  // than a corrupt one are quarantined with it. Stray *.tmp files from a
  // crash mid-seal are deleted.
  Status AttachChronicle(ChronicleId id, const std::string& name);

  // TierSink:
  Status SealRows(ChronicleId id,
                  const std::vector<ChronicleRow>& rows) override;
  SeqNum last_sealed_sn(ChronicleId id) const override;
  uint64_t WarmRows(ChronicleId id) const override;
  Status ScanWarm(
      ChronicleId id,
      const std::function<void(const ChronicleRow&)>& fn) const override;

  // Pull-based oldest-first row stream over the warm tier of one
  // chronicle, for the k-way backfill merge.
  class WarmCursor {
   public:
    // Decodes the next warm row; false once exhausted.
    Result<bool> Next(ChronicleRow* out);

   private:
    friend class TieredStore;
    std::vector<const SegmentReader*> segments_;
    size_t index_ = 0;
    std::unique_ptr<SegmentReader::Cursor> cursor_;
  };
  WarmCursor OpenWarmCursor(ChronicleId id) const;

  // The segment covering `sn`, or null (index lookup; exposed for tests).
  const SegmentReader* FindSegmentFor(ChronicleId id, SeqNum sn) const;

  // Write-ahead barrier, run once per SealRows before any segment is
  // written. The database points this at MutationLog::Sync so a seal can
  // never make rows durable in the store ahead of their WAL records — a
  // crash would otherwise recover a warm tier the replayed log (and thus
  // every maintained view) has never seen. A failing barrier aborts the
  // seal; the rows stay hot and the seal is retried on the next append.
  void SetPreSealBarrier(std::function<Status()> barrier);

  // Registers the storage_* counter catalog (construction time only).
  static StoreMetricIds RegisterMetrics(obs::MetricsRegistry* metrics);
  // Points the store at an already-registered catalog.
  void AttachMetrics(obs::MetricsRegistry* metrics,
                     const StoreMetricIds& ids);

  StoreCounters counters() const;
  WarmTierInfo TierOf(ChronicleId id) const;
  const StorageOptions& options() const { return options_; }

 private:
  explicit TieredStore(StorageOptions options);

  struct SegmentEntry {
    std::unique_ptr<SegmentReader> reader;
    uint64_t raw_bytes = 0;  // in-memory-equivalent size of its rows
  };

  struct ChronicleTier {
    std::string name;
    std::string dir;
    // Keyed by base SN; iteration order is scan order.
    std::map<SeqNum, SegmentEntry> segments;
    uint64_t rows = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    SeqNum last_sealed_sn = 0;
  };

  // Seals one encoder's worth of rows [begin, end) as a single segment.
  Status SealOne(ChronicleTier& tier, ChronicleId id,
                 const std::vector<ChronicleRow>& rows, size_t begin,
                 size_t end);
  void EnforceBudget(ChronicleTier& tier);

  StorageOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<ChronicleId, ChronicleTier> tiers_;
  StoreCounters counters_;
  std::function<Status()> pre_seal_barrier_;

  obs::MetricsRegistry* metrics_ = nullptr;
  StoreMetricIds ids_;
};

// In-memory-equivalent footprint of one row (matches
// Chronicle::ApproxTupleBytes); the denominator of the compression ratio.
uint64_t ApproxRowBytes(const ChronicleRow& row);

}  // namespace store
}  // namespace chronicle

#endif  // CHRONICLE_STORE_TIERED_STORE_H_
