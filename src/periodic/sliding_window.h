// SlidingWindowView: the cyclic-buffer optimization for overlapping
// periodic views (paper §5.1).
//
// For the paper's example — "a periodic view for every day that computes
// the total number of shares of a stock sold during the 30 days preceding
// that day" — the naive PeriodicViewSet updates every one of the ~30
// overlapping instances on each append. Because the aggregates are
// decomposable, it suffices to "keep the total number of shares sold for
// each of the last 30 days separately, and derive the view as the sum of
// these 30 numbers. Moving from one periodic view to the next one involves
// shifting a cyclic buffer".
//
// This class keeps one partial-aggregate table per pane (pane width =
// slide) in a ring of `num_panes` (window / slide) slots. Each append
// touches exactly ONE pane — O(1) view updates per append regardless of
// the overlap factor — and a window query merges the ring's panes on
// demand. Ring slots are reused as the window moves, so space is bounded
// by the window content ("the space for the periodic view can be reused").
//
// Equivalence with the naive formulation (tested in periodic tests):
//   QueryWindow(key) after a tick at chronon t equals the naive instance
//   k = current_pane − num_panes + 1 of
//   SlidingCalendar{origin, window = num_panes·pane_width, slide = pane_width}.

#ifndef CHRONICLE_PERIODIC_SLIDING_WINDOW_H_
#define CHRONICLE_PERIODIC_SLIDING_WINDOW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/delta_engine.h"
#include "periodic/calendar.h"
#include "storage/keyed_table.h"
#include "views/summary_spec.h"

namespace chronicle {

class SlidingWindowView {
 public:
  // `spec` must be a GroupBy summarization (decomposable aggregates);
  // pane_width > 0, num_panes > 0.
  static Result<std::unique_ptr<SlidingWindowView>> Make(
      std::string name, CaExprPtr plan, SummarySpec spec, Chronon origin,
      Chronon pane_width, int64_t num_panes,
      IndexMode index_mode = IndexMode::kHash);

  const std::string& name() const { return name_; }
  const CaExprPtr& plan() const { return plan_; }
  Chronon window() const { return pane_width_ * num_panes_; }
  Chronon pane_width() const { return pane_width_; }
  int64_t num_panes() const { return num_panes_; }

  // Folds one append into the pane containing event.chronon. Events before
  // `origin` are ignored; chronons must not regress (group discipline).
  Status ProcessAppend(const AppendEvent& event);

  // Finalized row (key columns + aggregates) for `key` over the window
  // ending with the current pane; NotFound if the key appears in no live
  // pane.
  Result<Tuple> QueryWindow(const Tuple& key) const;

  // Applies `fn` to the finalized row of every key present in the current
  // window.
  Status ScanWindow(const std::function<void(const Tuple&)>& fn) const;

  // Absolute index of the most recent pane written (-1 before any data).
  int64_t current_pane() const { return current_pane_; }

  size_t MemoryFootprint() const;

  // --- checkpoint hooks (src/checkpoint) ---

  // Visits every live pane group: (absolute pane index, key, states).
  void VisitPanes(const std::function<void(int64_t, const Tuple&,
                                           const std::vector<AggState>&)>& fn)
      const;
  // Reinstates one pane group. Only legal before any append was processed.
  Status RestorePaneGroup(int64_t pane_index, Tuple key,
                          std::vector<AggState> states);
  // Reinstates the ring position.
  void RestoreCurrentPane(int64_t pane) { current_pane_ = pane; }

 private:
  struct Pane {
    int64_t pane_index = -1;  // absolute pane number occupying this slot
    KeyedTable<std::vector<AggState>> groups{IndexMode::kHash};
  };

  SlidingWindowView(std::string name, CaExprPtr plan, SummarySpec spec,
                    Chronon origin, Chronon pane_width, int64_t num_panes,
                    IndexMode index_mode);

  // Merges the states for `key` across all panes of the current window;
  // false if the key is in no pane.
  bool MergeKey(const Tuple& key, std::vector<AggState>* merged) const;
  Tuple FinalizeRow(const Tuple& key, const std::vector<AggState>& states) const;

  std::string name_;
  CaExprPtr plan_;
  SummarySpec spec_;
  Chronon origin_;
  Chronon pane_width_;
  int64_t num_panes_;
  IndexMode index_mode_;
  DeltaEngine engine_;

  std::vector<Pane> ring_;
  int64_t current_pane_ = -1;
};

}  // namespace chronicle

#endif  // CHRONICLE_PERIODIC_SLIDING_WINDOW_H_
