#include "periodic/periodic_view.h"

#include "algebra/validate.h"

namespace chronicle {

PeriodicViewSet::PeriodicViewSet(std::string name, CaExprPtr plan,
                                 SummarySpec spec,
                                 std::shared_ptr<const Calendar> calendar,
                                 PeriodicViewOptions options)
    : name_(std::move(name)),
      plan_(std::move(plan)),
      spec_(std::move(spec)),
      calendar_(std::move(calendar)),
      options_(options) {}

Result<std::unique_ptr<PeriodicViewSet>> PeriodicViewSet::Make(
    std::string name, CaExprPtr plan, SummarySpec spec,
    std::shared_ptr<const Calendar> calendar, PeriodicViewOptions options) {
  if (plan == nullptr || calendar == nullptr) {
    return Status::InvalidArgument(
        "periodic view requires a plan and a calendar");
  }
  CHRONICLE_RETURN_NOT_OK(ValidateChronicleAlgebra(*plan));
  return std::unique_ptr<PeriodicViewSet>(
      new PeriodicViewSet(std::move(name), std::move(plan), std::move(spec),
                          std::move(calendar), options));
}

Status PeriodicViewSet::ProcessAppend(const AppendEvent& event) {
  std::vector<int64_t> containing;
  calendar_->IntervalsContaining(event.chronon, &containing);
  if (!containing.empty()) {
    // One shared delta for every containing instance.
    CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> delta,
                               engine_.ComputeDelta(*plan_, event));
    if (!delta.empty()) {
      for (int64_t index : containing) {
        auto it = instances_.find(index);
        if (it == instances_.end()) {
          CHRONICLE_ASSIGN_OR_RETURN(
              std::unique_ptr<PersistentView> instance,
              PersistentView::Make(
                  static_cast<ViewId>(index & 0x7fffffff),
                  name_ + "@" + std::to_string(index), plan_, spec_,
                  /*computed=*/{}, options_.index_mode));
          it = instances_.emplace(index, std::move(instance)).first;
          ++instances_created_;
        }
        CHRONICLE_RETURN_NOT_OK(it->second->ApplyDelta(delta));
      }
    }
  }
  return ExpireUpTo(event.chronon);
}

Status PeriodicViewSet::ExpireUpTo(Chronon now) {
  if (options_.expire_after < 0) return Status::OK();
  while (!instances_.empty()) {
    const int64_t index = instances_.begin()->first;
    CHRONICLE_ASSIGN_OR_RETURN(Interval interval, calendar_->GetInterval(index));
    if (interval.end + options_.expire_after > now) break;
    instances_.erase(instances_.begin());
    ++instances_expired_;
  }
  return Status::OK();
}

Result<Tuple> PeriodicViewSet::Lookup(int64_t interval_index,
                                      const Tuple& key) const {
  CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* instance,
                             GetInstance(interval_index));
  return instance->Lookup(key);
}

Result<const PersistentView*> PeriodicViewSet::GetInstance(
    int64_t interval_index) const {
  auto it = instances_.find(interval_index);
  if (it == instances_.end()) {
    return Status::NotFound("periodic view '" + name_ + "' has no instance " +
                            std::to_string(interval_index) +
                            " (never materialized or expired)");
  }
  return static_cast<const PersistentView*>(it->second.get());
}

void PeriodicViewSet::VisitInstances(
    const std::function<void(int64_t, const PersistentView&)>& fn) const {
  for (const auto& [index, instance] : instances_) {
    fn(index, *instance);
  }
}

Status PeriodicViewSet::RestoreInstanceGroup(int64_t interval_index, Tuple key,
                                             std::vector<AggState> states,
                                             int64_t multiplicity) {
  auto it = instances_.find(interval_index);
  if (it == instances_.end()) {
    CHRONICLE_ASSIGN_OR_RETURN(
        std::unique_ptr<PersistentView> instance,
        PersistentView::Make(static_cast<ViewId>(interval_index & 0x7fffffff),
                             name_ + "@" + std::to_string(interval_index),
                             plan_, spec_, /*computed=*/{},
                             options_.index_mode));
    it = instances_.emplace(interval_index, std::move(instance)).first;
  }
  return it->second->RestoreGroup(std::move(key), std::move(states),
                                  multiplicity);
}

size_t PeriodicViewSet::MemoryFootprint() const {
  size_t total = 0;
  for (const auto& [index, instance] : instances_) {
    total += instance->MemoryFootprint();
  }
  return total;
}

}  // namespace chronicle
