#include "periodic/calendar.h"

namespace chronicle {

std::string Interval::ToString() const {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

FixedCalendar::FixedCalendar(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {}

void FixedCalendar::IntervalsContaining(Chronon t,
                                        std::vector<int64_t>* out) const {
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].Contains(t)) out->push_back(static_cast<int64_t>(i));
  }
}

Result<Interval> FixedCalendar::GetInterval(int64_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= intervals_.size()) {
    return Status::OutOfRange("no interval with index " + std::to_string(index));
  }
  return intervals_[static_cast<size_t>(index)];
}

std::string FixedCalendar::ToString() const {
  std::string out = "FixedCalendar{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

Result<std::shared_ptr<PeriodicCalendar>> PeriodicCalendar::Make(
    Chronon origin, Chronon period) {
  if (period <= 0) {
    return Status::InvalidArgument("calendar period must be positive");
  }
  return std::shared_ptr<PeriodicCalendar>(new PeriodicCalendar(origin, period));
}

void PeriodicCalendar::IntervalsContaining(Chronon t,
                                           std::vector<int64_t>* out) const {
  if (t < origin_) return;
  out->push_back((t - origin_) / period_);
}

Result<Interval> PeriodicCalendar::GetInterval(int64_t index) const {
  if (index < 0) {
    return Status::OutOfRange("periodic calendar indexes start at 0");
  }
  return Interval{origin_ + index * period_, origin_ + (index + 1) * period_};
}

std::string PeriodicCalendar::ToString() const {
  return "PeriodicCalendar{origin=" + std::to_string(origin_) +
         ", period=" + std::to_string(period_) + "}";
}

Result<std::shared_ptr<SlidingCalendar>> SlidingCalendar::Make(Chronon origin,
                                                               Chronon window,
                                                               Chronon slide) {
  if (window <= 0 || slide <= 0) {
    return Status::InvalidArgument("window and slide must be positive");
  }
  return std::shared_ptr<SlidingCalendar>(
      new SlidingCalendar(origin, window, slide));
}

void SlidingCalendar::IntervalsContaining(Chronon t,
                                          std::vector<int64_t>* out) const {
  if (t < origin_) return;
  // k·slide <= t - origin < k·slide + window
  const Chronon offset = t - origin_;
  const int64_t hi = offset / slide_;  // largest k with begin <= t
  // smallest k with t < begin + window  <=>  k > (offset - window) / slide
  int64_t lo = (offset - window_) / slide_;
  if (lo * slide_ + window_ <= offset) ++lo;  // ceil adjustment
  if (lo < 0) lo = 0;
  for (int64_t k = lo; k <= hi; ++k) out->push_back(k);
}

Result<Interval> SlidingCalendar::GetInterval(int64_t index) const {
  if (index < 0) {
    return Status::OutOfRange("sliding calendar indexes start at 0");
  }
  return Interval{origin_ + index * slide_, origin_ + index * slide_ + window_};
}

std::string SlidingCalendar::ToString() const {
  return "SlidingCalendar{origin=" + std::to_string(origin_) +
         ", window=" + std::to_string(window_) +
         ", slide=" + std::to_string(slide_) + "}";
}

}  // namespace chronicle
