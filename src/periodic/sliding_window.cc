#include "periodic/sliding_window.h"

#include <algorithm>
#include <unordered_set>

#include "algebra/validate.h"

namespace chronicle {

SlidingWindowView::SlidingWindowView(std::string name, CaExprPtr plan,
                                     SummarySpec spec, Chronon origin,
                                     Chronon pane_width, int64_t num_panes,
                                     IndexMode index_mode)
    : name_(std::move(name)),
      plan_(std::move(plan)),
      spec_(std::move(spec)),
      origin_(origin),
      pane_width_(pane_width),
      num_panes_(num_panes),
      index_mode_(index_mode),
      ring_(static_cast<size_t>(num_panes)) {
  for (Pane& pane : ring_) {
    pane.groups = KeyedTable<std::vector<AggState>>(index_mode_);
  }
}

Result<std::unique_ptr<SlidingWindowView>> SlidingWindowView::Make(
    std::string name, CaExprPtr plan, SummarySpec spec, Chronon origin,
    Chronon pane_width, int64_t num_panes, IndexMode index_mode) {
  if (plan == nullptr) {
    return Status::InvalidArgument("sliding-window view requires a plan");
  }
  CHRONICLE_RETURN_NOT_OK(ValidateChronicleAlgebra(*plan));
  if (spec.kind() != SummarySpec::Kind::kGroupBy) {
    return Status::InvalidArgument(
        "the pane optimization requires decomposable aggregates (GroupBy "
        "summarization)");
  }
  if (pane_width <= 0 || num_panes <= 0) {
    return Status::InvalidArgument("pane width and count must be positive");
  }
  return std::unique_ptr<SlidingWindowView>(
      new SlidingWindowView(std::move(name), std::move(plan), std::move(spec),
                            origin, pane_width, num_panes, index_mode));
}

Status SlidingWindowView::ProcessAppend(const AppendEvent& event) {
  if (event.chronon < origin_) return Status::OK();
  const int64_t pane_index = (event.chronon - origin_) / pane_width_;
  if (pane_index < current_pane_) {
    return Status::OutOfRange("chronon regressed below the current pane");
  }
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> delta,
                             engine_.ComputeDelta(*plan_, event));
  current_pane_ = pane_index;
  if (delta.empty()) return Status::OK();

  Pane& pane = ring_[static_cast<size_t>(pane_index % num_panes_)];
  if (pane.pane_index != pane_index) {
    // The slot held a pane that has slid out of every window: reuse it.
    pane.groups.Clear();
    pane.pane_index = pane_index;
  }
  for (const ChronicleRow& row : delta) {
    Tuple key = spec_.KeyOf(row.values);
    std::vector<AggState>* states = pane.groups.Find(key);
    if (states == nullptr) {
      states = &pane.groups.GetOrCreate(std::move(key));
      states->reserve(spec_.aggregates().size());
      for (const AggSpec& agg : spec_.aggregates()) {
        states->push_back(agg.Init());
      }
    }
    for (size_t i = 0; i < spec_.aggregates().size(); ++i) {
      spec_.aggregates()[i].Update(&(*states)[i], row.values);
    }
  }
  return Status::OK();
}

bool SlidingWindowView::MergeKey(const Tuple& key,
                                 std::vector<AggState>* merged) const {
  // Merge in chronological (pane-index) order: order-sensitive aggregates
  // (FIRST/LAST) rely on it. Ring slots are not chronological, so sort the
  // live panes first — the ring is small by construction.
  std::vector<const Pane*> live;
  live.reserve(ring_.size());
  for (const Pane& pane : ring_) {
    if (pane.pane_index < 0) continue;
    // Live iff inside the window ending at the current pane.
    if (pane.pane_index > current_pane_ ||
        pane.pane_index <= current_pane_ - num_panes_) {
      continue;
    }
    live.push_back(&pane);
  }
  std::sort(live.begin(), live.end(), [](const Pane* a, const Pane* b) {
    return a->pane_index < b->pane_index;
  });

  bool found = false;
  for (const Pane* pane_ptr : live) {
    const Pane& pane = *pane_ptr;
    const std::vector<AggState>* states = pane.groups.Find(key);
    if (states == nullptr) continue;
    if (!found) {
      merged->clear();
      merged->reserve(spec_.aggregates().size());
      for (const AggSpec& agg : spec_.aggregates()) {
        merged->push_back(agg.Init());
      }
      found = true;
    }
    for (size_t i = 0; i < spec_.aggregates().size(); ++i) {
      spec_.aggregates()[i].Merge(&(*merged)[i], (*states)[i]);
    }
  }
  return found;
}

Tuple SlidingWindowView::FinalizeRow(const Tuple& key,
                                     const std::vector<AggState>& states) const {
  Tuple row = key;
  for (size_t i = 0; i < spec_.aggregates().size(); ++i) {
    row.push_back(spec_.aggregates()[i].Finalize(states[i]));
  }
  return row;
}

Result<Tuple> SlidingWindowView::QueryWindow(const Tuple& key) const {
  std::vector<AggState> merged;
  if (!MergeKey(key, &merged)) {
    return Status::NotFound("sliding view '" + name_ + "' has no key " +
                            TupleToString(key) + " in the current window");
  }
  return FinalizeRow(key, merged);
}

Status SlidingWindowView::ScanWindow(
    const std::function<void(const Tuple&)>& fn) const {
  std::unordered_set<Tuple, TupleHash, TupleEq> keys;
  for (const Pane& pane : ring_) {
    if (pane.pane_index < 0 || pane.pane_index > current_pane_ ||
        pane.pane_index <= current_pane_ - num_panes_) {
      continue;
    }
    pane.groups.ForEach([&](const Tuple& key, const std::vector<AggState>&) {
      keys.insert(key);
    });
  }
  for (const Tuple& key : keys) {
    std::vector<AggState> merged;
    if (MergeKey(key, &merged)) fn(FinalizeRow(key, merged));
  }
  return Status::OK();
}

void SlidingWindowView::VisitPanes(
    const std::function<void(int64_t, const Tuple&,
                             const std::vector<AggState>&)>& fn) const {
  for (const Pane& pane : ring_) {
    if (pane.pane_index < 0) continue;
    pane.groups.ForEach(
        [&](const Tuple& key, const std::vector<AggState>& states) {
          fn(pane.pane_index, key, states);
        });
  }
}

Status SlidingWindowView::RestorePaneGroup(int64_t pane_index, Tuple key,
                                           std::vector<AggState> states) {
  if (pane_index < 0) {
    return Status::InvalidArgument("pane index must be non-negative");
  }
  Pane& pane = ring_[static_cast<size_t>(pane_index % num_panes_)];
  if (pane.pane_index >= 0 && pane.pane_index != pane_index) {
    return Status::FailedPrecondition(
        "ring slot already holds pane " + std::to_string(pane.pane_index) +
        "; checkpoints must be restored into a fresh view");
  }
  pane.pane_index = pane_index;
  if (pane.groups.Find(key) != nullptr) {
    return Status::AlreadyExists("pane group already restored");
  }
  pane.groups.GetOrCreate(std::move(key)) = std::move(states);
  return Status::OK();
}

size_t SlidingWindowView::MemoryFootprint() const {
  size_t per_group = sizeof(Tuple) + spec_.key_columns().size() * sizeof(Value) +
                     spec_.aggregates().size() * sizeof(AggState) + 48;
  size_t groups = 0;
  for (const Pane& pane : ring_) groups += pane.groups.size();
  return groups * per_group;
}

}  // namespace chronicle
