// Calendars: sets of time intervals over which periodic persistent views
// are computed (paper §5.1, in the spirit of [SS92, CSS94]).
//
// A calendar is a (possibly infinite) indexed family of chronon intervals.
// Intervals may overlap (sliding windows / moving averages) or tile the
// axis (billing months). The mapping from a chronicle's sequence numbers to
// chronons is provided by the append events themselves (every tick carries
// a chronon), so "a mapping from sequence numbers to time intervals" is the
// composition  SN → chronon → interval indexes.

#ifndef CHRONICLE_PERIODIC_CALENDAR_H_
#define CHRONICLE_PERIODIC_CALENDAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/chronicle_group.h"  // Chronon

namespace chronicle {

// A half-open chronon interval [begin, end).
struct Interval {
  Chronon begin = 0;
  Chronon end = 0;

  bool Contains(Chronon t) const { return t >= begin && t < end; }
  bool operator==(const Interval& other) const {
    return begin == other.begin && end == other.end;
  }
  std::string ToString() const;
};

class Calendar {
 public:
  virtual ~Calendar() = default;

  // Appends the indexes of all intervals containing `t` to `out`.
  virtual void IntervalsContaining(Chronon t,
                                   std::vector<int64_t>* out) const = 0;

  // The interval at `index`; OutOfRange if the calendar has no such index.
  virtual Result<Interval> GetInterval(int64_t index) const = 0;

  virtual std::string ToString() const = 0;
};

// An explicit finite list of (possibly overlapping) intervals.
class FixedCalendar : public Calendar {
 public:
  explicit FixedCalendar(std::vector<Interval> intervals);

  void IntervalsContaining(Chronon t, std::vector<int64_t>* out) const override;
  Result<Interval> GetInterval(int64_t index) const override;
  std::string ToString() const override;

 private:
  std::vector<Interval> intervals_;
};

// Non-overlapping aligned periods: interval k = [origin + k·period,
// origin + (k+1)·period), k >= 0. The billing-month calendar.
class PeriodicCalendar : public Calendar {
 public:
  // period must be > 0.
  static Result<std::shared_ptr<PeriodicCalendar>> Make(Chronon origin,
                                                        Chronon period);

  void IntervalsContaining(Chronon t, std::vector<int64_t>* out) const override;
  Result<Interval> GetInterval(int64_t index) const override;
  std::string ToString() const override;

  Chronon origin() const { return origin_; }
  Chronon period() const { return period_; }

 private:
  PeriodicCalendar(Chronon origin, Chronon period)
      : origin_(origin), period_(period) {}
  Chronon origin_;
  Chronon period_;
};

// Overlapping windows: interval k = [origin + k·slide,
// origin + k·slide + window), k >= 0. The 30-day moving-sum calendar has
// window = 30 days and slide = 1 day.
class SlidingCalendar : public Calendar {
 public:
  // window and slide must be > 0; window must be a multiple of slide for
  // the pane optimization to apply (not required here, only there).
  static Result<std::shared_ptr<SlidingCalendar>> Make(Chronon origin,
                                                       Chronon window,
                                                       Chronon slide);

  void IntervalsContaining(Chronon t, std::vector<int64_t>* out) const override;
  Result<Interval> GetInterval(int64_t index) const override;
  std::string ToString() const override;

  Chronon origin() const { return origin_; }
  Chronon window() const { return window_; }
  Chronon slide() const { return slide_; }

 private:
  SlidingCalendar(Chronon origin, Chronon window, Chronon slide)
      : origin_(origin), window_(window), slide_(slide) {}
  Chronon origin_;
  Chronon window_;
  Chronon slide_;
};

}  // namespace chronicle

#endif  // CHRONICLE_PERIODIC_CALENDAR_H_
