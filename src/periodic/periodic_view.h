// PeriodicViewSet: V<D> — one persistent view per interval of a calendar D
// (paper §5.1).
//
// "If the calendar D has an infinite number of intervals, there will be an
// infinite number of views V_i. ... Expiration dates allow the system to
// implement an infinite number of periodic views, provided only a finite
// number of them are current at any one instant."
//
// Instances are created lazily when the first tick inside their interval
// arrives, maintained while their interval is current, and expired (their
// space reclaimed) once their interval has been closed for longer than the
// configured grace period. Each append computes the delta of the shared
// defining expression ONCE and folds it into every containing instance —
// so for a sliding calendar with overlap factor W/s this costs W/s view
// updates per append; the SlidingWindowView optimization removes that
// factor.

#ifndef CHRONICLE_PERIODIC_PERIODIC_VIEW_H_
#define CHRONICLE_PERIODIC_PERIODIC_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/delta_engine.h"
#include "periodic/calendar.h"
#include "views/persistent_view.h"

namespace chronicle {

struct PeriodicViewOptions {
  // Chronons after an interval's end at which its instance may be dropped;
  // negative disables expiration.
  Chronon expire_after = -1;
  IndexMode index_mode = IndexMode::kHash;
};

class PeriodicViewSet {
 public:
  // `plan` must pass ValidateChronicleAlgebra; `calendar` is shared because
  // several periodic views often run on one business calendar.
  static Result<std::unique_ptr<PeriodicViewSet>> Make(
      std::string name, CaExprPtr plan, SummarySpec spec,
      std::shared_ptr<const Calendar> calendar,
      PeriodicViewOptions options = {});

  const std::string& name() const { return name_; }
  const Calendar& calendar() const { return *calendar_; }
  const CaExprPtr& plan() const { return plan_; }

  // Maintains all instances whose interval contains the event's chronon,
  // then expires instances that have left the grace window.
  Status ProcessAppend(const AppendEvent& event);

  // Point lookup in the instance for `interval_index`. NotFound if that
  // instance never materialized or has expired.
  Result<Tuple> Lookup(int64_t interval_index, const Tuple& key) const;

  // The live instance for an interval (nullptr-free: NotFound if absent).
  Result<const PersistentView*> GetInstance(int64_t interval_index) const;

  size_t num_active_instances() const { return instances_.size(); }
  uint64_t instances_created() const { return instances_created_; }
  uint64_t instances_expired() const { return instances_expired_; }

  // Sum of live instances' footprints.
  size_t MemoryFootprint() const;

  // --- checkpoint hooks (src/checkpoint) ---

  // Visits every live instance (interval index, instance).
  void VisitInstances(
      const std::function<void(int64_t, const PersistentView&)>& fn) const;
  // Reinstates one group of one interval's instance, creating the instance
  // if needed. Only legal before the set has processed any append.
  Status RestoreInstanceGroup(int64_t interval_index, Tuple key,
                              std::vector<AggState> states,
                              int64_t multiplicity);
  // Reinstates the lifetime counters.
  void RestoreCounters(uint64_t created, uint64_t expired) {
    instances_created_ = created;
    instances_expired_ = expired;
  }

 private:
  PeriodicViewSet(std::string name, CaExprPtr plan, SummarySpec spec,
                  std::shared_ptr<const Calendar> calendar,
                  PeriodicViewOptions options);

  Status ExpireUpTo(Chronon now);

  std::string name_;
  CaExprPtr plan_;
  SummarySpec spec_;
  std::shared_ptr<const Calendar> calendar_;
  PeriodicViewOptions options_;
  DeltaEngine engine_;

  // interval index -> live instance, kept ordered so expiration scans the
  // oldest instances first.
  std::map<int64_t, std::unique_ptr<PersistentView>> instances_;
  uint64_t instances_created_ = 0;
  uint64_t instances_expired_ = 0;
};

}  // namespace chronicle

#endif  // CHRONICLE_PERIODIC_PERIODIC_VIEW_H_
