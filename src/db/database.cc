#include "db/database.h"

#include <algorithm>
#include <chrono>

#include "baseline/naive_engine.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/history.h"
#include "obs/http_server.h"
#include "obs/request_trace.h"

namespace chronicle {

ChronicleDatabase::ChronicleDatabase(DatabaseOptions options)
    : options_(std::move(options)), views_(options_.routing) {
  views_.set_maintenance_options(options_.maintenance);
  durability_ = options_.durability;
  if (options_.observability.metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    m_append_batch_ticks_ = metrics_->AddHistogram(
        "append_batch_ticks", "Ticks per AppendMany batch");
    // Storage counters are registered up front even though the store is
    // created lazily: the registry only accepts registrations before
    // sampling starts, and the counters just sit at zero until a kTiered
    // chronicle attaches.
    store_metric_ids_ = store::TieredStore::RegisterMetrics(metrics_.get());
  }
  if (options_.observability.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceRing>(
        options_.observability.trace_capacity);
  }
  views_.set_observability(metrics_.get(), trace_.get());
  if (options_.observability.profile_view_latency) views_.set_profiling(true);
  if (options_.observability.profile_plan_slots) {
    views_.set_plan_profiling(true, options_.observability.slot_sample_period);
  }
  // The flight recorder serves two capture paths: slow maintenance ticks
  // (which need tick timings, i.e. metrics) and slow traced requests
  // (which need neither).
  if ((options_.observability.metrics &&
       options_.observability.slow_tick_budget_ns > 0) ||
      options_.observability.slow_request_budget_ns > 0) {
    obs::FlightRecorderOptions rec;
    rec.dir = options_.observability.flight_recorder_dir;
    rec.max_dumps = options_.observability.flight_recorder_max_dumps;
    recorder_ = std::make_unique<obs::FlightRecorder>(std::move(rec));
  }
}

ChronicleDatabase::~ChronicleDatabase() { StopMonitoring(); }

ChronicleDatabase::ChronicleDatabase(RoutingMode routing)
    : ChronicleDatabase(DatabaseOptions().set_routing(routing)) {}

std::unique_ptr<ChronicleDatabase> ChronicleDatabase::Open(
    DatabaseOptions options) {
  return std::make_unique<ChronicleDatabase>(std::move(options));
}

Result<ChronicleId> ChronicleDatabase::CreateChronicle(const std::string& name,
                                                       Schema schema) {
  return CreateChronicle(name, std::move(schema), options_.default_retention);
}

Result<ChronicleId> ChronicleDatabase::CreateChronicle(
    const std::string& name, Schema schema, RetentionPolicy retention) {
  if (relations_by_name_.count(name) != 0) {
    return Status::AlreadyExists("'" + name + "' already names a relation");
  }
  if (retention.kind == RetentionPolicy::Kind::kTiered &&
      retention.window_rows == 0) {
    retention.window_rows = options_.storage.hot_rows;
  }
  CHRONICLE_ASSIGN_OR_RETURN(
      ChronicleId id, group_.CreateChronicle(name, std::move(schema),
                                             retention));
  if (retention.kind == RetentionPolicy::Kind::kTiered) {
    CHRONICLE_RETURN_NOT_OK(
        AttachTieredChronicle(id, name, retention.window_rows));
  }
  return id;
}

Status ChronicleDatabase::AttachTieredChronicle(ChronicleId id,
                                                const std::string& name,
                                                size_t hot_rows) {
  (void)hot_rows;
  if (store_ == nullptr) {
    if (options_.storage.data_dir.empty()) {
      return Status::InvalidArgument(
          "chronicle '" + name +
          "' wants tiered retention but DatabaseOptions::storage.data_dir "
          "is empty");
    }
    CHRONICLE_ASSIGN_OR_RETURN(store_,
                               store::TieredStore::Open(options_.storage));
    if (metrics_ != nullptr) {
      store_->AttachMetrics(metrics_.get(), store_metric_ids_);
    }
    // Write-ahead barrier: a seal may not outrun the durable log, or a
    // crash would recover warm rows the replayed WAL (and every view)
    // never saw. Reads the log through `this` so WAL attach/detach at
    // runtime is picked up.
    store_->SetPreSealBarrier([this]() {
      MutationLog* log = durability_.mutation_log;
      return log != nullptr ? log->Sync() : Status::OK();
    });
  }
  // Attach adopts any segments a previous run sealed (recovery).
  CHRONICLE_RETURN_NOT_OK(store_->AttachChronicle(id, name));
  CHRONICLE_ASSIGN_OR_RETURN(Chronicle * chron, group_.GetChronicle(id));
  chron->AttachTierSink(store_.get(), options_.storage.segment_rows);
  return Status::OK();
}

Result<RelationId> ChronicleDatabase::CreateRelation(
    const std::string& name, Schema schema, const std::string& key_column,
    IndexMode index_mode) {
  if (relations_by_name_.count(name) != 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  if (group_.FindChronicle(name).ok()) {
    return Status::AlreadyExists("'" + name + "' already names a chronicle");
  }
  CHRONICLE_ASSIGN_OR_RETURN(
      Relation rel, Relation::Make(name, std::move(schema), key_column, index_mode));
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(std::make_unique<Relation>(std::move(rel)));
  relations_by_name_[name] = id;
  return id;
}

Result<ViewId> ChronicleDatabase::CreateView(const std::string& name,
                                             CaExprPtr plan, SummarySpec spec,
                                             std::vector<ComputedColumn> computed,
                                             IndexMode index_mode) {
  CHRONICLE_ASSIGN_OR_RETURN(
      std::unique_ptr<PersistentView> view,
      PersistentView::Make(static_cast<ViewId>(views_.num_views()), name,
                           std::move(plan), std::move(spec),
                           std::move(computed), index_mode));
  // Registry mutation is serialized against the monitoring readers.
  std::lock_guard<std::mutex> lock(obs_mutex_);
  return views_.AddView(std::move(view));
}

namespace {

// RAII flag flip for the relations-frozen-during-maintenance invariant.
class ScopedFlag {
 public:
  explicit ScopedFlag(bool* flag) : flag_(flag) { *flag_ = true; }
  ~ScopedFlag() { *flag_ = false; }
  ScopedFlag(const ScopedFlag&) = delete;
  ScopedFlag& operator=(const ScopedFlag&) = delete;

 private:
  bool* flag_;
};

// One chronicle's retained row stream for the backfill merge: warm
// segments first (pull cursor over mmap'd files), then the hot deque.
struct BackfillStream {
  ChronicleId id = 0;
  store::TieredStore::WarmCursor warm;
  bool warm_done = true;
  ChronicleRow warm_row;
  const std::deque<ChronicleRow>* hot = nullptr;
  size_t hot_pos = 0;

  Status Init(const store::TieredStore* store, const Chronicle* chron) {
    id = chron->id();
    hot = &chron->retained();
    if (store != nullptr && chron->tier_sink() != nullptr) {
      warm = store->OpenWarmCursor(id);
      CHRONICLE_ASSIGN_OR_RETURN(bool more, warm.Next(&warm_row));
      warm_done = !more;
    }
    return Status::OK();
  }
  bool done() const { return warm_done && hot_pos >= hot->size(); }
  SeqNum peek_sn() const {
    return !warm_done ? warm_row.sn : (*hot)[hot_pos].sn;
  }
  Status Pop(ChronicleRow* out) {
    if (!warm_done) {
      *out = std::move(warm_row);
      CHRONICLE_ASSIGN_OR_RETURN(bool more, warm.Next(&warm_row));
      warm_done = !more;
      return Status::OK();
    }
    *out = (*hot)[hot_pos++];  // copy; the chronicle keeps its rows
    return Status::OK();
  }
};

}  // namespace

Result<BackfillReport> ChronicleDatabase::RegisterViewWithBackfill(
    const std::string& name, CaExprPtr plan, SummarySpec spec,
    std::vector<ComputedColumn> computed, IndexMode index_mode) {
  CHRONICLE_ASSIGN_OR_RETURN(
      ViewId id, CreateView(name, std::move(plan), std::move(spec),
                            std::move(computed), index_mode));
  BackfillReport report;
  report.view = id;

  // The replay holds the stats mutex end to end: monitoring snapshots see
  // either the pre-backfill or the converged view, never a torn middle.
  std::lock_guard<std::mutex> lock(obs_mutex_);
  ScopedFlag in_maintenance(&maintenance_in_progress_);

  CHRONICLE_ASSIGN_OR_RETURN(const std::set<ChronicleId>* bases,
                             views_.ViewChronicles(id));
  std::vector<BackfillStream> streams;
  streams.reserve(bases->size());
  for (ChronicleId cid : *bases) {
    CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* chron,
                               group_.GetChronicle(cid));
    if (chron->total_appended() != chron->num_retained()) {
      return Status::FailedPrecondition(
          "cannot backfill '" + name + "': chronicle '" + chron->name() +
          "' retains " + std::to_string(chron->num_retained()) + " of " +
          std::to_string(chron->total_appended()) +
          " appended rows; the view stays registered and is maintained "
          "from now on");
    }
    BackfillStream stream;
    CHRONICLE_RETURN_NOT_OK(stream.Init(store_.get(), chron));
    streams.push_back(std::move(stream));
  }

  // K-way merge by SN: rows sharing one sequence number — across
  // chronicles — are replayed as ONE event, exactly as they were appended
  // (the SN-equijoin depends on it). Chronons are not persisted with
  // retained rows, so replayed events carry chronon == sn.
  MaintenanceReport mreport;
  while (true) {
    SeqNum sn = 0;
    bool any = false;
    for (const BackfillStream& s : streams) {
      if (s.done()) continue;
      if (!any || s.peek_sn() < sn) sn = s.peek_sn();
      any = true;
    }
    if (!any) break;
    AppendEvent event;
    event.sn = sn;
    event.chronon = static_cast<Chronon>(sn);
    for (BackfillStream& s : streams) {
      if (s.done() || s.peek_sn() != sn) continue;
      std::vector<Tuple> tuples;
      ChronicleRow row;
      while (!s.done() && s.peek_sn() == sn) {
        CHRONICLE_RETURN_NOT_OK(s.Pop(&row));
        tuples.push_back(std::move(row.values));
      }
      report.rows_replayed += tuples.size();
      event.inserts.emplace_back(s.id, std::move(tuples));
    }
    mreport.views.clear();  // per-event outcomes would grow unbounded
    mreport.batches.clear();
    CHRONICLE_RETURN_NOT_OK(views_.BackfillView(id, event, &mreport));
    ++report.events_replayed;
  }
  report.delta_rows_applied = mreport.delta_rows_applied;
  ++backfill_views_;
  backfill_rows_ += report.rows_replayed;
  return report;
}

Status ChronicleDatabase::CreatePeriodicView(
    const std::string& name, CaExprPtr plan, SummarySpec spec,
    std::shared_ptr<const Calendar> calendar, PeriodicViewOptions options) {
  if (periodic_by_name_.count(name) != 0) {
    return Status::AlreadyExists("periodic view '" + name + "' already exists");
  }
  CHRONICLE_ASSIGN_OR_RETURN(
      std::unique_ptr<PeriodicViewSet> set,
      PeriodicViewSet::Make(name, std::move(plan), std::move(spec),
                            std::move(calendar), options));
  periodic_by_name_[name] = periodic_.size();
  periodic_.push_back(std::move(set));
  return Status::OK();
}

Status ChronicleDatabase::CreateSlidingView(const std::string& name,
                                            CaExprPtr plan, SummarySpec spec,
                                            Chronon origin, Chronon pane_width,
                                            int64_t num_panes,
                                            IndexMode index_mode) {
  if (sliding_by_name_.count(name) != 0) {
    return Status::AlreadyExists("sliding view '" + name + "' already exists");
  }
  CHRONICLE_ASSIGN_OR_RETURN(
      std::unique_ptr<SlidingWindowView> view,
      SlidingWindowView::Make(name, std::move(plan), std::move(spec), origin,
                              pane_width, num_panes, index_mode));
  sliding_by_name_[name] = sliding_.size();
  sliding_.push_back(std::move(view));
  return Status::OK();
}

Status ChronicleDatabase::DropView(const std::string& name) {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  if (views_.FindView(name).ok()) return views_.DropView(name);
  auto periodic_it = periodic_by_name_.find(name);
  if (periodic_it != periodic_by_name_.end()) {
    periodic_[periodic_it->second].reset();  // tombstone
    periodic_by_name_.erase(periodic_it);
    return Status::OK();
  }
  auto sliding_it = sliding_by_name_.find(name);
  if (sliding_it != sliding_by_name_.end()) {
    sliding_[sliding_it->second].reset();  // tombstone
    sliding_by_name_.erase(sliding_it);
    return Status::OK();
  }
  return Status::NotFound("no view named '" + name + "'");
}

Status ChronicleDatabase::DropRelation(const std::string& name) {
  auto it = relations_by_name_.find(name);
  if (it == relations_by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  const Relation* target = relations_[it->second].get();
  // Plans hold borrowed Relation pointers: refuse while referenced.
  std::set<const Relation*> referenced;
  for (ViewId id = 0; id < views_.num_views(); ++id) {
    Result<const PersistentView*> view =
        static_cast<const ViewManager&>(views_).GetView(id);
    if (view.ok()) (*view)->plan()->CollectRelations(&referenced);
  }
  ForEachPeriodicView([&](const PeriodicViewSet& set) {
    set.plan()->CollectRelations(&referenced);
  });
  ForEachSlidingView([&](const SlidingWindowView& view) {
    view.plan()->CollectRelations(&referenced);
  });
  if (referenced.count(target) != 0) {
    return Status::FailedPrecondition(
        "relation '" + name +
        "' is still referenced by a view; drop the view(s) first");
  }
  relations_[it->second].reset();  // tombstone: addresses stay stable
  relations_by_name_.erase(it);
  return Status::OK();
}

Result<CaExprPtr> ChronicleDatabase::ScanChronicle(
    const std::string& name) const {
  CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id, group_.FindChronicle(name));
  auto it = scan_cache_.find(id);
  if (it != scan_cache_.end()) return it->second;
  CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* chron, group_.GetChronicle(id));
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr scan, CaExpr::Scan(*chron));
  scan_cache_[id] = scan;
  return scan;
}

Result<Relation*> ChronicleDatabase::GetRelation(const std::string& name) {
  auto it = relations_by_name_.find(name);
  if (it == relations_by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return relations_[it->second].get();
}

Result<const Relation*> ChronicleDatabase::GetRelation(
    const std::string& name) const {
  auto it = relations_by_name_.find(name);
  if (it == relations_by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return static_cast<const Relation*>(relations_[it->second].get());
}

Result<AppendResult> ChronicleDatabase::Maintain(Result<AppendEvent> event) {
  if (!event.ok()) return event.status();
  AppendResult result;
  result.event = std::move(event).value();
  // The monitoring endpoint and the history sampler read stats from their
  // own threads; holding the stats mutex across the fold makes every
  // snapshot a between-ticks cut.
  std::lock_guard<std::mutex> lock(obs_mutex_);
  // Delta workers read relations lock-free; proactive updates must never
  // overlap maintenance (enforced by the guard in the relation DML paths).
  ScopedFlag in_maintenance(&maintenance_in_progress_);
  obs::RequestScopeState* req_scope = obs::RequestScope::Current();
  const int64_t maintain_start =
      req_scope != nullptr ? req_scope->tracer->NowNanos() : 0;
  CHRONICLE_ASSIGN_OR_RETURN(result.maintenance,
                             views_.ProcessAppend(result.event));
  for (const auto& set : periodic_) {
    if (set != nullptr) CHRONICLE_RETURN_NOT_OK(set->ProcessAppend(result.event));
  }
  for (const auto& view : sliding_) {
    if (view != nullptr) {
      CHRONICLE_RETURN_NOT_OK(view->ProcessAppend(result.event));
    }
  }
  if (req_scope != nullptr) {
    // One maintain span per tick, stamped with this engine's shard so the
    // merged tree attributes fan-out work (detail = delta rows folded).
    req_scope->tracer->Emit(
        req_scope->ctx, req_scope->tracer->NewSpanId(), req_scope->root_span,
        obs::ReqStage::kMaintain, trace_shard_, req_scope->worker,
        maintain_start, req_scope->tracer->NowNanos() - maintain_start,
        result.maintenance.delta_rows_applied);
  }
  ++appends_processed_;
  if (recorder_ != nullptr &&
      options_.observability.slow_tick_budget_ns > 0 &&
      result.maintenance.tick_ns >
          options_.observability.slow_tick_budget_ns) {
    RecordSlowTick(result);
  }
  return result;
}

Status ChronicleDatabase::ValidateAppendForLog(
    const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>& inserts,
    Chronon chronon) const {
  if (chronon < group_.last_chronon()) {
    return Status::OutOfRange("chronon " + std::to_string(chronon) +
                              " regresses below " +
                              std::to_string(group_.last_chronon()));
  }
  if (inserts.empty()) {
    return Status::InvalidArgument("append event has no inserts");
  }
  for (const auto& [id, tuples] : inserts) {
    CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* target,
                               group_.GetChronicle(id));
    if (tuples.empty()) {
      return Status::InvalidArgument("empty tuple batch for chronicle '" +
                                     target->name() + "'");
    }
    for (const Tuple& t : tuples) {
      CHRONICLE_RETURN_NOT_OK(ValidateTuple(target->schema(), t));
    }
  }
  return Status::OK();
}

Result<AppendResult> ChronicleDatabase::AppendInternal(
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts,
    Chronon chronon) {
  obs::RequestScopeState* req_scope = obs::RequestScope::Current();
  const int64_t wal_start =
      req_scope != nullptr ? req_scope->tracer->NowNanos() : 0;
  if (durability_.mutation_log != nullptr) {
    // Write-ahead: validate (so the log never records a tick that fails to
    // apply), then log under the sequence number the tick will receive.
    CHRONICLE_RETURN_NOT_OK(ValidateAppendForLog(inserts, chronon));
    CHRONICLE_RETURN_NOT_OK(durability_.mutation_log->LogAppend(
        group_.last_sn() + 1, chronon, inserts));
  }
  if (req_scope != nullptr) {
    // Emitted even with no log attached (~0ns) so every sampled append's
    // tree carries the full fixed stage set.
    req_scope->tracer->Emit(
        req_scope->ctx, req_scope->tracer->NewSpanId(), req_scope->root_span,
        obs::ReqStage::kWalCommit, trace_shard_, req_scope->worker, wal_start,
        req_scope->tracer->NowNanos() - wal_start,
        durability_.mutation_log != nullptr ? 1 : 0);
  }
  return Maintain(group_.AppendMulti(std::move(inserts), chronon));
}

Result<AppendResult> ChronicleDatabase::Append(const std::string& chronicle,
                                               std::vector<Tuple> tuples) {
  return Append(chronicle, std::move(tuples), group_.last_chronon() + 1);
}

Result<AppendResult> ChronicleDatabase::Append(const std::string& chronicle,
                                               std::vector<Tuple> tuples,
                                               Chronon chronon) {
  CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id, group_.FindChronicle(chronicle));
  std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
  inserts.emplace_back(id, std::move(tuples));
  return AppendInternal(std::move(inserts), chronon);
}

Result<AppendResult> ChronicleDatabase::AppendMulti(
    std::vector<std::pair<std::string, std::vector<Tuple>>> inserts,
    Chronon chronon) {
  std::vector<std::pair<ChronicleId, std::vector<Tuple>>> resolved;
  resolved.reserve(inserts.size());
  for (auto& [name, tuples] : inserts) {
    CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id, group_.FindChronicle(name));
    resolved.emplace_back(id, std::move(tuples));
  }
  return AppendInternal(std::move(resolved), chronon);
}

Result<std::vector<AppendResult>> ChronicleDatabase::AppendMany(
    const std::string& chronicle, std::vector<std::vector<Tuple>> batches) {
  if (batches.empty()) {
    return Status::InvalidArgument("AppendMany with no batches");
  }
  CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id, group_.FindChronicle(chronicle));
  std::vector<std::vector<std::pair<ChronicleId, std::vector<Tuple>>>> ticks;
  ticks.reserve(batches.size());
  for (auto& tuples : batches) {
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
    inserts.emplace_back(id, std::move(tuples));
    ticks.push_back(std::move(inserts));
  }
  const Chronon first_chronon = group_.last_chronon() + 1;
  obs::RequestScopeState* req_scope = obs::RequestScope::Current();
  const int64_t wal_start =
      req_scope != nullptr ? req_scope->tracer->NowNanos() : 0;
  if (durability_.mutation_log != nullptr) {
    // Write-ahead, batch-wide: validate EVERY tick against the SN/chronon
    // sequence it will receive, then log the whole batch (one group-commit
    // sync) before the first tick is applied. Nothing is logged — and
    // nothing applied — if any tick would fail.
    std::vector<PendingAppend> pending;
    pending.reserve(ticks.size());
    for (size_t i = 0; i < ticks.size(); ++i) {
      const Chronon chronon = first_chronon + static_cast<Chronon>(i);
      CHRONICLE_RETURN_NOT_OK(ValidateAppendForLog(ticks[i], chronon));
      pending.push_back(PendingAppend{
          group_.last_sn() + 1 + static_cast<SeqNum>(i), chronon, &ticks[i]});
    }
    CHRONICLE_RETURN_NOT_OK(durability_.mutation_log->LogAppendMany(pending));
  }
  if (req_scope != nullptr) {
    // One wal_commit span for the whole group-committed batch (emitted even
    // with no log attached — see AppendInternal). detail = ticks covered.
    req_scope->tracer->Emit(
        req_scope->ctx, req_scope->tracer->NewSpanId(), req_scope->root_span,
        obs::ReqStage::kWalCommit, trace_shard_, req_scope->worker, wal_start,
        req_scope->tracer->NowNanos() - wal_start,
        durability_.mutation_log != nullptr ? ticks.size() : 0);
  }
  std::vector<AppendResult> results;
  results.reserve(ticks.size());
  for (size_t i = 0; i < ticks.size(); ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(
        AppendResult result,
        Maintain(group_.AppendMulti(std::move(ticks[i]),
                                    first_chronon + static_cast<Chronon>(i))));
    results.push_back(std::move(result));
  }
  if (metrics_ != nullptr) {
    metrics_->Observe(m_append_batch_ticks_,
                      static_cast<int64_t>(results.size()));
  }
  return results;
}

obs::StatsSnapshot ChronicleDatabase::CollectStats() const {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  return CollectStatsLocked();
}

obs::StatsSnapshot ChronicleDatabase::CollectStatsLocked() const {
  obs::StatsSnapshot snap;
  snap.appends_processed = appends_processed_;
  snap.live_views = views_.num_live_views();
  snap.delta_cache_hits = views_.delta_cache_hits();
  snap.delta_cache_misses = views_.delta_cache_misses();
  if (metrics_ != nullptr) metrics_->Snapshot(&snap.metrics);
  views_.SnapshotViewStats(&snap.views);
  if (trace_ != nullptr) {
    snap.trace_emitted = trace_->total_emitted();
    snap.trace_capacity = trace_->capacity();
  }
  if (store_ != nullptr) {
    snap.storage.attached = true;
    snap.storage.data_dir = store_->options().data_dir;
    const store::StoreCounters counters = store_->counters();
    snap.storage.segments_sealed = counters.segments_sealed;
    snap.storage.segments_evicted = counters.segments_evicted;
    snap.storage.segments_quarantined = counters.segments_quarantined;
    snap.storage.rows_sealed = counters.rows_sealed;
    snap.storage.rows_evicted = counters.rows_evicted;
    snap.storage.bytes_written = counters.bytes_written;
    snap.storage.seal_failures = counters.seal_failures;
    snap.storage.backfill_views = backfill_views_;
    snap.storage.backfill_rows = backfill_rows_;
    for (ChronicleId id = 0; id < group_.num_chronicles(); ++id) {
      const Chronicle* chron = group_.GetChronicle(id).value();
      if (chron->tier_sink() == nullptr) continue;
      const store::WarmTierInfo warm = store_->TierOf(id);
      obs::ChronicleTierSnapshot tier;
      tier.name = chron->name();
      tier.hot_rows = chron->retained().size();
      tier.hot_bytes = chron->MemoryFootprint();
      tier.warm_segments = warm.segments;
      tier.warm_rows = warm.rows;
      tier.warm_bytes = warm.bytes;
      tier.warm_raw_bytes = warm.raw_bytes;
      tier.last_sealed_sn = warm.last_sealed_sn;
      snap.storage.chronicles.push_back(std::move(tier));
    }
  }
  if (stats_enricher_) stats_enricher_(&snap);
  return snap;
}

void ChronicleDatabase::set_stats_enricher(
    std::function<void(obs::StatsSnapshot*)> enricher) {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  stats_enricher_ = std::move(enricher);
}

Status ChronicleDatabase::StartMonitoring(uint16_t port) {
  if (http_ != nullptr) {
    return Status::FailedPrecondition("monitoring endpoint already active");
  }
  if (options_.observability.history_capacity > 0 && history_ == nullptr) {
    history_ = std::make_unique<obs::StatsHistory>(
        options_.observability.history_capacity);
  }
  auto server = std::make_unique<obs::HttpServer>();
  CHRONICLE_RETURN_NOT_OK(server->Start(
      port,
      [this](const obs::HttpRequest& req) { return HandleHttpRequest(req); }));
  http_ = std::move(server);
  if (history_ != nullptr) {
    sampler_ = std::make_unique<obs::StatsSampler>(
        history_.get(), [this] { return CollectStats(); },
        options_.observability.history_interval_ms);
  }
  return Status::OK();
}

void ChronicleDatabase::StopMonitoring() {
  http_.reset();     // joins the accept thread; no more handler callbacks
  sampler_.reset();  // joins the sampler; history_ (the data) survives
}

bool ChronicleDatabase::monitoring_active() const {
  return http_ != nullptr && http_->running();
}

uint16_t ChronicleDatabase::monitoring_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

void ChronicleDatabase::SampleStatsNow() {
  if (history_ == nullptr) {
    history_ = std::make_unique<obs::StatsHistory>(
        options_.observability.history_capacity);
  }
  if (sampler_ != nullptr) {
    sampler_->SampleNow();
    return;
  }
  const int64_t t_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  history_->Push(t_ns, CollectStats());
}

Result<std::string> ChronicleDatabase::ExplainView(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  return views_.ExplainView(name);
}

Result<std::string> ChronicleDatabase::ExplainViewJson(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  return views_.ExplainViewJson(name);
}

void ChronicleDatabase::SetPlanProfiling(bool enabled) {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  options_.observability.profile_plan_slots = enabled;
  views_.set_plan_profiling(enabled, options_.observability.slot_sample_period);
}

uint64_t ChronicleDatabase::flight_recorder_dumps() const {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  return recorder_ != nullptr ? recorder_->dumps_written() : 0;
}

Result<std::string> ChronicleDatabase::RecordSlowRequest(
    uint64_t trace_hi, uint64_t trace_lo, int64_t total_ns, int64_t budget_ns,
    const std::string& snapshot_json, const std::string& trace_json) {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  if (recorder_ == nullptr) {
    return Status::FailedPrecondition(
        "no flight recorder (set slow_request_budget_ns at open)");
  }
  return recorder_->RecordSlowRequest(trace_hi, trace_lo, total_ns, budget_ns,
                                      snapshot_json, trace_json);
}

void ChronicleDatabase::RecordSlowTick(const AppendResult& result) {
  // Called under obs_mutex_. Best-effort: a dump failure must never fail
  // the append that triggered it.
  const std::string snapshot_json = obs::RenderJson(CollectStatsLocked());
  std::string trace_json = "null";
  if (trace_ != nullptr && trace_->enabled()) {
    trace_json = obs::RenderTraceJson(trace_->Snapshot(),
                                      trace_->total_emitted(),
                                      trace_->capacity());
  }
  // The offending view: most delta rows this tick (a heuristic, but the
  // dominant cost on the slow path is folding delta rows).
  std::string explain_json = "null";
  const MaintenanceViewOutcome* worst = nullptr;
  for (const MaintenanceViewOutcome& outcome : result.maintenance.views) {
    if (worst == nullptr || outcome.delta_rows > worst->delta_rows) {
      worst = &outcome;
    }
  }
  if (worst != nullptr) {
    Result<const PersistentView*> view =
        static_cast<const ViewManager&>(views_).GetView(worst->view);
    if (view.ok()) {
      Result<std::string> explain = views_.ExplainViewJson((*view)->name());
      if (explain.ok()) explain_json = *std::move(explain);
    }
  }
  Result<std::string> dumped = recorder_->RecordSlowTick(
      result.event.sn, result.maintenance.tick_ns,
      options_.observability.slow_tick_budget_ns, snapshot_json, trace_json,
      explain_json);
  (void)dumped;
}

obs::HttpResponse ChronicleDatabase::HandleHttpRequest(
    const obs::HttpRequest& request) const {
  obs::HttpResponse response;
  if (request.path == "/metrics") {
    // Prometheus scrapers want the version-suffixed content type.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::RenderPrometheus(CollectStats());
    return response;
  }
  if (request.path == "/stats.json") {
    response.content_type = "application/json";
    response.body = obs::RenderJson(CollectStats());
    return response;
  }
  if (request.path == "/trace.json") {
    response.content_type = "application/json";
    if (trace_ != nullptr && trace_->enabled()) {
      response.body = obs::RenderTraceJson(
          trace_->Snapshot(), trace_->total_emitted(), trace_->capacity());
    } else {
      response.body = "{\"emitted\":0,\"capacity\":0,\"spans\":[]}";
    }
    return response;
  }
  if (request.path == "/requests.json") {
    response.content_type = "application/json";
    if (request_tracer_ != nullptr && request_tracer_->enabled()) {
      response.body = request_tracer_->RenderRequestsJson();
    } else {
      response.body =
          "{\"emitted\":0,\"capacity\":0,\"sample_rate\":0,\"traces\":[]}";
    }
    return response;
  }
  if (request.path == "/history.json") {
    response.content_type = "application/json";
    if (history_ != nullptr) {
      response.body = obs::RenderHistoryJson(
          history_->Windows(), history_->total_samples(), history_->capacity());
    } else {
      response.body = "{\"samples\":0,\"capacity\":0,\"windows\":[]}";
    }
    return response;
  }
  if (request.path == "/healthz") {
    const obs::StatsSnapshot snap = CollectStats();
    response.content_type = "application/json";
    response.body =
        "{\"status\":\"ok\",\"appends_processed\":" +
        std::to_string(snap.appends_processed) +
        ",\"live_views\":" + std::to_string(snap.live_views) +
        ",\"wal_attached\":" + (snap.wal.attached ? "true" : "false") + "}";
    return response;
  }
  // /views/<name>/explain.json
  const std::string prefix = "/views/";
  const std::string suffix = "/explain.json";
  if (request.path.size() > prefix.size() + suffix.size() &&
      request.path.compare(0, prefix.size(), prefix) == 0 &&
      request.path.compare(request.path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    const std::string name = request.path.substr(
        prefix.size(), request.path.size() - prefix.size() - suffix.size());
    Result<std::string> explain = ExplainViewJson(name);
    if (!explain.ok()) {
      response.status = 404;
      response.content_type = "application/json";
      response.body = "{\"error\":\"" +
                      obs::JsonEscape(explain.status().message()) + "\"}";
      return response;
    }
    response.content_type = "application/json";
    response.body = *std::move(explain);
    return response;
  }
  response.status = 404;
  response.body = "not found: " + request.path + "\n";
  return response;
}

Status ChronicleDatabase::InsertInto(const std::string& relation, Tuple row) {
  if (maintenance_in_progress_) {
    return Status::FailedPrecondition(
        "relation mutated during append maintenance; relations are "
        "proactive-only (§2.3) and delta workers read them lock-free");
  }
  CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, GetRelation(relation));
  if (durability_.mutation_log != nullptr) {
    // Mirror Relation::Insert's checks so the log only records inserts
    // that will apply.
    CHRONICLE_RETURN_NOT_OK(ValidateTuple(rel->schema(), row));
    if (rel->has_key()) {
      const Value& key = row[rel->key_index()];
      if (key.is_null()) {
        return Status::InvalidArgument("NULL key in relation '" + relation +
                                       "'");
      }
      if (rel->LookupByKey(key).ok()) {
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in relation '" + relation + "'");
      }
    }
    CHRONICLE_RETURN_NOT_OK(
        durability_.mutation_log->LogRelationInsert(relation, row));
  }
  return rel->Insert(std::move(row));
}

Status ChronicleDatabase::UpdateRelation(const std::string& relation,
                                         const Value& key, Tuple new_row) {
  if (maintenance_in_progress_) {
    return Status::FailedPrecondition(
        "relation mutated during append maintenance; relations are "
        "proactive-only (§2.3) and delta workers read them lock-free");
  }
  CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, GetRelation(relation));
  if (durability_.mutation_log != nullptr) {
    CHRONICLE_RETURN_NOT_OK(ValidateTuple(rel->schema(), new_row));
    if (!rel->has_key()) {
      return Status::FailedPrecondition("relation '" + relation +
                                        "' has no key");
    }
    CHRONICLE_RETURN_NOT_OK(rel->LookupByKey(key).status());
    const Value& new_key = new_row[rel->key_index()];
    if (new_key.is_null()) {
      return Status::InvalidArgument("NULL key in relation '" + relation +
                                     "'");
    }
    if (new_key != key && rel->LookupByKey(new_key).ok()) {
      return Status::AlreadyExists("duplicate key " + new_key.ToString() +
                                   " in relation '" + relation + "'");
    }
    CHRONICLE_RETURN_NOT_OK(
        durability_.mutation_log->LogRelationUpdate(relation, key, new_row));
  }
  return rel->UpdateByKey(key, std::move(new_row));
}

Status ChronicleDatabase::DeleteFrom(const std::string& relation,
                                     const Value& key) {
  if (maintenance_in_progress_) {
    return Status::FailedPrecondition(
        "relation mutated during append maintenance; relations are "
        "proactive-only (§2.3) and delta workers read them lock-free");
  }
  CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, GetRelation(relation));
  if (durability_.mutation_log != nullptr) {
    if (!rel->has_key()) {
      return Status::FailedPrecondition("relation '" + relation +
                                        "' has no key");
    }
    CHRONICLE_RETURN_NOT_OK(rel->LookupByKey(key).status());
    CHRONICLE_RETURN_NOT_OK(
        durability_.mutation_log->LogRelationDelete(relation, key));
  }
  return rel->DeleteByKey(key);
}

Result<Tuple> ChronicleDatabase::QueryView(const std::string& view,
                                           const Tuple& key) const {
  CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* v, views_.FindView(view));
  return v->Lookup(key);
}

Result<std::vector<Tuple>> ChronicleDatabase::ScanView(
    const std::string& view) const {
  CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* v, views_.FindView(view));
  std::vector<Tuple> rows;
  CHRONICLE_RETURN_NOT_OK(v->Scan([&](const Tuple& row) { rows.push_back(row); }));
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return TupleCompare(a, b) < 0;
  });
  return rows;
}

Result<const PersistentView*> ChronicleDatabase::GetView(
    const std::string& name) const {
  return views_.FindView(name);
}

Result<const PeriodicViewSet*> ChronicleDatabase::GetPeriodicView(
    const std::string& name) const {
  auto it = periodic_by_name_.find(name);
  if (it == periodic_by_name_.end()) {
    return Status::NotFound("no periodic view named '" + name + "'");
  }
  return static_cast<const PeriodicViewSet*>(periodic_[it->second].get());
}

void ChronicleDatabase::ForEachRelation(
    const std::function<void(const Relation&)>& fn) const {
  for (const auto& rel : relations_) {
    if (rel != nullptr) fn(*rel);
  }
}

void ChronicleDatabase::ForEachPeriodicView(
    const std::function<void(const PeriodicViewSet&)>& fn) const {
  for (const auto& set : periodic_) {
    if (set != nullptr) fn(*set);
  }
}

void ChronicleDatabase::ForEachSlidingView(
    const std::function<void(const SlidingWindowView&)>& fn) const {
  for (const auto& view : sliding_) {
    if (view != nullptr) fn(*view);
  }
}

Result<PeriodicViewSet*> ChronicleDatabase::GetPeriodicViewMutable(
    const std::string& name) {
  auto it = periodic_by_name_.find(name);
  if (it == periodic_by_name_.end()) {
    return Status::NotFound("no periodic view named '" + name + "'");
  }
  return periodic_[it->second].get();
}

Result<SlidingWindowView*> ChronicleDatabase::GetSlidingViewMutable(
    const std::string& name) {
  auto it = sliding_by_name_.find(name);
  if (it == sliding_by_name_.end()) {
    return Status::NotFound("no sliding view named '" + name + "'");
  }
  return sliding_[it->second].get();
}

Result<std::vector<ChronicleRow>> ChronicleDatabase::QueryRecentWindow(
    const CaExpr& plan) const {
  NaiveEngine engine(&group_, nullptr, ScanScope::kRetainedWindow);
  return engine.Evaluate(plan);
}

Result<std::vector<Tuple>> ChronicleDatabase::QueryRecentWindowSummary(
    const CaExpr& plan, const SummarySpec& spec) const {
  NaiveEngine engine(&group_, nullptr, ScanScope::kRetainedWindow);
  return engine.EvaluateSummary(plan, spec);
}

Result<const SlidingWindowView*> ChronicleDatabase::GetSlidingView(
    const std::string& name) const {
  auto it = sliding_by_name_.find(name);
  if (it == sliding_by_name_.end()) {
    return Status::NotFound("no sliding view named '" + name + "'");
  }
  return static_cast<const SlidingWindowView*>(sliding_[it->second].get());
}

}  // namespace chronicle
