// ChronicleDatabase: the user-facing facade of the chronicle data model —
// the quadruple (C, R, L, V) of Definition 2.1 plus the maintenance driver.
//
//   C — a chronicle group (shared sequence-number domain);
//   R — relations, updated proactively;
//   L — view definitions: chronicle-algebra plans + SCA summarization
//       (built directly through CaExpr/SummarySpec, or declaratively via
//       CQL, see cql/);
//   V — persistent views, periodic view sets, and sliding-window views,
//       all maintained automatically on every append.
//
// A single Append() call performs the transaction-recording step the paper
// targets: assign a fresh sequence number, store (per retention policy),
// and incrementally maintain every affected view before returning.

#ifndef CHRONICLE_DB_DATABASE_H_
#define CHRONICLE_DB_DATABASE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "periodic/periodic_view.h"
#include "periodic/sliding_window.h"
#include "storage/chronicle_group.h"
#include "storage/relation.h"
#include "store/tiered_store.h"
#include "views/view_manager.h"

namespace chronicle {

namespace obs {
// Monitoring machinery (obs/http_server.h, obs/history.h,
// obs/flight_recorder.h), forward-declared so the facade header stays
// light; the out-of-line destructor below keeps unique_ptr happy.
class HttpServer;
class StatsHistory;
class StatsSampler;
class FlightRecorder;
class RequestTracer;
struct HttpRequest;
struct HttpResponse;
}  // namespace obs

class ChronicleDatabase;

namespace checkpoint {
// Declared here so checkpoint restore — and nothing else — can be granted
// friend access to the append-counter rewind below.
Status RestoreDatabase(const std::string& image, ChronicleDatabase* db);
}  // namespace checkpoint

// Result of one Append: the event that was recorded plus what maintenance
// it triggered.
struct AppendResult {
  AppendEvent event;
  MaintenanceReport maintenance;
};

// Durability hook (implemented by src/wal): each DML entry point calls
// exactly one Log* method after the operation has been validated and
// BEFORE it is applied, so the log never records an operation that fails
// and never misses one that succeeds. A non-OK status from the hook aborts
// the operation. `inserts` carry chronicle ids; resolve them to names (the
// durable identity) through the database's group().
// One not-yet-applied append tick of an AppendMany batch, with the SN and
// chronon it WILL receive. `inserts` is borrowed from the caller and only
// valid for the duration of the LogAppendMany call.
struct PendingAppend {
  SeqNum sn = 0;
  Chronon chronon = 0;
  const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>* inserts =
      nullptr;
};

class MutationLog {
 public:
  virtual ~MutationLog() = default;
  virtual Status LogAppend(
      SeqNum sn, Chronon chronon,
      const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>&
          inserts) = 0;
  // Logs a whole AppendMany batch. Ticks must be recorded in order (their
  // SNs are consecutive); the write-ahead contract is per BATCH: every
  // tick is logged before the FIRST one is applied, so a crash can never
  // leave the log missing a tick that was applied. The default simply
  // loops LogAppend; implementations override to amortize one group-commit
  // sync across the batch.
  virtual Status LogAppendMany(const std::vector<PendingAppend>& ticks) {
    for (const PendingAppend& tick : ticks) {
      CHRONICLE_RETURN_NOT_OK(LogAppend(tick.sn, tick.chronon, *tick.inserts));
    }
    return Status::OK();
  }
  // Forces everything logged so far to stable storage. The tiered store
  // calls this (through the database's pre-seal barrier) before writing a
  // segment, upholding the write-ahead rule: rows never become durable in
  // the store before their log records are. Default: nothing to sync.
  virtual Status Sync() { return Status::OK(); }
  virtual Status LogRelationInsert(const std::string& relation,
                                   const Tuple& row) = 0;
  virtual Status LogRelationUpdate(const std::string& relation,
                                   const Value& key, const Tuple& row) = 0;
  virtual Status LogRelationDelete(const std::string& relation,
                                   const Value& key) = 0;
};

struct DurabilityOptions {
  // Borrowed write-ahead hook; must outlive the database. nullptr runs the
  // database without durability (the seed behavior).
  MutationLog* mutation_log = nullptr;
};

// Horizontal partitioning (src/shard/sharded_db.h). ChronicleDatabase
// itself ignores this block — it always runs a single engine.
// shard::ShardedDatabase::Open consumes it to decide how many per-shard
// engines to spin up and which column routes each row. num_shards == 1 is
// the equivalence oracle: the router forwards every call verbatim to one
// engine, so results are bit-identical to an unsharded database.
struct ShardingOptions {
  // Number of shards (per-shard engines). 1 = unsharded passthrough.
  size_t num_shards = 1;
  // Column that routes rows to shards. Every chronicle must have a column
  // with this name. Empty = each chronicle's first column.
  std::string partition_key;
  // Capacity (rounded up to a power of two) of each producer->shard SPSC
  // ring used by the async ingest pipeline.
  size_t queue_capacity = 1024;
  // When non-empty, ShardedDatabase owns one WAL per shard under
  // <wal_dir>/shard-<k> and recovery replays each shard independently.
  // Empty = no router-owned durability (callers may still attach their
  // own per-engine logs).
  std::string wal_dir;
};

// The single configuration entry point for a ChronicleDatabase. Every knob
// that used to be scattered across the constructor (routing), post-hoc
// setters (long removed), and per-call default arguments (retention) lives
// here, next to the new ObservabilityOptions. Runtime reconfiguration goes
// through ReconfigureMaintenance / AttachMutationLog only.
// Builder-style: each set_* returns *this, so construction reads as one
// expression:
//
//   ChronicleDatabase db(DatabaseOptions()
//                            .set_routing(RoutingMode::kEqIndex)
//                            .set_num_threads(4)
//                            .set_trace_capacity(1024));
//
// Plain aggregate access (options.maintenance.num_threads = 4) works too;
// the setters are sugar, not gatekeepers.
struct DatabaseOptions {
  RoutingMode routing = RoutingMode::kEqIndex;
  MaintenanceOptions maintenance;
  DurabilityOptions durability;
  // Retention applied by CreateChronicle calls that do not pass their own
  // policy.
  RetentionPolicy default_retention = RetentionPolicy::All();
  obs::ObservabilityOptions observability;
  // Tiered storage (src/store): chronicles created with kTiered retention
  // spill rows past their hot window into segment files under
  // storage.data_dir. An empty data_dir leaves the store detached and
  // makes kTiered chronicles an error.
  store::StorageOptions storage;
  // Horizontal partitioning, consumed by shard::ShardedDatabase::Open
  // (ignored by a directly-constructed ChronicleDatabase).
  ShardingOptions sharding;

  DatabaseOptions& set_routing(RoutingMode mode) {
    routing = mode;
    return *this;
  }
  DatabaseOptions& set_maintenance(const MaintenanceOptions& m) {
    maintenance = m;
    return *this;
  }
  DatabaseOptions& set_num_threads(size_t n) {
    maintenance.num_threads = n;
    return *this;
  }
  DatabaseOptions& set_use_compiled_plans(bool on) {
    maintenance.use_compiled_plans = on;
    return *this;
  }
  DatabaseOptions& set_use_columnar_kernels(bool on) {
    maintenance.use_columnar_kernels = on;
    return *this;
  }
  DatabaseOptions& set_mutation_log(MutationLog* log) {
    durability.mutation_log = log;
    return *this;
  }
  DatabaseOptions& set_default_retention(RetentionPolicy policy) {
    default_retention = policy;
    return *this;
  }
  DatabaseOptions& set_observability(const obs::ObservabilityOptions& o) {
    observability = o;
    return *this;
  }
  DatabaseOptions& set_metrics(bool on) {
    observability.metrics = on;
    return *this;
  }
  DatabaseOptions& set_trace_capacity(size_t slots) {
    observability.trace_capacity = slots;
    return *this;
  }
  DatabaseOptions& set_profile_view_latency(bool on) {
    observability.profile_view_latency = on;
    return *this;
  }
  DatabaseOptions& set_profile_plan_slots(bool on) {
    observability.profile_plan_slots = on;
    return *this;
  }
  DatabaseOptions& set_slot_sample_period(size_t period) {
    observability.slot_sample_period = period;
    return *this;
  }
  DatabaseOptions& set_history(size_t capacity, int64_t interval_ms) {
    observability.history_capacity = capacity;
    observability.history_interval_ms = interval_ms;
    return *this;
  }
  DatabaseOptions& set_slow_tick_budget_ns(int64_t budget_ns) {
    observability.slow_tick_budget_ns = budget_ns;
    return *this;
  }
  DatabaseOptions& set_flight_recorder(std::string dir, size_t max_dumps) {
    observability.flight_recorder_dir = std::move(dir);
    observability.flight_recorder_max_dumps = max_dumps;
    return *this;
  }
  DatabaseOptions& set_request_trace(size_t capacity, double sample_rate) {
    observability.request_trace_capacity = capacity;
    observability.request_sample_rate = sample_rate;
    return *this;
  }
  DatabaseOptions& set_slow_request_budget_ns(int64_t budget_ns) {
    observability.slow_request_budget_ns = budget_ns;
    return *this;
  }
  DatabaseOptions& set_storage(const store::StorageOptions& s) {
    storage = s;
    return *this;
  }
  DatabaseOptions& set_data_dir(std::string dir) {
    storage.data_dir = std::move(dir);
    return *this;
  }
  DatabaseOptions& set_sharding(const ShardingOptions& s) {
    sharding = s;
    return *this;
  }
  DatabaseOptions& set_num_shards(size_t n) {
    sharding.num_shards = n;
    return *this;
  }
  DatabaseOptions& set_partition_key(std::string column) {
    sharding.partition_key = std::move(column);
    return *this;
  }
};

// What RegisterViewWithBackfill replayed to bring the late view current.
struct BackfillReport {
  ViewId view = 0;
  uint64_t events_replayed = 0;      // synthetic ticks fed to the view
  uint64_t rows_replayed = 0;        // chronicle rows streamed (warm + hot)
  uint64_t delta_rows_applied = 0;   // rows folded into the view
};

class ChronicleDatabase {
 public:
  // The one real constructor: everything is configured through options.
  explicit ChronicleDatabase(DatabaseOptions options = DatabaseOptions());

  // Legacy routing-only construction; forwards to the options constructor.
  // Prefer ChronicleDatabase(DatabaseOptions().set_routing(...)).
  explicit ChronicleDatabase(RoutingMode routing);

  // Heap-allocating convenience for callers that keep the database behind
  // a pointer (the shell, benches): Open(options) reads better than
  // make_unique at every such site and is the natural place for future
  // open-time work (e.g. attaching recovery).
  static std::unique_ptr<ChronicleDatabase> Open(
      DatabaseOptions options = DatabaseOptions());

  ChronicleDatabase(const ChronicleDatabase&) = delete;
  ChronicleDatabase& operator=(const ChronicleDatabase&) = delete;

  // Out-of-line: stops the monitoring endpoint and sampler (their threads
  // call back into this object) before any member is destroyed.
  ~ChronicleDatabase();

  // --- DDL ---

  // Without an explicit policy, the chronicle gets
  // options().default_retention.
  Result<ChronicleId> CreateChronicle(const std::string& name, Schema schema);
  Result<ChronicleId> CreateChronicle(const std::string& name, Schema schema,
                                      RetentionPolicy retention);

  Result<RelationId> CreateRelation(const std::string& name, Schema schema,
                                    const std::string& key_column = "",
                                    IndexMode index_mode = IndexMode::kHash);

  // Registers a persistent view over `plan` (validated as chronicle
  // algebra) with summarization `spec`.
  Result<ViewId> CreateView(const std::string& name, CaExprPtr plan,
                            SummarySpec spec,
                            std::vector<ComputedColumn> computed = {},
                            IndexMode index_mode = IndexMode::kHash);

  // Late view registration with replayable backfill (docs/STORAGE.md):
  // registers the view exactly like CreateView, then rebuilds its state by
  // streaming every retained row of its base chronicles — warm segments
  // first, then the hot window — through the normal maintenance path, so
  // the result is byte-identical to a view registered at SN 0. Requires
  // every base chronicle to have retained its full history (kAll, or
  // kTiered with no evictions); fails with FailedPrecondition otherwise,
  // leaving the view registered but only maintained from now on. Replayed
  // events carry chronon == sn (retained rows do not persist chronons), so
  // plans must not select on chronons — persistent CA views never do.
  Result<BackfillReport> RegisterViewWithBackfill(
      const std::string& name, CaExprPtr plan, SummarySpec spec,
      std::vector<ComputedColumn> computed = {},
      IndexMode index_mode = IndexMode::kHash);

  // Registers a periodic view set V<D> (§5.1).
  Status CreatePeriodicView(const std::string& name, CaExprPtr plan,
                            SummarySpec spec,
                            std::shared_ptr<const Calendar> calendar,
                            PeriodicViewOptions options = {});

  // Registers a pane-optimized sliding-window view (§5.1).
  Status CreateSlidingView(const std::string& name, CaExprPtr plan,
                           SummarySpec spec, Chronon origin, Chronon pane_width,
                           int64_t num_panes,
                           IndexMode index_mode = IndexMode::kHash);

  // Drops a view of any kind (persistent, periodic, or sliding) by name:
  // its materialized state is discarded and maintenance stops.
  Status DropView(const std::string& name);

  // Drops a relation. Refused with FailedPrecondition while any live view's
  // plan still joins against it (plans hold borrowed pointers).
  Status DropRelation(const std::string& name);

  // --- plan building bound to this database's objects ---

  // Scan node over a chronicle by name. The node is cached per chronicle,
  // so every view built through this call shares one scan node and the
  // maintenance path computes its delta once per tick (DAG sharing).
  Result<CaExprPtr> ScanChronicle(const std::string& name) const;
  // Borrowed relation pointer (stable for the database's lifetime).
  Result<Relation*> GetRelation(const std::string& name);
  Result<const Relation*> GetRelation(const std::string& name) const;

  // --- DML ---

  // Appends tuples to a chronicle under a fresh sequence number (chronon
  // advances by 1) and maintains every affected view.
  Result<AppendResult> Append(const std::string& chronicle,
                              std::vector<Tuple> tuples);
  // Same with an explicit chronon (must be non-decreasing).
  Result<AppendResult> Append(const std::string& chronicle,
                              std::vector<Tuple> tuples, Chronon chronon);
  // Multi-chronicle tick: one sequence number across several chronicles.
  Result<AppendResult> AppendMulti(
      std::vector<std::pair<std::string, std::vector<Tuple>>> inserts,
      Chronon chronon);
  // Batched ingest: each element of `batches` becomes one tick (fresh SN,
  // chronon advancing by 1 per tick), maintained in order. Amortizes two
  // per-tick costs across the batch: the WAL sync (all ticks are validated
  // up front and logged with ONE group commit before the first applies)
  // and, under parallel maintenance, pool dispatch against a warm pool.
  // With no WAL attached a mid-batch validation failure behaves like a
  // failing Append in a loop: earlier ticks stay applied.
  Result<std::vector<AppendResult>> AppendMany(
      const std::string& chronicle, std::vector<std::vector<Tuple>> batches);

  // Proactive relation updates (§2.3). They take effect for all FUTURE
  // sequence numbers; the model forbids retroactive updates by design.
  Status InsertInto(const std::string& relation, Tuple row);
  Status UpdateRelation(const std::string& relation, const Value& key,
                        Tuple new_row);
  Status DeleteFrom(const std::string& relation, const Value& key);

  // --- queries ---

  // Summary query: point lookup on a persistent view — the subsecond path.
  Result<Tuple> QueryView(const std::string& view, const Tuple& key) const;
  // All finalized rows of a view, sorted by key.
  Result<std::vector<Tuple>> ScanView(const std::string& view) const;

  Result<const PeriodicViewSet*> GetPeriodicView(const std::string& name) const;
  Result<const SlidingWindowView*> GetSlidingView(const std::string& name) const;

  // Borrowed const view pointer by name (stable while the view is live) —
  // the facade-level twin of GetRelation.
  Result<const PersistentView*> GetView(const std::string& name) const;

  // Detail query over the RETAINED window of the plan's base chronicles
  // (§2.2): evaluates `plan` against whatever the retention policies kept.
  // This is the one query path that reads chronicle storage; summary
  // queries should use persistent views instead.
  Result<std::vector<ChronicleRow>> QueryRecentWindow(const CaExpr& plan) const;
  // Same, with a summarization step applied (rows sorted by key).
  Result<std::vector<Tuple>> QueryRecentWindowSummary(
      const CaExpr& plan, const SummarySpec& spec) const;

  // --- introspection ---

  ChronicleGroup& group() { return group_; }
  const ChronicleGroup& group() const { return group_; }
  ViewManager& view_manager() { return views_; }
  const ViewManager& view_manager() const { return views_; }
  uint64_t appends_processed() const { return appends_processed_; }

  // The tiered segment store, or nullptr until the first kTiered chronicle
  // is created. Borrowed; owned by the database.
  store::TieredStore* tiered_store() { return store_.get(); }
  const store::TieredStore* tiered_store() const { return store_.get(); }

  // The options this database was opened with (durability/maintenance kept
  // in sync by ReconfigureMaintenance / AttachMutationLog below).
  const DatabaseOptions& options() const { return options_; }

  // --- observability ---

  // The metrics registry / trace ring, or nullptr when disabled by
  // options().observability. Borrowed; owned by the database.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::TraceRing* trace() { return trace_.get(); }
  const obs::TraceRing* trace() const { return trace_.get(); }

  // Assembles the full statistics snapshot (metrics, per-view stats, trace
  // accounting, the attached enricher's sections). Thread-safe: serialized
  // against appends by the stats mutex, so the monitoring endpoint and the
  // history sampler may call it while appends flow.
  obs::StatsSnapshot CollectStats() const;

  // Merges owner-side sections into every snapshot CollectStats assembles
  // (the shell uses this to mirror its Wal into obs::WalStatsSnapshot).
  // Swapped under the stats mutex: after this returns, no in-flight
  // snapshot still runs the previous enricher. Pass nullptr to clear.
  void set_stats_enricher(std::function<void(obs::StatsSnapshot*)> enricher);

  // --- live monitoring (tentpole of docs/OBSERVABILITY.md) ---

  // Starts the HTTP/1.1 monitoring endpoint on 127.0.0.1:`port` (0 picks
  // an ephemeral port — read it back with monitoring_port()) and, when
  // options().observability.history_capacity > 0, the periodic stats
  // sampler behind /history.json. Routes: /metrics (Prometheus),
  // /stats.json, /trace.json, /history.json, /healthz,
  // /views/<name>/explain.json. Fails if already active.
  Status StartMonitoring(uint16_t port);
  // Joins the endpoint and sampler threads. The history ring survives so
  // a later StartMonitoring resumes the time-series. Idempotent.
  void StopMonitoring();
  bool monitoring_active() const;
  // The bound port (0 when not active).
  uint16_t monitoring_port() const;

  // The stats-history ring, or nullptr before the first StartMonitoring.
  const obs::StatsHistory* history() const { return history_.get(); }
  // Takes one off-schedule history sample (shell `\history`, tests);
  // creates the ring if monitoring was never started.
  void SampleStatsNow();

  // Plan EXPLAIN for one persistent view: the compiled program annotated
  // with sampled per-slot time shares (see ObservabilityOptions::
  // profile_plan_slots). Thread-safe.
  Result<std::string> ExplainView(const std::string& name) const;
  Result<std::string> ExplainViewJson(const std::string& name) const;
  // Toggles per-slot sampling at runtime (shell `\profile plan on|off`).
  void SetPlanProfiling(bool enabled);

  // Slow-tick dumps written so far (0 when the recorder is disabled).
  uint64_t flight_recorder_dumps() const;

  // --- request tracing (obs/request_trace.h) ---

  // Borrowed request tracer, owned by the cql::Session that opened this
  // engine (null when request tracing is disabled). The engine only reads
  // it to serve /requests.json; span EMISSION inside the append path goes
  // through the thread-local obs::RequestScope, so an engine never needs
  // the tracer to attribute work to a sampled request.
  void set_request_tracer(obs::RequestTracer* tracer) {
    request_tracer_ = tracer;
  }
  obs::RequestTracer* request_tracer() { return request_tracer_; }

  // Which shard's engine this is, stamped onto maintain/wal_commit spans
  // (-1 = unsharded). Set once by shard::ShardedDatabase::Open before any
  // traffic flows.
  void set_trace_shard(int shard) { trace_shard_ = shard; }
  int trace_shard() const { return trace_shard_; }

  // Writes one slow-request dump through the flight recorder (created at
  // open when observability.slow_request_budget_ns > 0). Serialized under
  // the stats mutex like the slow-tick path; callers treat failures as
  // best-effort.
  Result<std::string> RecordSlowRequest(uint64_t trace_hi, uint64_t trace_lo,
                                        int64_t total_ns, int64_t budget_ns,
                                        const std::string& snapshot_json,
                                        const std::string& trace_json);

  // --- runtime reconfiguration ---

  // Reconfigures the maintenance path between appends: the blessed
  // runtime counterpart of DatabaseOptions::maintenance (shell \threads).
  void ReconfigureMaintenance(const MaintenanceOptions& options) {
    options_.maintenance = options;
    views_.set_maintenance_options(options);
  }
  // Attaches/detaches the write-ahead hook between appends: the runtime
  // counterpart of DatabaseOptions::durability (shell \wal).
  void AttachMutationLog(MutationLog* log) {
    options_.durability.mutation_log = log;
    durability_.mutation_log = log;
  }
  void DetachMutationLog() { AttachMutationLog(nullptr); }

  const MaintenanceOptions& maintenance_options() const {
    return views_.maintenance_options();
  }

  // Iteration over registered objects (used by checkpointing and SHOW).
  void ForEachRelation(const std::function<void(const Relation&)>& fn) const;
  void ForEachPeriodicView(
      const std::function<void(const PeriodicViewSet&)>& fn) const;
  void ForEachSlidingView(
      const std::function<void(const SlidingWindowView&)>& fn) const;
  // Mutable lookups used by checkpoint restore.
  Result<PeriodicViewSet*> GetPeriodicViewMutable(const std::string& name);
  Result<SlidingWindowView*> GetSlidingViewMutable(const std::string& name);

  // --- durability ---

  const DurabilityOptions& durability() const { return durability_; }

 private:
  // Rewinding the append counter is only legal during checkpoint restore;
  // the friend grant keeps every other caller out (see docs/DURABILITY.md).
  friend Status checkpoint::RestoreDatabase(const std::string& image,
                                            ChronicleDatabase* db);
  void RestoreAppendsProcessed(uint64_t n) { appends_processed_ = n; }

  // Common append path: logs the tick (when a mutation log is attached),
  // then applies and maintains it.
  Result<AppendResult> AppendInternal(
      std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts,
      Chronon chronon);
  // Mirrors ChronicleGroup's append validation so a logged tick cannot
  // fail to apply.
  Status ValidateAppendForLog(
      const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>& inserts,
      Chronon chronon) const;

  Result<AppendResult> Maintain(Result<AppendEvent> event);

  // Lazily opens the tiered store (first kTiered chronicle) and attaches
  // chronicle `id` to it.
  Status AttachTieredChronicle(ChronicleId id, const std::string& name,
                               size_t hot_rows);

  // CollectStats body without taking obs_mutex_ (callers hold it).
  obs::StatsSnapshot CollectStatsLocked() const;
  // Routes one monitoring request (runs on the HTTP server's thread).
  obs::HttpResponse HandleHttpRequest(const obs::HttpRequest& request) const;
  // Dumps trace + snapshot + the offending view's EXPLAIN for a tick that
  // blew the slow-tick budget. Called under obs_mutex_; best-effort.
  void RecordSlowTick(const AppendResult& result);

  // Declared before views_: the constructor initializes views_ from
  // options_.routing.
  DatabaseOptions options_;
  // Observability sinks, created per options_.observability and wired into
  // views_ at construction (null when disabled).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceRing> trace_;
  obs::MetricId m_append_batch_ticks_ = 0;  // histogram: AppendMany sizes

  ChronicleGroup group_;
  // The warm tier (segment files). Created lazily by the first kTiered
  // CreateChronicle; metric ids are pre-registered at construction so the
  // registry is never mutated after sampling may have started.
  std::unique_ptr<store::TieredStore> store_;
  store::StoreMetricIds store_metric_ids_;
  uint64_t backfill_views_ = 0;
  uint64_t backfill_rows_ = 0;
  mutable std::unordered_map<ChronicleId, CaExprPtr> scan_cache_;
  std::vector<std::unique_ptr<Relation>> relations_;
  std::unordered_map<std::string, RelationId> relations_by_name_;
  ViewManager views_;
  std::vector<std::unique_ptr<PeriodicViewSet>> periodic_;
  std::unordered_map<std::string, size_t> periodic_by_name_;
  std::vector<std::unique_ptr<SlidingWindowView>> sliding_;
  std::unordered_map<std::string, size_t> sliding_by_name_;
  uint64_t appends_processed_ = 0;
  DurabilityOptions durability_;
  // Serializes the maintenance fold against the monitoring readers (the
  // HTTP thread and the history sampler call CollectStats while appends
  // flow). Appends themselves stay single-driver; this mutex only makes
  // the snapshot a consistent cut.
  mutable std::mutex obs_mutex_;
  std::function<void(obs::StatsSnapshot*)> stats_enricher_;
  // Monitoring machinery (null until StartMonitoring / first slow tick;
  // the history ring outlives StopMonitoring so the series continues).
  std::unique_ptr<obs::StatsHistory> history_;
  std::unique_ptr<obs::StatsSampler> sampler_;
  std::unique_ptr<obs::HttpServer> http_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  // Request tracing (borrowed from the owning session; see the accessors).
  obs::RequestTracer* request_tracer_ = nullptr;
  int trace_shard_ = -1;
  // True while Maintain is folding deltas into views. Relations are
  // updated proactively — never during an append (§2.3) — and the parallel
  // maintenance path depends on that: workers read relations lock-free.
  // The relation DML entry points assert this invariant.
  bool maintenance_in_progress_ = false;
};

}  // namespace chronicle

#endif  // CHRONICLE_DB_DATABASE_H_
