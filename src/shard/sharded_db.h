// ShardedDatabase: hash-partitioned multi-core ingest over N per-shard
// ChronicleDatabase engines (ROADMAP item 1, docs/SHARDING.md).
//
// The router owns N fully independent engines. Each shard has its own
// append path, maintenance state (ViewManager + compiled plans), tiered
// store directory (<data_dir>/shard-<k>), and — when ShardingOptions::
// wal_dir is set — its own WAL segment stream. Rows route by a stable
// hash of one key column (shard/partitioner.h), resolved per chronicle at
// CreateChronicle time so the hot path never re-binds names.
//
// Two ingest modes:
//
//   * Synchronous Append/AppendMulti/AppendMany: the caller's thread
//     splits the batch and drives each receiving shard in shard order
//     under one router-level chronon. Deterministic — the equivalence
//     fuzz drives this path — and with num_shards == 1 every call
//     forwards verbatim to a single engine, which is the bit-identical
//     oracle against the unsharded ChronicleDatabase.
//
//   * Async pipeline (StartIngest/EnqueueAppend/Flush): P producer
//     threads push pre-split sub-batches onto per-(producer, shard) SPSC
//     rings; one worker thread per shard drains its lanes and applies
//     them. This is the multi-core path bench_e15 measures. Shard-local
//     chronons advance independently, so cross-shard tick alignment is
//     traded for throughput (summaries stay exact — see the merge layer).
//
// Reads: ScanView/QueryView merge per-shard raw aggregate states
// (AggSpec::Merge over PersistentView::VisitGroups) and finalize through
// a scratch PersistentView, so SUM/COUNT/MIN/MAX/AVG and computed columns
// come out byte-identical to the unsharded engine. Views whose first
// group column is the partition key are "aligned": their groups live on
// exactly one shard and QueryView routes the lookup there directly.

#ifndef CHRONICLE_SHARD_SHARDED_DB_H_
#define CHRONICLE_SHARD_SHARDED_DB_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aggregates/aggregate.h"
#include "db/database.h"
#include "shard/partitioner.h"
#include "shard/spsc_queue.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace chronicle {

class PersistentView;

namespace shard {

// Result of one routed synchronous append.
struct ShardAppendResult {
  uint64_t rows = 0;            // rows routed (all shards)
  size_t shards_touched = 0;    // shards that received >= 1 row this tick
  Chronon chronon = 0;          // router-level chronon of the tick
};

class ShardedDatabase {
 public:
  // Plans bind engine-local objects (scan nodes, relation pointers), so a
  // view definition is a factory invoked once per shard, not a single
  // CaExprPtr. The factory must build the same logical plan each time.
  using PlanFactory =
      std::function<Result<CaExprPtr>(ChronicleDatabase& engine)>;
  using ComputedFactory =
      std::function<std::vector<ComputedColumn>(ChronicleDatabase& engine)>;

  // Opens options.sharding.num_shards engines. Per-shard DatabaseOptions
  // are derived from `options`: storage.data_dir becomes
  // <data_dir>/shard-<k>; everything else is shared. When
  // options.sharding.wal_dir is non-empty, a per-shard WAL is opened under
  // <wal_dir>/shard-<k> and attached AFTER construction — call
  // RecoverFromWal() first if the directories may hold history.
  static Result<std::unique_ptr<ShardedDatabase>> Open(DatabaseOptions options);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;
  ~ShardedDatabase();

  size_t num_shards() const { return engines_.size(); }
  ChronicleDatabase& engine(size_t shard) { return *engines_[shard]; }
  const ChronicleDatabase& engine(size_t shard) const {
    return *engines_[shard];
  }
  const DatabaseOptions& options() const { return options_; }
  // The effective routing column, or "" when chronicles disagree on their
  // first column's name (then no view can use the aligned fast path).
  const std::string& partition_column() const { return partition_column_; }

  // --- DDL (broadcast to every shard) ---

  Result<ChronicleId> CreateChronicle(const std::string& name, Schema schema);
  Result<ChronicleId> CreateChronicle(const std::string& name, Schema schema,
                                      RetentionPolicy retention);
  Result<RelationId> CreateRelation(const std::string& name, Schema schema,
                                    const std::string& key_column = "",
                                    IndexMode index_mode = IndexMode::kHash);
  Result<ViewId> CreateView(const std::string& name, const PlanFactory& plan,
                            SummarySpec spec,
                            const ComputedFactory& computed = nullptr,
                            IndexMode index_mode = IndexMode::kHash);

  // --- relation DML (broadcast; relations are replicated on every shard
  // so per-shard plans can join them locally) ---

  Status InsertInto(const std::string& relation, Tuple row);
  Status UpdateRelation(const std::string& relation, const Value& key,
                        Tuple new_row);
  Status DeleteFrom(const std::string& relation, const Value& key);

  // --- synchronous routed ingest ---

  // One logical tick: split `tuples` by the chronicle's partitioner and
  // drive each receiving shard (in shard order) under one router chronon.
  // Shards receiving no rows are skipped — their SNs do not advance.
  Result<ShardAppendResult> Append(const std::string& chronicle,
                                   std::vector<Tuple> tuples);
  Result<ShardAppendResult> Append(const std::string& chronicle,
                                   std::vector<Tuple> tuples, Chronon chronon);
  // Multi-chronicle tick: each shard receiving rows gets ONE AppendMulti
  // carrying its slice of every chronicle, so same-shard rows of one
  // logical tick share a per-shard SN.
  Result<ShardAppendResult> AppendMulti(
      std::vector<std::pair<std::string, std::vector<Tuple>>> inserts,
      Chronon chronon);
  // Batched ingest: each batch is one tick (chronon advancing by 1).
  Result<std::vector<ShardAppendResult>> AppendMany(
      const std::string& chronicle, std::vector<std::vector<Tuple>> batches);

  // --- async multi-core pipeline ---

  // Spawns one worker thread per shard and P*N SPSC lanes. Fails if
  // already running.
  Status StartIngest(size_t num_producers);
  // Called by producer thread `producer` (0 <= producer < num_producers;
  // each producer index must be used by one thread only). Splits the batch
  // and pushes per-shard items, spinning with yield when a lane is full
  // (bounded-queue backpressure). Each enqueued sub-batch becomes its own
  // shard-local tick.
  Status EnqueueAppend(size_t producer, const std::string& chronicle,
                       std::vector<Tuple> tuples);
  // Blocks until every lane is empty and every worker is idle, then
  // reports the first per-shard error (if any). Workers keep running.
  Status Flush();
  // Flush + join workers. Idempotent.
  Status StopIngest();
  bool ingest_active() const { return !workers_.empty(); }

  // --- merged reads ---

  Result<std::vector<Tuple>> ScanView(const std::string& view) const;
  Result<Tuple> QueryView(const std::string& view, const Tuple& key) const;

  // --- durability (per-shard WAL, ShardingOptions::wal_dir) ---

  // Replays each shard's WAL into its engine (wal::Recover per shard,
  // BEFORE the logs are attached). Call after DDL, before AttachWals.
  Result<std::vector<wal::RecoveryReport>> RecoverFromWal();
  // Opens <wal_dir>/shard-<k> and attaches a WalMutationLog to each
  // engine. No-op when wal_dir is empty.
  Status AttachWals();
  // Detaches and closes the per-shard WALs (after StopIngest).
  Status CloseWals();

  // --- observability ---

  // Merged snapshot: counters summed, metrics/views merged by name,
  // histograms merged, plus the per-shard sharding section (queue depth,
  // appends, tick latency) every exporter renders.
  obs::StatsSnapshot CollectStats() const;

  uint64_t rows_routed() const {
    return rows_routed_.load(std::memory_order_relaxed);
  }

 private:
  struct ViewMeta {
    std::string name;
    PlanFactory plan_factory;
    ComputedFactory computed_factory;
    // Optional only because SummarySpec has no default construction; always
    // engaged once the meta is registered.
    std::optional<SummarySpec> spec;
    IndexMode index_mode = IndexMode::kHash;
    bool aligned = false;  // first group column == partition_column_
  };

  struct IngestItem {
    ChronicleId chronicle = 0;
    std::vector<Tuple> tuples;
  };

  struct ShardLane;   // one SPSC ring + padding
  struct ShardState;  // per-shard worker bookkeeping

  // One shard's contribution to a group, merged across shards.
  struct MergedGroup {
    std::vector<AggState> states;
    int64_t multiplicity = 0;
  };
  // Per-view scratch retained across merged reads so each ScanView/
  // QueryView reuses the finalizer view (plan + computed columns) and the
  // merge table's buckets instead of rebuilding them per call.
  struct MergeScratch {
    std::unique_ptr<PersistentView> view;
    std::unordered_map<Tuple, MergedGroup, TupleHash, TupleEq> groups;
  };

  explicit ShardedDatabase(DatabaseOptions options);

  Result<const Partitioner*> PartitionerFor(const std::string& chronicle) const;
  Result<ShardAppendResult> AppendRouted(
      const std::string& chronicle, std::vector<Tuple> tuples,
      Chronon chronon);
  void WorkerLoop(size_t shard);
  // Builds the merged groups of `meta` across all shards and finalizes
  // them through a scratch view; `key` non-null restricts to one group.
  Result<std::vector<Tuple>> MergeView(const ViewMeta& meta,
                                       const Tuple* key) const;

  DatabaseOptions options_;
  std::vector<std::unique_ptr<ChronicleDatabase>> engines_;
  std::string partition_column_;  // effective; "" once chronicles disagree
  bool partition_column_fixed_ = false;

  // Routing state, mutated only by DDL (single-threaded by contract).
  std::vector<Partitioner> partitioners_;           // by ChronicleId
  std::vector<std::string> chronicle_names_;        // by ChronicleId
  std::unordered_map<std::string, ChronicleId> chronicles_by_name_;
  std::vector<ViewMeta> views_;
  std::unordered_map<std::string, size_t> views_by_name_;

  // Merged-read scratch (mutable: reads are logically const). merge_mu_
  // serializes concurrent ScanView/QueryView over the shared scratch.
  mutable std::mutex merge_mu_;
  mutable std::unordered_map<std::string, MergeScratch> merge_scratch_;

  // Synchronous-path chronon (async ticks advance shard-locally instead).
  Chronon last_chronon_ = 0;

  // Async pipeline. lanes_[producer * num_shards + shard].
  std::vector<std::unique_ptr<ShardLane>> lanes_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::thread> workers_;
  size_t num_producers_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> rows_routed_{0};

  // Per-shard WALs (ShardingOptions::wal_dir).
  std::vector<std::unique_ptr<wal::Wal>> wals_;
  std::vector<std::unique_ptr<wal::WalMutationLog>> wal_logs_;
};

}  // namespace shard
}  // namespace chronicle

#endif  // CHRONICLE_SHARD_SHARDED_DB_H_
