// Single-producer/single-consumer lock-free ring: the ingest-thread ->
// shard-worker handoff lane of the sharded pipeline (docs/SHARDING.md).
//
// One ring is owned by exactly one producer thread (TryPush) and one
// consumer thread (TryPop). The usual two-index scheme: `head_` is only
// written by the consumer, `tail_` only by the producer; each side reads
// the other's index with acquire ordering and publishes its own with
// release ordering, so the slot contents it guards are visible before the
// index move is. Capacity is rounded up to a power of two so the wrap is
// a mask, and the two indexes live on their own cache lines to keep the
// producer and consumer from false-sharing.

#ifndef CHRONICLE_SHARD_SPSC_QUEUE_H_
#define CHRONICLE_SHARD_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace chronicle {
namespace shard {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer side. False = ring full (caller backs off; that IS the
  // pipeline's backpressure).
  bool TryPush(T&& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False = ring empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Racy by nature (either index may move underfoot); good enough for the
  // queue-depth gauge in /stats.json and for Flush()'s drain loop.
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<size_t> tail_{0};  // producer-owned
};

}  // namespace shard
}  // namespace chronicle

#endif  // CHRONICLE_SHARD_SPSC_QUEUE_H_
