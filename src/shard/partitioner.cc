#include "shard/partitioner.h"

#include <cstring>
#include <utility>

namespace chronicle {
namespace shard {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and fixed for all time.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

uint64_t StableValueHash(const Value& value) {
  if (value.is_null()) return Mix64(0x6e756c6cull);  // "null"
  if (value.is_int64()) {
    return Mix64(static_cast<uint64_t>(value.int64()));
  }
  if (value.is_double()) {
    // Value equality is cross-type for numerics (5 == 5.0), so integral
    // doubles must hash like their int64 twins or equal keys could route
    // to different shards. -0.0 folds onto +0.0 the same way.
    const double d = value.dbl();
    const auto as_int = static_cast<int64_t>(d);
    if (static_cast<double>(as_int) == d) {
      return Mix64(static_cast<uint64_t>(as_int));
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    return Mix64(bits);
  }
  const std::string& s = value.str();
  return Mix64(Fnv1a(s.data(), s.size()));
}

Result<Partitioner> Partitioner::Make(const Schema& schema,
                                      const std::string& partition_key,
                                      size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("cannot partition an empty schema");
  }
  size_t column = 0;
  std::string name = schema.field(0).name;
  if (!partition_key.empty()) {
    CHRONICLE_ASSIGN_OR_RETURN(column, schema.IndexOf(partition_key));
    name = partition_key;
  }
  return Partitioner(column, std::move(name), num_shards);
}

std::vector<std::vector<Tuple>> Partitioner::Split(
    std::vector<Tuple> rows) const {
  std::vector<std::vector<Tuple>> out(num_shards_);
  if (num_shards_ == 1) {
    out[0] = std::move(rows);
    return out;
  }
  for (Tuple& row : rows) {
    out[ShardOf(row)].push_back(std::move(row));
  }
  return out;
}

}  // namespace shard
}  // namespace chronicle
