// Partitioner: hash-routes chronicle rows to shards by a key column.
//
// The partition spec of a chronicle is resolved ONCE, at CreateChronicle —
// the shard-aware analogue of binding a compiled plan: the hot append path
// never looks a column name up again, it just reads tuple[key_column] and
// hashes. The hash is our own stable mix (FNV-1a over string bytes,
// splitmix64 over int64/double bit patterns) rather than std::hash, so a
// workload routes identically across standard libraries and across runs —
// which is what lets the recovery test replay a per-shard WAL set into a
// fresh router and converge on the same assignment.
//
// Rows with equal key values land on the same shard. That single property
// carries the engine's per-tick set semantics across the split: duplicate
// tuples within a tick are (trivially) key-equal, so they meet in one
// shard and dedupe exactly as the unsharded engine would. See
// docs/SHARDING.md for the operators this makes shard-equivalent.

#ifndef CHRONICLE_SHARD_PARTITIONER_H_
#define CHRONICLE_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {
namespace shard {

// Stable 64-bit hash of a routing value (platform- and run-independent).
uint64_t StableValueHash(const Value& value);

// The per-chronicle routing plan: which column routes, over how many
// shards.
class Partitioner {
 public:
  // Resolves `partition_key` (empty = first column) against `schema`.
  static Result<Partitioner> Make(const Schema& schema,
                                  const std::string& partition_key,
                                  size_t num_shards);

  size_t key_column() const { return key_column_; }
  const std::string& key_name() const { return key_name_; }
  size_t num_shards() const { return num_shards_; }

  // Shard owning one row.
  size_t ShardOf(const Tuple& row) const {
    return static_cast<size_t>(StableValueHash(row[key_column_]) %
                               num_shards_);
  }
  // Shard owning one key value (the point-lookup fast path for views whose
  // group key IS the partition column).
  size_t ShardOfKey(const Value& key) const {
    return static_cast<size_t>(StableValueHash(key) % num_shards_);
  }

  // Splits a batch into per-shard sub-batches (size num_shards; empty
  // entries for shards that receive no rows). Preserves row order within
  // each shard — per-shard order is exactly the unsharded order filtered
  // to that shard, which the equivalence fuzz relies on.
  std::vector<std::vector<Tuple>> Split(std::vector<Tuple> rows) const;

 private:
  Partitioner(size_t key_column, std::string key_name, size_t num_shards)
      : key_column_(key_column),
        key_name_(std::move(key_name)),
        num_shards_(num_shards) {}

  size_t key_column_ = 0;
  std::string key_name_;
  size_t num_shards_ = 1;
};

}  // namespace shard
}  // namespace chronicle

#endif  // CHRONICLE_SHARD_PARTITIONER_H_
