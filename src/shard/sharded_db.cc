#include "shard/sharded_db.h"

#include <algorithm>
#include <utility>

#include "obs/request_trace.h"
#include "views/persistent_view.h"

namespace chronicle {
namespace shard {

// One producer->shard lane. Wrapped in a struct so the rings themselves
// stay immovable once the worker threads hold pointers to them.
struct ShardedDatabase::ShardLane {
  explicit ShardLane(size_t capacity) : ring(capacity) {}
  SpscQueue<IngestItem> ring;
};

// Per-shard worker bookkeeping. Lives for the router's lifetime so the
// routed/enqueued counters are cumulative across StartIngest cycles.
struct ShardedDatabase::ShardState {
  std::atomic<uint64_t> enqueued_batches{0};
  std::atomic<uint64_t> routed_rows{0};
  // True while the worker may hold a popped-but-unapplied item; Flush()
  // requires lanes empty AND busy false.
  std::atomic<bool> busy{false};
  std::atomic<bool> has_error{false};
  std::mutex error_mu;
  Status error;  // first append error, under error_mu

  Status FirstError() {
    if (!has_error.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard<std::mutex> lock(error_mu);
    return error;
  }
  void RecordError(Status st) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!has_error.load(std::memory_order_relaxed)) {
      error = std::move(st);
      has_error.store(true, std::memory_order_release);
    }
  }
};

ShardedDatabase::ShardedDatabase(DatabaseOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    DatabaseOptions options) {
  const size_t num_shards = options.sharding.num_shards;
  if (num_shards == 0) {
    return Status::InvalidArgument("ShardingOptions.num_shards must be >= 1");
  }
  if (options.durability.mutation_log != nullptr && num_shards > 1) {
    // One MutationLog cannot record N independent SN domains; per-shard
    // durability goes through ShardingOptions::wal_dir instead.
    return Status::InvalidArgument(
        "a sharded database cannot share one mutation_log; set "
        "ShardingOptions.wal_dir for per-shard WALs");
  }
  auto db = std::unique_ptr<ShardedDatabase>(new ShardedDatabase(options));
  db->partition_column_ = options.sharding.partition_key;
  db->partition_column_fixed_ = !options.sharding.partition_key.empty();
  for (size_t k = 0; k < num_shards; ++k) {
    DatabaseOptions per_shard = options;
    if (!per_shard.storage.data_dir.empty()) {
      per_shard.storage.data_dir += "/shard-" + std::to_string(k);
    }
    db->engines_.push_back(ChronicleDatabase::Open(per_shard));
    // Stamp the shard id so maintain/wal_commit spans emitted inside this
    // engine attribute to lane k in merged request traces.
    db->engines_.back()->set_trace_shard(static_cast<int>(k));
    db->shards_.push_back(std::make_unique<ShardState>());
  }
  return db;
}

ShardedDatabase::~ShardedDatabase() {
  StopIngest().ok();
  CloseWals().ok();
}

// --- DDL ---

Result<ChronicleId> ShardedDatabase::CreateChronicle(const std::string& name,
                                                     Schema schema) {
  return CreateChronicle(name, std::move(schema),
                         options_.default_retention);
}

Result<ChronicleId> ShardedDatabase::CreateChronicle(
    const std::string& name, Schema schema, RetentionPolicy retention) {
  CHRONICLE_ASSIGN_OR_RETURN(
      Partitioner partitioner,
      Partitioner::Make(schema, options_.sharding.partition_key,
                        engines_.size()));
  ChronicleId id = 0;
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(
        id, engines_[k]->CreateChronicle(name, schema, retention));
  }
  // The effective routing column backs the aligned-view fast path; it only
  // survives if every chronicle routes by the same column name.
  if (!partition_column_fixed_) {
    if (chronicles_by_name_.empty()) {
      partition_column_ = partitioner.key_name();
    } else if (partition_column_ != partitioner.key_name()) {
      partition_column_.clear();
    }
  }
  if (partitioners_.size() <= id) {
    partitioners_.resize(id + 1, partitioner);
    chronicle_names_.resize(id + 1);
  }
  partitioners_[id] = partitioner;
  chronicle_names_[id] = name;
  chronicles_by_name_[name] = id;
  return id;
}

Result<RelationId> ShardedDatabase::CreateRelation(const std::string& name,
                                                   Schema schema,
                                                   const std::string& key_column,
                                                   IndexMode index_mode) {
  RelationId id = 0;
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(
        id, engines_[k]->CreateRelation(name, schema, key_column, index_mode));
  }
  return id;
}

Result<ViewId> ShardedDatabase::CreateView(const std::string& name,
                                           const PlanFactory& plan,
                                           SummarySpec spec,
                                           const ComputedFactory& computed,
                                           IndexMode index_mode) {
  ViewId id = 0;
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr bound, plan(*engines_[k]));
    std::vector<ComputedColumn> cols;
    if (computed) cols = computed(*engines_[k]);
    CHRONICLE_ASSIGN_OR_RETURN(
        id, engines_[k]->CreateView(name, std::move(bound), spec,
                                    std::move(cols), index_mode));
  }
  ViewMeta meta;
  meta.name = name;
  meta.plan_factory = plan;
  meta.computed_factory = computed;
  meta.index_mode = index_mode;
  meta.aligned = engines_.size() > 1 && !partition_column_.empty() &&
                 spec.output_schema().num_fields() > 0 &&
                 !spec.key_columns().empty() &&
                 spec.output_schema().field(0).name == partition_column_;
  meta.spec = std::move(spec);
  views_by_name_[name] = views_.size();
  views_.push_back(std::move(meta));
  return id;
}

// --- relation DML ---

Status ShardedDatabase::InsertInto(const std::string& relation, Tuple row) {
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_RETURN_NOT_OK(engines_[k]->InsertInto(relation, row));
  }
  return Status::OK();
}

Status ShardedDatabase::UpdateRelation(const std::string& relation,
                                       const Value& key, Tuple new_row) {
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_RETURN_NOT_OK(engines_[k]->UpdateRelation(relation, key, new_row));
  }
  return Status::OK();
}

Status ShardedDatabase::DeleteFrom(const std::string& relation,
                                   const Value& key) {
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_RETURN_NOT_OK(engines_[k]->DeleteFrom(relation, key));
  }
  return Status::OK();
}

// --- synchronous routed ingest ---

Result<const Partitioner*> ShardedDatabase::PartitionerFor(
    const std::string& chronicle) const {
  auto it = chronicles_by_name_.find(chronicle);
  if (it == chronicles_by_name_.end()) {
    return Status::NotFound("unknown chronicle: " + chronicle);
  }
  return &partitioners_[it->second];
}

Result<ShardAppendResult> ShardedDatabase::Append(const std::string& chronicle,
                                                  std::vector<Tuple> tuples) {
  return AppendRouted(chronicle, std::move(tuples), last_chronon_ + 1);
}

Result<ShardAppendResult> ShardedDatabase::Append(const std::string& chronicle,
                                                  std::vector<Tuple> tuples,
                                                  Chronon chronon) {
  if (chronon < last_chronon_) {
    return Status::OutOfRange("chronon must be non-decreasing");
  }
  return AppendRouted(chronicle, std::move(tuples), chronon);
}

Result<ShardAppendResult> ShardedDatabase::AppendRouted(
    const std::string& chronicle, std::vector<Tuple> tuples, Chronon chronon) {
  if (ingest_active()) {
    return Status::FailedPrecondition(
        "synchronous Append while the async pipeline is running");
  }
  CHRONICLE_ASSIGN_OR_RETURN(const Partitioner* partitioner,
                             PartitionerFor(chronicle));
  ShardAppendResult result;
  result.chronon = chronon;
  if (engines_.size() == 1) {
    // Verbatim passthrough: the bit-identical oracle.
    CHRONICLE_ASSIGN_OR_RETURN(
        AppendResult r, engines_[0]->Append(chronicle, std::move(tuples),
                                            chronon));
    result.rows = r.event.inserts.empty() ? 0 : r.event.inserts[0].second.size();
    result.shards_touched = 1;
    last_chronon_ = chronon;
    rows_routed_.fetch_add(result.rows, std::memory_order_relaxed);
    return result;
  }
  obs::RequestScopeState* req_scope = obs::RequestScope::Current();
  const int64_t merge_start =
      req_scope != nullptr ? req_scope->tracer->NowNanos() : 0;
  std::vector<std::vector<Tuple>> split = partitioner->Split(std::move(tuples));
  for (size_t k = 0; k < split.size(); ++k) {
    if (split[k].empty()) continue;
    const size_t rows = split[k].size();
    CHRONICLE_RETURN_NOT_OK(
        engines_[k]->Append(chronicle, std::move(split[k]), chronon).status());
    result.rows += rows;
    ++result.shards_touched;
    shards_[k]->routed_rows.fetch_add(rows, std::memory_order_relaxed);
    shards_[k]->enqueued_batches.fetch_add(1, std::memory_order_relaxed);
  }
  if (req_scope != nullptr) {
    // The router's split+fan-out over all receiving shards is the merge
    // stage of a traced request (detail = shards touched this tick). The
    // per-shard maintain spans it covers carry their own shard ids.
    req_scope->tracer->Emit(
        req_scope->ctx, req_scope->tracer->NewSpanId(), req_scope->root_span,
        obs::ReqStage::kMerge, /*shard=*/-1, req_scope->worker, merge_start,
        req_scope->tracer->NowNanos() - merge_start, result.shards_touched);
  }
  last_chronon_ = chronon;
  rows_routed_.fetch_add(result.rows, std::memory_order_relaxed);
  return result;
}

Result<ShardAppendResult> ShardedDatabase::AppendMulti(
    std::vector<std::pair<std::string, std::vector<Tuple>>> inserts,
    Chronon chronon) {
  if (ingest_active()) {
    return Status::FailedPrecondition(
        "synchronous AppendMulti while the async pipeline is running");
  }
  if (chronon < last_chronon_) {
    return Status::OutOfRange("chronon must be non-decreasing");
  }
  if (engines_.size() == 1) {
    CHRONICLE_ASSIGN_OR_RETURN(AppendResult r,
                               engines_[0]->AppendMulti(std::move(inserts),
                                                        chronon));
    ShardAppendResult result;
    result.chronon = chronon;
    result.shards_touched = 1;
    for (const auto& [id, rows] : r.event.inserts) result.rows += rows.size();
    last_chronon_ = chronon;
    rows_routed_.fetch_add(result.rows, std::memory_order_relaxed);
    return result;
  }
  // Split every chronicle's rows, then hand each receiving shard ONE
  // AppendMulti so its slice of the logical tick shares a per-shard SN.
  std::vector<std::vector<std::pair<std::string, std::vector<Tuple>>>>
      per_shard(engines_.size());
  for (auto& [name, rows] : inserts) {
    CHRONICLE_ASSIGN_OR_RETURN(const Partitioner* partitioner,
                               PartitionerFor(name));
    std::vector<std::vector<Tuple>> split = partitioner->Split(std::move(rows));
    for (size_t k = 0; k < split.size(); ++k) {
      if (split[k].empty()) continue;
      per_shard[k].emplace_back(name, std::move(split[k]));
    }
  }
  ShardAppendResult result;
  result.chronon = chronon;
  for (size_t k = 0; k < per_shard.size(); ++k) {
    if (per_shard[k].empty()) continue;
    uint64_t rows = 0;
    for (const auto& [name, batch] : per_shard[k]) rows += batch.size();
    CHRONICLE_RETURN_NOT_OK(
        engines_[k]->AppendMulti(std::move(per_shard[k]), chronon).status());
    result.rows += rows;
    ++result.shards_touched;
    shards_[k]->routed_rows.fetch_add(rows, std::memory_order_relaxed);
    shards_[k]->enqueued_batches.fetch_add(1, std::memory_order_relaxed);
  }
  last_chronon_ = chronon;
  rows_routed_.fetch_add(result.rows, std::memory_order_relaxed);
  return result;
}

Result<std::vector<ShardAppendResult>> ShardedDatabase::AppendMany(
    const std::string& chronicle, std::vector<std::vector<Tuple>> batches) {
  std::vector<ShardAppendResult> results;
  results.reserve(batches.size());
  for (auto& batch : batches) {
    CHRONICLE_ASSIGN_OR_RETURN(
        ShardAppendResult r,
        AppendRouted(chronicle, std::move(batch), last_chronon_ + 1));
    results.push_back(r);
  }
  return results;
}

// --- async multi-core pipeline ---

Status ShardedDatabase::StartIngest(size_t num_producers) {
  if (ingest_active()) {
    return Status::FailedPrecondition("ingest pipeline already running");
  }
  if (num_producers == 0) {
    return Status::InvalidArgument("num_producers must be >= 1");
  }
  num_producers_ = num_producers;
  stop_.store(false, std::memory_order_relaxed);
  lanes_.clear();
  lanes_.reserve(num_producers * engines_.size());
  for (size_t i = 0; i < num_producers * engines_.size(); ++i) {
    lanes_.push_back(
        std::make_unique<ShardLane>(options_.sharding.queue_capacity));
  }
  workers_.reserve(engines_.size());
  for (size_t k = 0; k < engines_.size(); ++k) {
    workers_.emplace_back([this, k] { WorkerLoop(k); });
  }
  return Status::OK();
}

void ShardedDatabase::WorkerLoop(size_t shard) {
  ShardState& state = *shards_[shard];
  while (true) {
    state.busy.store(true, std::memory_order_release);
    bool popped = false;
    for (size_t p = 0; p < num_producers_; ++p) {
      SpscQueue<IngestItem>& ring = lanes_[p * engines_.size() + shard]->ring;
      IngestItem item;
      while (ring.TryPop(&item)) {
        popped = true;
        if (state.has_error.load(std::memory_order_acquire)) continue;
        Status st = engines_[shard]
                        ->Append(chronicle_names_[item.chronicle],
                                 std::move(item.tuples))
                        .status();
        if (!st.ok()) state.RecordError(std::move(st));
      }
    }
    if (!popped) {
      state.busy.store(false, std::memory_order_release);
      if (stop_.load(std::memory_order_acquire)) {
        // One more sweep below on the next iteration would find nothing:
        // producers are gone before stop_ is set (StopIngest contract).
        bool drained = true;
        for (size_t p = 0; p < num_producers_ && drained; ++p) {
          drained = lanes_[p * engines_.size() + shard]->ring.EmptyApprox();
        }
        if (drained) return;
      }
      std::this_thread::yield();
    }
  }
}

Status ShardedDatabase::EnqueueAppend(size_t producer,
                                      const std::string& chronicle,
                                      std::vector<Tuple> tuples) {
  if (!ingest_active()) {
    return Status::FailedPrecondition("ingest pipeline not running");
  }
  if (producer >= num_producers_) {
    return Status::InvalidArgument("producer index out of range");
  }
  auto it = chronicles_by_name_.find(chronicle);
  if (it == chronicles_by_name_.end()) {
    return Status::NotFound("unknown chronicle: " + chronicle);
  }
  const ChronicleId id = it->second;
  const uint64_t rows = tuples.size();
  std::vector<std::vector<Tuple>> split =
      partitioners_[id].Split(std::move(tuples));
  for (size_t k = 0; k < split.size(); ++k) {
    if (split[k].empty()) continue;
    ShardState& state = *shards_[k];
    state.routed_rows.fetch_add(split[k].size(), std::memory_order_relaxed);
    state.enqueued_batches.fetch_add(1, std::memory_order_relaxed);
    IngestItem item;
    item.chronicle = id;
    item.tuples = std::move(split[k]);
    SpscQueue<IngestItem>& ring = lanes_[producer * engines_.size() + k]->ring;
    while (!ring.TryPush(std::move(item))) {
      // Bounded-queue backpressure: the producer waits out a full lane,
      // unless the shard has already failed (then it would wait forever).
      if (state.has_error.load(std::memory_order_acquire)) {
        return state.FirstError();
      }
      std::this_thread::yield();
    }
  }
  rows_routed_.fetch_add(rows, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedDatabase::Flush() {
  if (!ingest_active()) return Status::OK();
  // Two consecutive all-idle observations: lanes can only refill from
  // producers, which have stopped enqueueing by the time Flush is called.
  for (int settled = 0; settled < 2;) {
    bool idle = true;
    for (const auto& lane : lanes_) idle = idle && lane->ring.EmptyApprox();
    for (const auto& state : shards_) {
      idle = idle && !state->busy.load(std::memory_order_acquire);
    }
    if (idle) {
      ++settled;
    } else {
      settled = 0;
      std::this_thread::yield();
    }
  }
  for (const auto& state : shards_) {
    CHRONICLE_RETURN_NOT_OK(state->FirstError());
  }
  return Status::OK();
}

Status ShardedDatabase::StopIngest() {
  if (!ingest_active()) return Status::OK();
  Status flushed = Flush();
  stop_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  lanes_.clear();
  num_producers_ = 0;
  return flushed;
}

// --- merged reads ---

Result<std::vector<Tuple>> ShardedDatabase::ScanView(
    const std::string& view) const {
  if (engines_.size() == 1) return engines_[0]->ScanView(view);
  auto it = views_by_name_.find(view);
  if (it == views_by_name_.end()) {
    return Status::NotFound("unknown view: " + view);
  }
  return MergeView(views_[it->second], nullptr);
}

Result<Tuple> ShardedDatabase::QueryView(const std::string& view,
                                         const Tuple& key) const {
  if (engines_.size() == 1) return engines_[0]->QueryView(view, key);
  auto it = views_by_name_.find(view);
  if (it == views_by_name_.end()) {
    return Status::NotFound("unknown view: " + view);
  }
  const ViewMeta& meta = views_[it->second];
  if (meta.aligned && !key.empty()) {
    // Every row of this group lives on the shard its key hashes to: route
    // the point lookup there and skip the merge entirely.
    const size_t owner = StableValueHash(key[0]) % engines_.size();
    return engines_[owner]->QueryView(view, key);
  }
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<Tuple> rows, MergeView(meta, &key));
  if (rows.empty()) {
    return Status::NotFound("no group for key in view " + view);
  }
  return rows[0];
}

Result<std::vector<Tuple>> ShardedDatabase::MergeView(const ViewMeta& meta,
                                                      const Tuple* key) const {
  // The scratch (finalizer view + merge table) is retained per view name:
  // building the plan and PersistentView per read dominated merged-scan
  // cost, and clearing the hash table keeps its buckets warm. The final
  // sort makes the unordered merge table safe — output stays byte-
  // identical to the unsharded engine's.
  std::lock_guard<std::mutex> lock(merge_mu_);
  MergeScratch& scratch = merge_scratch_[meta.name];
  if (scratch.view == nullptr) {
    CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr plan,
                               meta.plan_factory(*engines_[0]));
    std::vector<ComputedColumn> computed;
    if (meta.computed_factory) computed = meta.computed_factory(*engines_[0]);
    CHRONICLE_ASSIGN_OR_RETURN(
        scratch.view,
        PersistentView::Make(0, meta.name, std::move(plan), *meta.spec,
                             std::move(computed), meta.index_mode));
  }
  // Aligned views partition their groups: every row of a group lives on
  // the shard its key hashes to, so each shard's raw states are already
  // complete and the merge table can be skipped outright.
  if (meta.aligned) {
    std::vector<Tuple> rows;
    Status status;
    for (size_t k = 0; k < engines_.size(); ++k) {
      CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* shard_view,
                                 engines_[k]->GetView(meta.name));
      shard_view->VisitGroups([&](const Tuple& group_key,
                                  const std::vector<AggState>& states,
                                  int64_t) {
        if (!status.ok()) return;
        if (key != nullptr && TupleCompare(group_key, *key) != 0) return;
        Result<Tuple> row =
            scratch.view->FinalizeGroupStates(group_key, states);
        if (!row.ok()) {
          status = row.status();
          return;
        }
        rows.push_back(std::move(*row));
      });
      CHRONICLE_RETURN_NOT_OK(status);
    }
    std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
      return TupleCompare(a, b) < 0;
    });
    return rows;
  }
  // 1. Merge raw per-shard group states (decomposability: AggSpec::Merge
  //    is exact for every built-in aggregate).
  auto& merged = scratch.groups;
  merged.clear();
  const std::vector<AggSpec>& aggs = meta.spec->aggregates();
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* shard_view,
                               engines_[k]->GetView(meta.name));
    shard_view->VisitGroups([&](const Tuple& group_key,
                                const std::vector<AggState>& states,
                                int64_t multiplicity) {
      if (key != nullptr && TupleCompare(group_key, *key) != 0) return;
      auto [it, inserted] = merged.try_emplace(group_key);
      if (inserted) {
        it->second.states = states;
        it->second.multiplicity = multiplicity;
        return;
      }
      for (size_t i = 0; i < aggs.size() && i < states.size(); ++i) {
        aggs[i].Merge(&it->second.states[i], states[i]);
      }
      it->second.multiplicity += multiplicity;
    });
  }
  // 2. Finalize each merged group through the scratch PersistentView's
  //    finalizer (aggregate Finalize + computed columns) so output rows
  //    are byte-identical to the unsharded engine's, without paying a
  //    second materialization into the scratch view's table.
  std::vector<Tuple> rows;
  rows.reserve(merged.size());
  for (auto& [group_key, group] : merged) {
    CHRONICLE_ASSIGN_OR_RETURN(
        Tuple row, scratch.view->FinalizeGroupStates(group_key, group.states));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return TupleCompare(a, b) < 0;
  });
  return rows;
}

// --- durability ---

Result<std::vector<wal::RecoveryReport>> ShardedDatabase::RecoverFromWal() {
  if (options_.sharding.wal_dir.empty()) {
    return Status::FailedPrecondition("ShardingOptions.wal_dir is not set");
  }
  if (!wals_.empty()) {
    return Status::FailedPrecondition("recover before AttachWals");
  }
  std::vector<wal::RecoveryReport> reports;
  reports.reserve(engines_.size());
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(
        wal::RecoveryReport report,
        wal::Recover(options_.sharding.wal_dir + "/shard-" + std::to_string(k),
                     engines_[k].get()));
    reports.push_back(std::move(report));
  }
  // Replay advanced each engine's chronon shard-locally; the router's
  // synchronous-path clock must resume past the furthest shard or the
  // next Append would hand out a regressing chronon.
  for (const auto& engine : engines_) {
    last_chronon_ = std::max(last_chronon_, engine->group().last_chronon());
  }
  return reports;
}

Status ShardedDatabase::AttachWals() {
  if (options_.sharding.wal_dir.empty()) return Status::OK();
  if (!wals_.empty()) {
    return Status::FailedPrecondition("WALs already attached");
  }
  for (size_t k = 0; k < engines_.size(); ++k) {
    CHRONICLE_ASSIGN_OR_RETURN(
        std::unique_ptr<wal::Wal> wal,
        wal::Wal::Open(options_.sharding.wal_dir + "/shard-" +
                       std::to_string(k)));
    wal_logs_.push_back(
        std::make_unique<wal::WalMutationLog>(wal.get(), engines_[k].get()));
    engines_[k]->AttachMutationLog(wal_logs_.back().get());
    wals_.push_back(std::move(wal));
  }
  return Status::OK();
}

Status ShardedDatabase::CloseWals() {
  Status first = Status::OK();
  for (size_t k = 0; k < wals_.size(); ++k) {
    engines_[k]->DetachMutationLog();
    Status st = wals_[k]->Close();
    if (first.ok() && !st.ok()) first = st;
  }
  wals_.clear();
  wal_logs_.clear();
  return first;
}

// --- observability ---

obs::StatsSnapshot ShardedDatabase::CollectStats() const {
  obs::StatsSnapshot merged;
  std::unordered_map<std::string, size_t> metric_index;
  std::unordered_map<std::string, size_t> view_index;
  merged.sharding.attached = true;
  merged.sharding.num_shards = engines_.size();
  merged.sharding.partition_key = partition_column_;
  for (size_t k = 0; k < engines_.size(); ++k) {
    obs::StatsSnapshot snap = engines_[k]->CollectStats();
    merged.appends_processed += snap.appends_processed;
    merged.live_views = std::max(merged.live_views, snap.live_views);
    merged.delta_cache_hits += snap.delta_cache_hits;
    merged.delta_cache_misses += snap.delta_cache_misses;
    merged.trace_emitted += snap.trace_emitted;
    merged.trace_capacity += snap.trace_capacity;

    obs::ShardStatsSnapshot shard_row;
    shard_row.shard = k;
    shard_row.appends_processed = snap.appends_processed;
    shard_row.enqueued_batches =
        shards_[k]->enqueued_batches.load(std::memory_order_relaxed);
    shard_row.routed_rows =
        shards_[k]->routed_rows.load(std::memory_order_relaxed);
    for (size_t p = 0; p < num_producers_; ++p) {
      shard_row.queue_depth +=
          lanes_[p * engines_.size() + k]->ring.SizeApprox();
    }

    for (obs::MetricSample& sample : snap.metrics) {
      if (sample.is_histogram && sample.name == "maintenance_tick_ns") {
        shard_row.tick_latency_populated = true;
        shard_row.tick_latency = sample.histogram;
      }
      auto [it, inserted] =
          metric_index.try_emplace(sample.name, merged.metrics.size());
      if (inserted) {
        merged.metrics.push_back(std::move(sample));
      } else if (sample.is_histogram) {
        merged.metrics[it->second].histogram.Merge(sample.histogram);
      } else {
        merged.metrics[it->second].value += sample.value;
      }
    }

    for (obs::ViewStatsSnapshot& view : snap.views) {
      auto [it, inserted] =
          view_index.try_emplace(view.name, merged.views.size());
      if (inserted) {
        merged.views.push_back(std::move(view));
        continue;
      }
      obs::ViewStatsSnapshot& dst = merged.views[it->second];
      dst.stats.ticks += view.stats.ticks;
      dst.stats.updates += view.stats.updates;
      dst.stats.delta_rows += view.stats.delta_rows;
      dst.stats.compiled_ticks += view.stats.compiled_ticks;
      dst.stats.interpreted_ticks += view.stats.interpreted_ticks;
      dst.stats.relation_lookups += view.stats.relation_lookups;
      dst.stats.max_intermediate_rows = std::max(
          dst.stats.max_intermediate_rows, view.stats.max_intermediate_rows);
      dst.stats.plan_slots = std::max(dst.stats.plan_slots,
                                      view.stats.plan_slots);
      dst.stats.arena_hwm_bytes =
          std::max(dst.stats.arena_hwm_bytes, view.stats.arena_hwm_bytes);
      dst.stats.max_dedupe_load =
          std::max(dst.stats.max_dedupe_load, view.stats.max_dedupe_load);
      if (view.profiled) {
        dst.profiled = true;
        dst.latency.Merge(view.latency);
      }
    }

    if (snap.storage.attached) {
      merged.storage.attached = true;
      if (merged.storage.data_dir.empty()) {
        merged.storage.data_dir = options_.storage.data_dir;
      }
      merged.storage.segments_sealed += snap.storage.segments_sealed;
      merged.storage.segments_evicted += snap.storage.segments_evicted;
      merged.storage.segments_quarantined += snap.storage.segments_quarantined;
      merged.storage.rows_sealed += snap.storage.rows_sealed;
      merged.storage.rows_evicted += snap.storage.rows_evicted;
      merged.storage.bytes_written += snap.storage.bytes_written;
      merged.storage.seal_failures += snap.storage.seal_failures;
      merged.storage.backfill_views += snap.storage.backfill_views;
      merged.storage.backfill_rows += snap.storage.backfill_rows;
      for (obs::ChronicleTierSnapshot& tier : snap.storage.chronicles) {
        tier.name = "shard-" + std::to_string(k) + "/" + tier.name;
        merged.storage.chronicles.push_back(std::move(tier));
      }
    }

    merged.sharding.shards.push_back(std::move(shard_row));
  }
  // WAL stats are written by the shard engines' append threads; only a
  // quiesced pipeline yields a consistent read.
  if (!wals_.empty() && !ingest_active()) {
    merged.wal.attached = true;
    for (const auto& wal : wals_) {
      const wal::WalStats& stats = wal->stats();
      merged.wal.records_logged += stats.records_logged;
      merged.wal.bytes_logged += stats.bytes_logged;
      merged.wal.syncs += stats.syncs;
      merged.wal.segments_created += stats.segments_created;
      merged.wal.segments_removed += stats.segments_removed;
      merged.wal.checkpoints_written += stats.checkpoints_written;
      merged.wal.group_commits += stats.group_commits;
      merged.wal.group_commit_ticks += stats.group_commit_ticks;
      merged.wal.fsync_latency.Merge(stats.fsync_latency);
    }
  }
  return merged;
}

}  // namespace shard
}  // namespace chronicle
