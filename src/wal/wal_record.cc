#include "wal/wal_record.h"

#include <algorithm>

#include "checkpoint/serde.h"

namespace chronicle {
namespace wal {

WalRecord WalRecord::MakeAppend(
    SeqNum sn, Chronon chronon,
    std::vector<std::pair<std::string, std::vector<Tuple>>> inserts) {
  WalRecord r;
  r.type = WalRecordType::kAppend;
  r.sn = sn;
  r.chronon = chronon;
  r.inserts = std::move(inserts);
  return r;
}

WalRecord WalRecord::MakeRelationInsert(std::string relation, Tuple row) {
  WalRecord r;
  r.type = WalRecordType::kRelationInsert;
  r.relation = std::move(relation);
  r.row = std::move(row);
  return r;
}

WalRecord WalRecord::MakeRelationUpdate(std::string relation, Value key,
                                        Tuple row) {
  WalRecord r;
  r.type = WalRecordType::kRelationUpdate;
  r.relation = std::move(relation);
  r.key = std::move(key);
  r.row = std::move(row);
  return r;
}

WalRecord WalRecord::MakeRelationDelete(std::string relation, Value key) {
  WalRecord r;
  r.type = WalRecordType::kRelationDelete;
  r.relation = std::move(relation);
  r.key = std::move(key);
  return r;
}

bool operator==(const WalRecord& a, const WalRecord& b) {
  return a.lsn == b.lsn && a.type == b.type && a.sn == b.sn &&
         a.chronon == b.chronon && a.inserts == b.inserts &&
         a.relation == b.relation && a.key == b.key && a.row == b.row;
}

std::string EncodeWalRecord(const WalRecord& record) {
  checkpoint::Writer w;
  w.WriteU64(record.lsn);
  w.WriteU8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kAppend:
      w.WriteU64(record.sn);
      w.WriteI64(record.chronon);
      w.WriteU32(static_cast<uint32_t>(record.inserts.size()));
      for (const auto& [name, tuples] : record.inserts) {
        w.WriteString(name);
        w.WriteU32(static_cast<uint32_t>(tuples.size()));
        for (const Tuple& t : tuples) w.WriteTuple(t);
      }
      break;
    case WalRecordType::kRelationInsert:
      w.WriteString(record.relation);
      w.WriteTuple(record.row);
      break;
    case WalRecordType::kRelationUpdate:
      w.WriteString(record.relation);
      w.WriteValue(record.key);
      w.WriteTuple(record.row);
      break;
    case WalRecordType::kRelationDelete:
      w.WriteString(record.relation);
      w.WriteValue(record.key);
      break;
  }
  return w.release();
}

std::string EncodeAppendRecord(uint64_t lsn, SeqNum sn, Chronon chronon,
                               const std::vector<AppendBatchRef>& batches) {
  checkpoint::Writer w;
  // Rough size estimate (tag + length prefixes + ~12 bytes per value)
  // to avoid buffer regrowth while encoding the tick.
  size_t estimate = 29;
  for (const AppendBatchRef& batch : batches) {
    estimate += 12 + batch.name->size();
    for (const Tuple& t : *batch.tuples) estimate += 4 + t.size() * 12;
  }
  w.Reserve(estimate);
  w.WriteU64(lsn);
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kAppend));
  w.WriteU64(sn);
  w.WriteI64(chronon);
  w.WriteU32(static_cast<uint32_t>(batches.size()));
  for (const AppendBatchRef& batch : batches) {
    w.WriteString(*batch.name);
    w.WriteU32(static_cast<uint32_t>(batch.tuples->size()));
    for (const Tuple& t : *batch.tuples) w.WriteTuple(t);
  }
  return w.release();
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  checkpoint::Reader r(payload);
  WalRecord record;
  CHRONICLE_ASSIGN_OR_RETURN(record.lsn, r.ReadU64());
  CHRONICLE_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kAppend: {
      record.type = WalRecordType::kAppend;
      CHRONICLE_ASSIGN_OR_RETURN(record.sn, r.ReadU64());
      CHRONICLE_ASSIGN_OR_RETURN(record.chronon, r.ReadI64());
      CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_chronicles, r.ReadU32());
      record.inserts.reserve(
          std::min<size_t>(num_chronicles, r.remaining()));
      for (uint32_t i = 0; i < num_chronicles; ++i) {
        CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_tuples, r.ReadU32());
        std::vector<Tuple> tuples;
        tuples.reserve(std::min<size_t>(num_tuples, r.remaining()));
        for (uint32_t j = 0; j < num_tuples; ++j) {
          CHRONICLE_ASSIGN_OR_RETURN(Tuple t, r.ReadTuple());
          tuples.push_back(std::move(t));
        }
        record.inserts.emplace_back(std::move(name), std::move(tuples));
      }
      break;
    }
    case WalRecordType::kRelationInsert: {
      record.type = WalRecordType::kRelationInsert;
      CHRONICLE_ASSIGN_OR_RETURN(record.relation, r.ReadString());
      CHRONICLE_ASSIGN_OR_RETURN(record.row, r.ReadTuple());
      break;
    }
    case WalRecordType::kRelationUpdate: {
      record.type = WalRecordType::kRelationUpdate;
      CHRONICLE_ASSIGN_OR_RETURN(record.relation, r.ReadString());
      CHRONICLE_ASSIGN_OR_RETURN(record.key, r.ReadValue());
      CHRONICLE_ASSIGN_OR_RETURN(record.row, r.ReadTuple());
      break;
    }
    case WalRecordType::kRelationDelete: {
      record.type = WalRecordType::kRelationDelete;
      CHRONICLE_ASSIGN_OR_RETURN(record.relation, r.ReadString());
      CHRONICLE_ASSIGN_OR_RETURN(record.key, r.ReadValue());
      break;
    }
    default:
      return Status::ParseError("bad wal record type " + std::to_string(type));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in wal record (" +
                              std::to_string(r.remaining()) + ")");
  }
  return record;
}

}  // namespace wal
}  // namespace chronicle
