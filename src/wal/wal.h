// Segmented, CRC-checksummed write-ahead log with group commit.
//
// The paper's central trick (Thm 4.2) is maintaining views WITHOUT storing
// the chronicle — which means the in-memory database is the only copy of
// the view state. This module makes the ingest path durable:
//
//   * every DML operation (append tick or proactive relation update) is
//     encoded as a WalRecord and framed into the active segment file as
//     [len u32][crc32c u32][payload] BEFORE the operation is applied;
//   * segments are named wal-<first_lsn>.log and rotated at a size bound;
//     a fresh segment is started on every Open so new records never land
//     after a torn tail;
//   * fsync cost is controlled by FsyncPolicy — per record (strongest),
//     per batch (group commit: one fsync amortized over many records), or
//     never (durability limited to what the OS flushes);
//   * recovery is checkpoint + log-tail replay: Wal::WriteCheckpoint saves
//     a checkpoint image stamped with the log watermark (the LSN of the
//     last record it covers) and then deletes segments that lie entirely
//     below the watermark. wal::Recover (recovery.h) restores the newest
//     valid checkpoint and replays the tail through the normal maintenance
//     path.
//
// Because the primary state is volatile, this is a pure redo log: there is
// nothing to undo after a crash, and a record is "committed" exactly when
// it is fsynced. Replay stops at the first corrupt record; corruption
// anywhere other than the tail of the log is reported as kDataLoss rather
// than silently applying garbage past a hole.

#ifndef CHRONICLE_WAL_WAL_H_
#define CHRONICLE_WAL_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "db/database.h"
#include "wal/wal_file.h"
#include "wal/wal_record.h"

namespace chronicle {
namespace wal {

// When the log fsyncs. The policy trades append latency for the size of
// the window of acknowledged-but-lost operations on power failure.
enum class FsyncPolicy : uint8_t {
  kEveryRecord = 0,  // fsync after every record: no lost acknowledged ops
  kBatch = 1,        // group commit: fsync once per group_commit_bytes
  kNever = 2,        // never fsync: durability is whatever the OS flushed
};

struct WalOptions {
  // Rotate to a new segment once the active one exceeds this many bytes.
  uint64_t segment_bytes = 4ull << 20;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  // kBatch: fsync when this many bytes have accumulated since the last sync.
  // The window bounds both the fsync rate and the worst-case loss on a
  // power failure.
  uint64_t group_commit_bytes = 256ull << 10;
  // How many checkpoint files to keep (the newest plus N-1 predecessors,
  // as insurance against a latent bad write in the newest).
  size_t checkpoints_to_keep = 2;
  // Segment file factory; tests substitute fault-injecting files. Defaults
  // to OpenWritableFile.
  FileFactory file_factory;
};

struct WalStats {
  uint64_t records_logged = 0;
  uint64_t bytes_logged = 0;
  uint64_t syncs = 0;
  uint64_t segments_created = 0;
  uint64_t segments_removed = 0;
  uint64_t checkpoints_written = 0;
  uint64_t group_commits = 0;       // LogAppendGroup calls
  uint64_t group_commit_ticks = 0;  // ticks covered by those calls
  // Wall time of each fsync (the obs layer mirrors this into its WAL
  // snapshot; see obs::WalStatsSnapshot).
  LatencyHistogram fsync_latency;
};

// The log manager: owns the active segment, assigns LSNs, and runs the
// checkpoint + truncation protocol. Single-writer; not thread-safe.
class Wal {
 public:
  // Opens the log in `dir` (created if missing). Scans existing segments
  // and checkpoints to resume the LSN sequence past everything already on
  // disk, then starts a fresh segment.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           WalOptions options = {});

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record (stamping it with the next LSN) and applies the
  // fsync policy. Returns the assigned LSN.
  Result<uint64_t> Log(WalRecord record);

  // Hot-path variant of Log for append ticks: encodes straight from the
  // borrowed batches without building a WalRecord.
  Result<uint64_t> LogAppend(SeqNum sn, Chronon chronon,
                             const std::vector<AppendBatchRef>& batches);

  // One append tick of a LogAppendGroup batch (borrowed, like
  // AppendBatchRef).
  struct AppendTickRef {
    SeqNum sn = 0;
    Chronon chronon = 0;
    std::vector<AppendBatchRef> batches;
  };

  // Group commit for batched ingest (ChronicleDatabase::AppendMany):
  // frames every tick under consecutive LSNs, then applies the fsync
  // policy ONCE for the whole group — under kEveryRecord that is a single
  // sync instead of one per tick. Returns the last LSN written.
  Result<uint64_t> LogAppendGroup(const std::vector<AppendTickRef>& ticks);

  // Forces everything logged so far to stable storage.
  Status Sync();

  // LSN the next record will receive; last logged LSN is next_lsn()-1.
  uint64_t next_lsn() const { return next_lsn_; }
  // Highest LSN known to have reached stable storage.
  uint64_t last_synced_lsn() const { return last_synced_lsn_; }

  // Checkpoint protocol: syncs the log, saves `db` (which this log must be
  // attached to, or at least whose state must cover every logged record)
  // into checkpoint-<watermark>.ckpt via an atomic rename, then prunes
  // checkpoints beyond `checkpoints_to_keep` and deletes every segment
  // whose records are covered by every RETAINED checkpoint — the log is
  // kept back to the oldest retained watermark so recovery can still fall
  // back to an older image if the newest is damaged.
  Status WriteCheckpoint(const ChronicleDatabase& db);

  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

  // Syncs and closes the active segment. Further Log calls fail.
  Status Close();

 private:
  Wal(std::string dir, WalOptions options);

  Status OpenSegment(uint64_t first_lsn);
  Status TruncateObsolete(uint64_t watermark);
  // Frames `payload` (already stamped with next_lsn_), writes it, and
  // applies the fsync policy — unless `defer_sync`, which skips the policy
  // so a batch caller can group-commit once at the end. Returns the
  // consumed LSN.
  Result<uint64_t> LogPayload(const std::string& payload,
                              bool defer_sync = false);
  // The per-record half of the fsync policy, factored out so group commits
  // can apply it once per batch.
  Status ApplyFsyncPolicy();

  std::string dir_;
  WalOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t next_lsn_ = 1;
  uint64_t last_synced_lsn_ = 0;
  uint64_t segment_bytes_written_ = 0;
  uint64_t bytes_since_sync_ = 0;
  bool closed_ = false;
  WalStats stats_;
};

// MutationLog adapter: plugs a Wal into ChronicleDatabase's durability
// hook. Resolves chronicle ids to names (the durable identity) through the
// database it is attached to.
class WalMutationLog : public MutationLog {
 public:
  WalMutationLog(Wal* wal, const ChronicleDatabase* db)
      : wal_(wal), db_(db) {}

  Status LogAppend(SeqNum sn, Chronon chronon,
                   const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>&
                       inserts) override;
  Status LogAppendMany(const std::vector<PendingAppend>& ticks) override;
  // Pre-seal write-ahead barrier for the tiered store.
  Status Sync() override { return wal_->Sync(); }
  Status LogRelationInsert(const std::string& relation,
                           const Tuple& row) override;
  Status LogRelationUpdate(const std::string& relation, const Value& key,
                           const Tuple& row) override;
  Status LogRelationDelete(const std::string& relation,
                           const Value& key) override;

 private:
  Wal* wal_;
  const ChronicleDatabase* db_;
};

// --- replay / inspection machinery (used by recovery.h and tests) ---

struct WalReplayStats {
  uint64_t records_seen = 0;     // valid records found across segments
  uint64_t records_applied = 0;  // lsn > watermark, handed to `apply`
  uint64_t records_skipped = 0;  // lsn <= watermark (covered by checkpoint)
  bool tail_truncated = false;   // replay stopped at a corrupt log tail
  std::string tail_detail;       // what the corruption looked like
};

// Replays every record with LSN > `watermark`, in LSN order, through
// `apply`. A corrupt record at the very tail of the log stops replay
// cleanly (tail_truncated); corruption anywhere else — including an LSN
// gap between segments — fails with kDataLoss. An error from `apply`
// aborts the replay.
Status ReplayWal(const std::string& dir, uint64_t watermark,
                 const std::function<Status(const WalRecord&)>& apply,
                 WalReplayStats* stats);

// The parsed valid prefix of one segment file.
struct SegmentContents {
  uint64_t first_lsn = 0;
  std::vector<WalRecord> records;
  bool clean = false;  // parsed to EOF with no corruption
  std::string corruption_detail;
};

// Reads a segment, stopping at the first corrupt frame. Only an unreadable
// file is an error; corruption is reported in the result.
Result<SegmentContents> ReadSegment(const std::string& path);

// File-name helpers (layout: wal-<lsn>.log, checkpoint-<watermark>.ckpt,
// both zero-padded so lexicographic order is LSN order).
std::string WalSegmentFileName(uint64_t first_lsn);
std::string CheckpointFileName(uint64_t watermark);

// Sorted (ascending) lists of the data files present in `dir`. Missing
// directory yields an empty list.
struct WalDirEntry {
  std::string path;
  uint64_t lsn = 0;  // segment first_lsn / checkpoint watermark
};
Result<std::vector<WalDirEntry>> ListWalSegments(const std::string& dir);
Result<std::vector<WalDirEntry>> ListCheckpoints(const std::string& dir);

// Checkpoint file wrapper: [magic][version][watermark u64][len u64]
// [crc32c u32][payload]. The CRC lets recovery validate an image before
// applying it, so a corrupt newest checkpoint is skipped in favor of an
// older one instead of half-restoring.
std::string WrapCheckpointImage(uint64_t watermark, const std::string& image);
struct UnwrappedCheckpoint {
  uint64_t watermark = 0;
  std::string image;
};
Result<UnwrappedCheckpoint> UnwrapCheckpointImage(const std::string& bytes);

}  // namespace wal
}  // namespace chronicle

#endif  // CHRONICLE_WAL_WAL_H_
