#include "wal/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "checkpoint/checkpoint.h"
#include "common/crc32.h"
#include "common/stopwatch.h"

namespace chronicle {
namespace wal {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kSegmentMagic = 0x4357414C;     // "CWAL"
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;         // magic, version, first_lsn
constexpr uint32_t kCheckpointMagic = 0x43434B50;  // "CCKP"
constexpr uint32_t kCheckpointVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}

uint32_t GetU32(const std::string& data, size_t pos) {
  uint32_t v;
  std::memcpy(&v, data.data() + pos, 4);
  return v;
}

uint64_t GetU64(const std::string& data, size_t pos) {
  uint64_t v;
  std::memcpy(&v, data.data() + pos, 8);
  return v;
}

// Parses the zero-padded decimal LSN out of "<prefix><lsn><suffix>".
bool ParseLsnFileName(const std::string& name, const std::string& prefix,
                      const std::string& suffix, uint64_t* lsn) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *lsn = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

Result<std::vector<WalDirEntry>> ListByPattern(const std::string& dir,
                                               const std::string& prefix,
                                               const std::string& suffix) {
  std::vector<WalDirEntry> entries;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return entries;  // missing directory: nothing to list
  for (const auto& entry : it) {
    uint64_t lsn = 0;
    if (!entry.is_regular_file(ec)) continue;
    if (ParseLsnFileName(entry.path().filename().string(), prefix, suffix,
                         &lsn)) {
      entries.push_back({entry.path().string(), lsn});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const WalDirEntry& a, const WalDirEntry& b) {
              return a.lsn < b.lsn;
            });
  return entries;
}

std::string FormatLsn(uint64_t lsn) {
  std::string digits = std::to_string(lsn);
  return std::string(20 - std::min<size_t>(20, digits.size()), '0') + digits;
}

}  // namespace

std::string WalSegmentFileName(uint64_t first_lsn) {
  return "wal-" + FormatLsn(first_lsn) + ".log";
}

std::string CheckpointFileName(uint64_t watermark) {
  return "checkpoint-" + FormatLsn(watermark) + ".ckpt";
}

Result<std::vector<WalDirEntry>> ListWalSegments(const std::string& dir) {
  return ListByPattern(dir, "wal-", ".log");
}

Result<std::vector<WalDirEntry>> ListCheckpoints(const std::string& dir) {
  return ListByPattern(dir, "checkpoint-", ".ckpt");
}

Result<SegmentContents> ReadSegment(const std::string& path) {
  CHRONICLE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  SegmentContents seg;
  uint64_t name_lsn = 0;
  if (!ParseLsnFileName(fs::path(path).filename().string(), "wal-", ".log",
                        &name_lsn)) {
    return Status::InvalidArgument("'" + path + "' is not a wal segment name");
  }
  seg.first_lsn = name_lsn;
  if (data.size() < kSegmentHeaderBytes) {
    seg.corruption_detail = "truncated segment header";
    return seg;
  }
  if (GetU32(data, 0) != kSegmentMagic) {
    seg.corruption_detail = "bad segment magic";
    return seg;
  }
  if (GetU32(data, 4) != kSegmentVersion) {
    seg.corruption_detail = "unsupported segment version";
    return seg;
  }
  if (GetU64(data, 8) != name_lsn) {
    seg.corruption_detail = "segment header/name first_lsn mismatch";
    return seg;
  }

  size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      seg.corruption_detail = "truncated frame header at offset " +
                              std::to_string(pos);
      return seg;
    }
    const uint32_t len = GetU32(data, pos);
    const uint32_t crc = GetU32(data, pos + 4);
    if (len > data.size() - pos - 8) {
      seg.corruption_detail = "truncated frame body at offset " +
                              std::to_string(pos);
      return seg;
    }
    const std::string payload = data.substr(pos + 8, len);
    if (Crc32c(payload) != crc) {
      seg.corruption_detail = "crc mismatch at offset " + std::to_string(pos);
      return seg;
    }
    Result<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) {
      // CRC matched but the payload does not decode: writer-side damage.
      seg.corruption_detail = "undecodable record at offset " +
                              std::to_string(pos) + ": " +
                              record.status().message();
      return seg;
    }
    if (record->lsn != seg.first_lsn + seg.records.size()) {
      seg.corruption_detail =
          "lsn discontinuity at offset " + std::to_string(pos) + ": got " +
          std::to_string(record->lsn) + ", expected " +
          std::to_string(seg.first_lsn + seg.records.size());
      return seg;
    }
    seg.records.push_back(std::move(record).value());
    pos += 8 + len;
  }
  seg.clean = true;
  return seg;
}

Status ReplayWal(const std::string& dir, uint64_t watermark,
                 const std::function<Status(const WalRecord&)>& apply,
                 WalReplayStats* stats) {
  WalReplayStats local;
  WalReplayStats* out = stats != nullptr ? stats : &local;
  *out = WalReplayStats{};
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> segments,
                             ListWalSegments(dir));
  uint64_t next_needed = watermark + 1;  // next LSN the database is missing
  for (size_t i = 0; i < segments.size(); ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(SegmentContents seg,
                               ReadSegment(segments[i].path));
    if (seg.first_lsn > next_needed) {
      return Status::DataLoss("wal gap: segment " + segments[i].path +
                              " starts at lsn " +
                              std::to_string(seg.first_lsn) + " but lsn " +
                              std::to_string(next_needed) + " is missing");
    }
    for (const WalRecord& record : seg.records) {
      ++out->records_seen;
      if (record.lsn < next_needed) {
        ++out->records_skipped;
        continue;
      }
      Status applied = apply(record);
      if (!applied.ok()) {
        return Status(applied.code(), "replaying wal lsn " +
                                          std::to_string(record.lsn) + ": " +
                                          applied.message());
      }
      ++out->records_applied;
      next_needed = record.lsn + 1;
    }
    if (!seg.clean) {
      const uint64_t valid_end = seg.first_lsn + seg.records.size();
      // A successor segment may legitimately take over exactly where the
      // valid prefix ends (the log was re-opened after a crash). Anything
      // else means records were lost in the middle of the log.
      const bool superseded =
          i + 1 < segments.size() && segments[i + 1].lsn <= valid_end;
      if (!superseded) {
        if (i + 1 < segments.size()) {
          return Status::DataLoss("corrupt record inside the log (" +
                                  segments[i].path + ": " +
                                  seg.corruption_detail + ") with " +
                                  std::to_string(segments.size() - i - 1) +
                                  " newer segment(s) after it");
        }
        out->tail_truncated = true;
        out->tail_detail = segments[i].path + ": " + seg.corruption_detail;
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

std::string WrapCheckpointImage(uint64_t watermark, const std::string& image) {
  std::string out;
  out.reserve(image.size() + 28);
  PutU32(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointVersion);
  PutU64(&out, watermark);
  PutU64(&out, image.size());
  PutU32(&out, Crc32c(image));
  out += image;
  return out;
}

Result<UnwrappedCheckpoint> UnwrapCheckpointImage(const std::string& bytes) {
  if (bytes.size() < 28) {
    return Status::DataLoss("checkpoint file truncated");
  }
  if (GetU32(bytes, 0) != kCheckpointMagic) {
    return Status::DataLoss("bad checkpoint magic");
  }
  if (GetU32(bytes, 4) != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint wrapper version " +
                            std::to_string(GetU32(bytes, 4)));
  }
  UnwrappedCheckpoint out;
  out.watermark = GetU64(bytes, 8);
  const uint64_t len = GetU64(bytes, 16);
  if (len != bytes.size() - 28) {
    return Status::DataLoss("checkpoint length mismatch");
  }
  const uint32_t crc = GetU32(bytes, 24);
  out.image = bytes.substr(28);
  if (Crc32c(out.image) != crc) {
    return Status::DataLoss("checkpoint crc mismatch");
  }
  return out;
}

// --- Wal ---

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

Wal::~Wal() {
  if (!closed_ && file_ != nullptr) (void)Close();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       WalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create wal directory '" + dir +
                                   "': " + ec.message());
  }
  if (!options.file_factory) {
    options.file_factory = [](const std::string& path) {
      return OpenWritableFile(path);
    };
  }
  std::unique_ptr<Wal> wal(new Wal(dir, std::move(options)));

  // Resume the LSN sequence past everything already on disk, so a re-opened
  // log never reuses an LSN a checkpoint or a valid record already claims.
  uint64_t max_lsn = 0;
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> segments,
                             ListWalSegments(dir));
  for (const WalDirEntry& entry : segments) {
    CHRONICLE_ASSIGN_OR_RETURN(SegmentContents seg, ReadSegment(entry.path));
    if (!seg.records.empty()) {
      max_lsn = std::max(max_lsn, seg.first_lsn + seg.records.size() - 1);
    }
  }
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> checkpoints,
                             ListCheckpoints(dir));
  for (const WalDirEntry& entry : checkpoints) {
    max_lsn = std::max(max_lsn, entry.lsn);
  }
  wal->next_lsn_ = max_lsn + 1;
  wal->last_synced_lsn_ = max_lsn;
  CHRONICLE_RETURN_NOT_OK(wal->OpenSegment(wal->next_lsn_));
  return wal;
}

Status Wal::OpenSegment(uint64_t first_lsn) {
  if (file_ != nullptr) {
    CHRONICLE_RETURN_NOT_OK(Sync());
    CHRONICLE_RETURN_NOT_OK(file_->Close());
    file_.reset();
  }
  const std::string path = dir_ + "/" + WalSegmentFileName(first_lsn);
  CHRONICLE_ASSIGN_OR_RETURN(file_, options_.file_factory(path));
  std::string header;
  PutU32(&header, kSegmentMagic);
  PutU32(&header, kSegmentVersion);
  PutU64(&header, first_lsn);
  CHRONICLE_RETURN_NOT_OK(file_->Append(header));
  segment_bytes_written_ = header.size();
  ++stats_.segments_created;
  return Status::OK();
}

Result<uint64_t> Wal::Log(WalRecord record) {
  if (closed_) return Status::FailedPrecondition("wal is closed");
  record.lsn = next_lsn_;
  return LogPayload(EncodeWalRecord(record));
}

Result<uint64_t> Wal::LogAppend(SeqNum sn, Chronon chronon,
                                const std::vector<AppendBatchRef>& batches) {
  if (closed_) return Status::FailedPrecondition("wal is closed");
  return LogPayload(EncodeAppendRecord(next_lsn_, sn, chronon, batches));
}

Result<uint64_t> Wal::LogAppendGroup(const std::vector<AppendTickRef>& ticks) {
  if (closed_) return Status::FailedPrecondition("wal is closed");
  if (ticks.empty()) return Status::InvalidArgument("empty append group");
  ++stats_.group_commits;
  stats_.group_commit_ticks += ticks.size();
  uint64_t last_lsn = 0;
  for (const AppendTickRef& tick : ticks) {
    CHRONICLE_ASSIGN_OR_RETURN(
        last_lsn,
        LogPayload(EncodeAppendRecord(next_lsn_, tick.sn, tick.chronon,
                                      tick.batches),
                   /*defer_sync=*/true));
  }
  CHRONICLE_RETURN_NOT_OK(ApplyFsyncPolicy());
  return last_lsn;
}

Result<uint64_t> Wal::LogPayload(const std::string& payload, bool defer_sync) {
  // Frame header + payload are appended separately (the stdio layer
  // batches them) to avoid copying the payload into a combined buffer.
  char header[8];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  const uint64_t frame_bytes = 8 + payload.size();

  if (segment_bytes_written_ + frame_bytes > options_.segment_bytes &&
      segment_bytes_written_ > kSegmentHeaderBytes) {
    CHRONICLE_RETURN_NOT_OK(OpenSegment(next_lsn_));
  }
  CHRONICLE_RETURN_NOT_OK(file_->Append(std::string_view(header, 8)));
  CHRONICLE_RETURN_NOT_OK(file_->Append(payload));
  const uint64_t lsn = next_lsn_++;
  segment_bytes_written_ += frame_bytes;
  bytes_since_sync_ += frame_bytes;
  ++stats_.records_logged;
  stats_.bytes_logged += frame_bytes;

  if (!defer_sync) CHRONICLE_RETURN_NOT_OK(ApplyFsyncPolicy());
  return lsn;
}

Status Wal::ApplyFsyncPolicy() {
  switch (options_.fsync) {
    case FsyncPolicy::kEveryRecord:
      CHRONICLE_RETURN_NOT_OK(Sync());
      break;
    case FsyncPolicy::kBatch:
      if (bytes_since_sync_ >= options_.group_commit_bytes) {
        CHRONICLE_RETURN_NOT_OK(Sync());
      }
      break;
    case FsyncPolicy::kNever:
      break;
  }
  return Status::OK();
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::OK();
  Stopwatch watch;
  CHRONICLE_RETURN_NOT_OK(file_->Sync());
  stats_.fsync_latency.Record(watch.ElapsedNanos());
  last_synced_lsn_ = next_lsn_ - 1;
  bytes_since_sync_ = 0;
  ++stats_.syncs;
  return Status::OK();
}

Status Wal::WriteCheckpoint(const ChronicleDatabase& db) {
  if (closed_) return Status::FailedPrecondition("wal is closed");
  CHRONICLE_RETURN_NOT_OK(Sync());
  const uint64_t watermark = next_lsn_ - 1;
  CHRONICLE_ASSIGN_OR_RETURN(std::string image,
                             checkpoint::SaveDatabase(db, watermark));
  const std::string path = dir_ + "/" + CheckpointFileName(watermark);
  CHRONICLE_RETURN_NOT_OK(
      AtomicWriteFile(path, WrapCheckpointImage(watermark, image)));
  ++stats_.checkpoints_written;
  return TruncateObsolete(watermark);
}

Status Wal::TruncateObsolete(uint64_t watermark) {
  std::error_code ec;
  // Prune old checkpoints beyond the configured keep-count.
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> checkpoints,
                             ListCheckpoints(dir_));
  const size_t keep = std::max<size_t>(options_.checkpoints_to_keep, 1);
  if (checkpoints.size() > keep) {
    for (size_t i = 0; i + keep < checkpoints.size(); ++i) {
      fs::remove(checkpoints[i].path, ec);
    }
    checkpoints.erase(checkpoints.begin(),
                      checkpoints.begin() +
                          static_cast<ptrdiff_t>(checkpoints.size() - keep));
  }
  // Segments must survive back to the OLDEST retained checkpoint, not just
  // the one we wrote: if the newest image turns out to be damaged, recovery
  // falls back to an older one and replays forward from ITS watermark.
  uint64_t horizon = watermark;
  if (!checkpoints.empty()) {
    horizon = std::min(horizon, checkpoints.front().lsn);
  }
  // A segment is obsolete when its successor starts at or below horizon+1:
  // every record it holds is then covered by every retained checkpoint.
  // The active segment is always the last one and is never removed.
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> segments,
                             ListWalSegments(dir_));
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].lsn <= horizon + 1) {
      if (fs::remove(segments[i].path, ec) && !ec) ++stats_.segments_removed;
    }
  }
  return Status::OK();
}

Status Wal::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (file_ == nullptr) return Status::OK();
  CHRONICLE_RETURN_NOT_OK(Sync());
  Status st = file_->Close();
  file_.reset();
  return st;
}

// --- WalMutationLog ---

Status WalMutationLog::LogAppend(
    SeqNum sn, Chronon chronon,
    const std::vector<std::pair<ChronicleId, std::vector<Tuple>>>& inserts) {
  std::vector<AppendBatchRef> batches;
  batches.reserve(inserts.size());
  for (const auto& [id, tuples] : inserts) {
    CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* chron,
                               db_->group().GetChronicle(id));
    batches.push_back({&chron->name(), &tuples});
  }
  return wal_->LogAppend(sn, chronon, batches).status();
}

Status WalMutationLog::LogAppendMany(const std::vector<PendingAppend>& ticks) {
  std::vector<Wal::AppendTickRef> group;
  group.reserve(ticks.size());
  for (const PendingAppend& tick : ticks) {
    Wal::AppendTickRef ref;
    ref.sn = tick.sn;
    ref.chronon = tick.chronon;
    ref.batches.reserve(tick.inserts->size());
    for (const auto& [id, tuples] : *tick.inserts) {
      CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* chron,
                                 db_->group().GetChronicle(id));
      ref.batches.push_back({&chron->name(), &tuples});
    }
    group.push_back(std::move(ref));
  }
  return wal_->LogAppendGroup(group).status();
}

Status WalMutationLog::LogRelationInsert(const std::string& relation,
                                         const Tuple& row) {
  return wal_->Log(WalRecord::MakeRelationInsert(relation, row)).status();
}

Status WalMutationLog::LogRelationUpdate(const std::string& relation,
                                         const Value& key, const Tuple& row) {
  return wal_->Log(WalRecord::MakeRelationUpdate(relation, key, row)).status();
}

Status WalMutationLog::LogRelationDelete(const std::string& relation,
                                         const Value& key) {
  return wal_->Log(WalRecord::MakeRelationDelete(relation, key)).status();
}

}  // namespace wal
}  // namespace chronicle
