#include "wal/wal_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

namespace chronicle {
namespace wal {

namespace {

// Buffered stdio-backed file: fwrite batches small record appends, Sync
// does fflush + fsync. The default 4 KiB stdio buffer would flush every
// couple of frames; widen it so group commit batches syscalls too.
constexpr size_t kStdioBufferBytes = 64 << 10;

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {
    buffer_.resize(kStdioBufferBytes);
    std::setvbuf(file_, buffer_.data(), _IOFBF, buffer_.size());
  }

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("write to closed file " + path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::DataLoss("short write to '" + path_ +
                              "': " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ != nullptr && std::fflush(file_) != 0) {
      return Status::DataLoss("fflush of '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Sync() override {
    CHRONICLE_RETURN_NOT_OK(Flush());
    if (file_ != nullptr && ::fsync(::fileno(file_)) != 0) {
      return Status::DataLoss("fsync of '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      return Status::DataLoss("close of '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
  std::vector<char> buffer_;  // must outlive file_ (setvbuf)
};

}  // namespace

Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " + std::strerror(errno));
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<PosixWritableFile>(f, path));
}

Status FaultInjectingFile::Append(std::string_view data) {
  const uint64_t start = bytes_offered_;
  bytes_offered_ += data.size();
  switch (plan_.kind) {
    case FaultKind::kNone:
    case FaultKind::kFailSync:
      return base_->Append(data);
    case FaultKind::kTornWrite: {
      if (triggered_) return Status::OK();  // crashed: drop silently
      if (bytes_offered_ <= plan_.trigger_offset) return base_->Append(data);
      triggered_ = true;
      const size_t keep = static_cast<size_t>(
          plan_.trigger_offset > start ? plan_.trigger_offset - start : 0);
      return base_->Append(data.substr(0, keep));
    }
    case FaultKind::kBitFlip: {
      if (triggered_ || plan_.trigger_offset < start ||
          plan_.trigger_offset >= bytes_offered_) {
        return base_->Append(data);
      }
      triggered_ = true;
      std::string mutated(data);
      mutated[static_cast<size_t>(plan_.trigger_offset - start)] ^=
          static_cast<char>(1u << (plan_.bit & 7));
      return base_->Append(mutated);
    }
  }
  return Status::Internal("unreachable fault kind");
}

Status FaultInjectingFile::Sync() {
  if (plan_.kind == FaultKind::kFailSync &&
      bytes_offered_ >= plan_.trigger_offset) {
    triggered_ = true;
    return Status::DataLoss("injected fsync failure");
  }
  return base_->Sync();
}

Status FaultInjectingFile::Flush() { return base_->Flush(); }

Status FaultInjectingFile::Close() { return base_->Close(); }

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::DataLoss("read error on '" + path + "'");
  return data;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    CHRONICLE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                               OpenWritableFile(tmp));
    CHRONICLE_RETURN_NOT_OK(f->Append(data));
    CHRONICLE_RETURN_NOT_OK(f->Sync());
    CHRONICLE_RETURN_NOT_OK(f->Close());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::DataLoss("rename '" + tmp + "' -> '" + path +
                            "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace chronicle
