// Crash recovery: checkpoint + log-tail replay.
//
// Protocol (docs/DURABILITY.md):
//   1. The caller constructs a fresh ChronicleDatabase and re-applies the
//      same DDL (definitions live in application code, exactly as for plain
//      checkpoint restore — see checkpoint/checkpoint.h).
//   2. Recover() restores the newest checkpoint whose CRC validates
//      (corrupt newer checkpoints are skipped in favor of older ones),
//      yielding the state as of the checkpoint's watermark LSN.
//   3. Every WAL record with LSN > watermark is replayed through the
//      normal DML entry points, so views are re-maintained incrementally —
//      the recovered state is bit-identical to an uninterrupted run up to
//      the last fully-synced record.
//   4. Replay stops cleanly at a torn tail (the last record of the log was
//      mid-write when the crash hit); corruption anywhere earlier fails
//      with kDataLoss instead of applying records past a hole.
//
// After a successful Recover, open a Wal in the same directory and attach
// it (ChronicleDatabase::AttachMutationLog) to resume logging; Wal::Open
// starts a fresh segment past the recovered tail, never appending after
// torn bytes.

#ifndef CHRONICLE_WAL_RECOVERY_H_
#define CHRONICLE_WAL_RECOVERY_H_

#include <string>

#include "common/status.h"
#include "db/database.h"
#include "wal/wal.h"

namespace chronicle {
namespace wal {

struct RecoveryReport {
  // True if a checkpoint image was restored (false: replayed from genesis).
  bool checkpoint_restored = false;
  // Path of the checkpoint that was applied, when one was.
  std::string checkpoint_path;
  // Number of newer checkpoint files skipped because they failed
  // validation.
  uint64_t checkpoints_skipped = 0;
  // The applied checkpoint's watermark (0 without a checkpoint): replay
  // starts at watermark + 1.
  uint64_t watermark = 0;
  WalReplayStats replay;

  // LSN of the last operation the recovered database reflects.
  uint64_t recovered_lsn() const {
    return watermark + replay.records_applied;
  }
};

// Recovers the database state persisted in `dir` into `db`, which must be
// freshly constructed with the same DDL applied, no appends processed, and
// no mutation log attached yet.
Result<RecoveryReport> Recover(const std::string& dir, ChronicleDatabase* db);

}  // namespace wal
}  // namespace chronicle

#endif  // CHRONICLE_WAL_RECOVERY_H_
