// WAL record model and serialization.
//
// One record per DML operation, in commit order:
//   * kAppend         — one tick: (sn, chronon, tuples per chronicle). Covers
//                       Append, Append-with-chronon, and AppendMulti; a
//                       single-chronicle append is a one-entry tick.
//   * kRelationInsert / kRelationUpdate / kRelationDelete — proactive
//                       relation updates (paper §2.3).
//
// Chronicles and relations are identified BY NAME: ids are assigned in DDL
// order and the whole recovery protocol (like checkpoint restore) matches
// objects by name against freshly re-applied DDL.
//
// Records are encoded with the checkpoint serde (bounds-checked little-
// endian) and framed by the segment writer as [len u32][crc32c u32][payload];
// the CRC covers the payload, so any in-payload corruption surfaces as a
// frame-level kDataLoss before decoding is attempted.

#ifndef CHRONICLE_WAL_WAL_RECORD_H_
#define CHRONICLE_WAL_WAL_RECORD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/chronicle_group.h"
#include "types/tuple.h"
#include "types/value.h"

namespace chronicle {
namespace wal {

enum class WalRecordType : uint8_t {
  kAppend = 1,
  kRelationInsert = 2,
  kRelationUpdate = 3,
  kRelationDelete = 4,
};

struct WalRecord {
  // Log sequence number: position of this record in the log, starting at 1.
  // Assigned by the log manager; the checkpoint watermark is an LSN.
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kAppend;

  // kAppend payload.
  SeqNum sn = 0;
  Chronon chronon = 0;
  std::vector<std::pair<std::string, std::vector<Tuple>>> inserts;

  // Relation-op payload.
  std::string relation;
  Value key;  // update / delete target
  Tuple row;  // insert / update payload

  static WalRecord MakeAppend(
      SeqNum sn, Chronon chronon,
      std::vector<std::pair<std::string, std::vector<Tuple>>> inserts);
  static WalRecord MakeRelationInsert(std::string relation, Tuple row);
  static WalRecord MakeRelationUpdate(std::string relation, Value key,
                                      Tuple row);
  static WalRecord MakeRelationDelete(std::string relation, Value key);
};

bool operator==(const WalRecord& a, const WalRecord& b);

// Encodes the record payload (no frame).
std::string EncodeWalRecord(const WalRecord& record);

// Zero-copy encoding for the hot ingest path: an append tick is encoded
// straight from the database's borrowed batches, skipping the tuple copies
// a WalRecord would force. Produces bytes identical to EncodeWalRecord of
// the equivalent kAppend record.
struct AppendBatchRef {
  const std::string* name;
  const std::vector<Tuple>* tuples;
};
std::string EncodeAppendRecord(uint64_t lsn, SeqNum sn, Chronon chronon,
                               const std::vector<AppendBatchRef>& batches);

// Decodes a payload produced by EncodeWalRecord. ParseError on malformed
// input; never crashes or over-allocates on corrupt length prefixes.
Result<WalRecord> DecodeWalRecord(const std::string& payload);

}  // namespace wal
}  // namespace chronicle

#endif  // CHRONICLE_WAL_WAL_RECORD_H_
