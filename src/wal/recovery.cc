#include "wal/recovery.h"

#include <utility>

#include "checkpoint/checkpoint.h"

namespace chronicle {
namespace wal {

namespace {

// Re-applies one logged operation through the normal DML path.
Status ApplyRecord(const WalRecord& record, ChronicleDatabase* db) {
  switch (record.type) {
    case WalRecordType::kAppend: {
      CHRONICLE_ASSIGN_OR_RETURN(AppendResult result,
                                 db->AppendMulti(record.inserts,
                                                 record.chronon));
      if (result.event.sn != record.sn) {
        return Status::DataLoss(
            "append replayed under sn " + std::to_string(result.event.sn) +
            " but the log recorded sn " + std::to_string(record.sn) +
            " (log and checkpoint disagree)");
      }
      return Status::OK();
    }
    case WalRecordType::kRelationInsert:
      return db->InsertInto(record.relation, record.row);
    case WalRecordType::kRelationUpdate:
      return db->UpdateRelation(record.relation, record.key, record.row);
    case WalRecordType::kRelationDelete:
      return db->DeleteFrom(record.relation, record.key);
  }
  return Status::Internal("unreachable wal record type");
}

}  // namespace

Result<RecoveryReport> Recover(const std::string& dir,
                               ChronicleDatabase* db) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (db->appends_processed() != 0 || db->group().last_sn() != 0) {
    return Status::FailedPrecondition(
        "recovery needs a fresh database with only DDL applied");
  }
  if (db->durability().mutation_log != nullptr) {
    return Status::FailedPrecondition(
        "detach the mutation log before recovery: replayed operations must "
        "not be re-logged (attach after Recover returns)");
  }

  RecoveryReport report;

  // Newest checkpoint whose wrapper CRC validates wins. A checkpoint that
  // validates but fails to apply is a real error (DDL mismatch), not
  // corruption — retrying an older image into a half-restored database
  // would compound the damage.
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<WalDirEntry> checkpoints,
                             ListCheckpoints(dir));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Result<std::string> bytes = ReadFileToString(it->path);
    if (!bytes.ok()) {
      ++report.checkpoints_skipped;
      continue;
    }
    Result<UnwrappedCheckpoint> unwrapped = UnwrapCheckpointImage(*bytes);
    if (!unwrapped.ok()) {
      ++report.checkpoints_skipped;
      continue;
    }
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t image_watermark,
                               checkpoint::CheckpointWatermark(
                                   unwrapped->image));
    if (image_watermark != unwrapped->watermark) {
      return Status::DataLoss("checkpoint '" + it->path +
                              "': wrapper and image watermarks disagree");
    }
    CHRONICLE_RETURN_NOT_OK(
        checkpoint::RestoreDatabase(unwrapped->image, db));
    report.checkpoint_restored = true;
    report.checkpoint_path = it->path;
    report.watermark = unwrapped->watermark;
    break;
  }

  CHRONICLE_RETURN_NOT_OK(ReplayWal(
      dir, report.watermark,
      [db](const WalRecord& record) { return ApplyRecord(record, db); },
      &report.replay));
  return report;
}

}  // namespace wal
}  // namespace chronicle
