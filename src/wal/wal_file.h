// File primitives for the write-ahead log.
//
// WritableFile is the narrow interface the log writer needs: append bytes,
// force them to stable storage, close. The production implementation is a
// buffered POSIX file; FaultInjectingFile wraps any WritableFile and
// simulates the failure modes a real disk exhibits — torn writes (a crash
// mid-write persists only a prefix), bit flips, and failed fsyncs — so the
// recovery path can be tested against provably-corrupt logs instead of
// hand-crafted byte soup.

#ifndef CHRONICLE_WAL_WAL_FILE_H_
#define CHRONICLE_WAL_WAL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace chronicle {
namespace wal {

class WritableFile {
 public:
  virtual ~WritableFile() = default;

  // Appends `data` at the end of the file. Durability is NOT implied;
  // call Sync() for that.
  virtual Status Append(std::string_view data) = 0;
  // Flushes library buffers and fsyncs the file to stable storage.
  virtual Status Sync() = 0;
  // Flushes library buffers to the OS without fsync.
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
};

// Opens (creating or truncating) a buffered POSIX file for appending.
Result<std::unique_ptr<WritableFile>> OpenWritableFile(const std::string& path);

// Pluggable factory so tests can substitute fault-injecting files for the
// log writer's segments.
using FileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(const std::string&)>;

// What a FaultInjectingFile does once its trigger point is reached.
enum class FaultKind : uint8_t {
  kNone = 0,
  // The write that crosses the trigger offset persists only up to it; every
  // later byte (including later Appends) is silently dropped, as if the
  // process died mid-write. Sync/Close still report success — exactly the
  // lie a crashed machine tells.
  kTornWrite,
  // One bit of the byte crossing the trigger offset is flipped in flight;
  // writing continues normally afterwards.
  kBitFlip,
  // Writes pass through untouched but every Sync() past the trigger offset
  // fails with kDataLoss (e.g. a dying device).
  kFailSync,
};

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  // Byte offset (counted over all Appends to this file) at which the fault
  // triggers.
  uint64_t trigger_offset = 0;
  // For kBitFlip: which bit of the affected byte to flip.
  int bit = 0;
};

// Wraps a real file and injects the planned fault. The wrapper also counts
// bytes written so tests can place faults on exact record boundaries.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base, FaultPlan plan)
      : base_(std::move(base)), plan_(plan) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Flush() override;
  Status Close() override;

  uint64_t bytes_offered() const { return bytes_offered_; }
  bool fault_triggered() const { return triggered_; }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultPlan plan_;
  uint64_t bytes_offered_ = 0;
  bool triggered_ = false;
};

// Reads a whole file into a string. NotFound if the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `data` to `path` atomically: write to a temp file in the same
// directory, sync, then rename over the target. A crash leaves either the
// old file or the new one, never a torn mixture.
Status AtomicWriteFile(const std::string& path, std::string_view data);

}  // namespace wal
}  // namespace chronicle

#endif  // CHRONICLE_WAL_WAL_FILE_H_
