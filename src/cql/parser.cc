#include "cql/parser.h"

#include <cctype>

namespace chronicle {
namespace cql {

namespace {

// Recursive-descent parser over a token vector.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    CHRONICLE_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    ConsumeSymbol(";");
    if (!AtEnd()) {
      return Error("unexpected trailing input starting with '" +
                   Peek().text + "'");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      CHRONICLE_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (!ConsumeSymbol(";") && !AtEnd()) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  // --- token helpers ---

  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && t.upper == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (ConsumeKeyword(kw)) return Status::OK();
    return Error("expected " + kw + " but found '" + Peek().text + "'");
  }
  bool PeekSymbol(const std::string& sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool ConsumeSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (ConsumeSymbol(sym)) return Status::OK();
    return Error("expected '" + sym + "' but found '" + Peek().text + "'");
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status(StatusCode::kParseError,
                    "expected " + what + " but found '" + Peek().text +
                        "' at offset " + std::to_string(Peek().position));
    }
    return Advance().text;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at offset " +
                              std::to_string(Peek().position) + ")");
  }

  // --- grammar ---

  Result<Statement> ParseStatementInner() {
    if (PeekKeyword("CREATE")) {
      if (PeekKeyword("CHRONICLE", 1)) return ParseCreateChronicle();
      if (PeekKeyword("RELATION", 1)) return ParseCreateRelation();
      if (PeekKeyword("VIEW", 1)) {
        return ParseCreateView(ViewTarget::Kind::kPersistent);
      }
      if (PeekKeyword("PERIODIC", 1) && PeekKeyword("VIEW", 2)) {
        Advance();  // CREATE (PERIODIC consumed in ParseCreateView)
        return ParseCreateViewTail(ViewTarget::Kind::kPeriodic);
      }
      if (PeekKeyword("SLIDING", 1) && PeekKeyword("VIEW", 2)) {
        Advance();  // CREATE
        return ParseCreateViewTail(ViewTarget::Kind::kSliding);
      }
      return Error(
          "expected CHRONICLE, RELATION, [PERIODIC|SLIDING] VIEW after CREATE");
    }
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("DROP")) return ParseDrop();
    if (PeekKeyword("EXPLAIN")) return ParseExplain();
    if (PeekKeyword("SHOW")) return ParseShow();
    if (PeekKeyword("CHECKPOINT")) return ParseCheckpoint();
    if (PeekKeyword("RESTORE")) return ParseRestore();
    if (PeekKeyword("SELECT")) {
      SelectStmt stmt;
      CHRONICLE_ASSIGN_OR_RETURN(stmt.query, ParseSelectQuery());
      return Statement(std::move(stmt));
    }
    return Error("expected a statement, found '" + Peek().text + "'");
  }

  Result<DataType> ParseType() {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("a type"));
    std::string upper;
    for (char c : name) upper += static_cast<char>(std::toupper(c));
    if (upper == "INT64" || upper == "INT" || upper == "BIGINT") {
      return DataType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
      return DataType::kDouble;
    }
    if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR") {
      return DataType::kString;
    }
    return Status::ParseError("unknown type '" + name + "'");
  }

  Result<std::vector<ColumnDef>> ParseColumnDefs() {
    CHRONICLE_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<ColumnDef> columns;
    do {
      ColumnDef def;
      CHRONICLE_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("a column name"));
      CHRONICLE_ASSIGN_OR_RETURN(def.type, ParseType());
      columns.push_back(std::move(def));
    } while (ConsumeSymbol(","));
    CHRONICLE_RETURN_NOT_OK(ExpectSymbol(")"));
    return columns;
  }

  Result<Statement> ParseCreateChronicle() {
    Advance();  // CREATE
    Advance();  // CHRONICLE
    CreateChronicleStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a chronicle name"));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.columns, ParseColumnDefs());
    if (ConsumeKeyword("RETAIN")) {
      if (ConsumeKeyword("ALL")) {
        stmt.retention = RetentionPolicy::All();
      } else if (ConsumeKeyword("NONE")) {
        stmt.retention = RetentionPolicy::None();
      } else if (ConsumeKeyword("LAST")) {
        if (Peek().type != TokenType::kInteger) {
          return Error("expected a row count after RETAIN LAST");
        }
        stmt.retention =
            RetentionPolicy::Window(static_cast<size_t>(Advance().int_value));
      } else if (ConsumeKeyword("HOT")) {
        // Tiered: the newest n rows stay in memory, older rows seal into
        // on-disk segments (needs a database opened with a data_dir).
        if (Peek().type != TokenType::kInteger) {
          return Error("expected a row count after RETAIN HOT");
        }
        stmt.retention =
            RetentionPolicy::Tiered(static_cast<size_t>(Advance().int_value));
      } else {
        return Error("expected ALL, NONE, LAST, or HOT after RETAIN");
      }
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateRelation() {
    Advance();  // CREATE
    Advance();  // RELATION
    CreateRelationStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.columns, ParseColumnDefs());
    if (ConsumeKeyword("KEY")) {
      CHRONICLE_ASSIGN_OR_RETURN(stmt.key_column,
                                 ExpectIdentifier("a key column"));
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateView(ViewTarget::Kind kind) {
    Advance();  // CREATE
    return ParseCreateViewTail(kind);
  }

  Result<Chronon> ExpectChronon(const std::string& what) {
    bool negative = ConsumeSymbol("-");
    if (Peek().type != TokenType::kInteger) {
      return Status(StatusCode::kParseError,
                    "expected an integer " + what + ", found '" + Peek().text +
                        "'");
    }
    const int64_t v = Advance().int_value;
    return static_cast<Chronon>(negative ? -v : v);
  }

  // Parses "[PERIODIC|SLIDING] VIEW name AS <select> [OVER ...]" after the
  // leading CREATE has been consumed.
  Result<Statement> ParseCreateViewTail(ViewTarget::Kind kind) {
    if (kind == ViewTarget::Kind::kPeriodic) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("PERIODIC"));
    } else if (kind == ViewTarget::Kind::kSliding) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("SLIDING"));
    }
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    CreateViewStmt stmt;
    stmt.target.kind = kind;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a view name"));
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("AS"));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.query, ParseSelectQuery());
    if (kind == ViewTarget::Kind::kPeriodic) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("OVER"));
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("PERIOD"));
      CHRONICLE_ASSIGN_OR_RETURN(stmt.target.period, ExpectChronon("period"));
      if (ConsumeKeyword("ORIGIN")) {
        CHRONICLE_ASSIGN_OR_RETURN(stmt.target.origin, ExpectChronon("origin"));
      }
      if (ConsumeKeyword("EXPIRE")) {
        CHRONICLE_RETURN_NOT_OK(ExpectKeyword("AFTER"));
        CHRONICLE_ASSIGN_OR_RETURN(stmt.target.expire_after,
                                   ExpectChronon("expiration"));
      }
    } else if (kind == ViewTarget::Kind::kSliding) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("OVER"));
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("WINDOW"));
      CHRONICLE_ASSIGN_OR_RETURN(Chronon panes, ExpectChronon("pane count"));
      stmt.target.num_panes = panes;
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("PANES"));
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("OF"));
      CHRONICLE_ASSIGN_OR_RETURN(stmt.target.pane_width,
                                 ExpectChronon("pane width"));
      if (ConsumeKeyword("ORIGIN")) {
        CHRONICLE_ASSIGN_OR_RETURN(stmt.target.origin, ExpectChronon("origin"));
      }
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    DropStmt stmt;
    if (ConsumeKeyword("VIEW")) {
      stmt.what = DropStmt::What::kView;
    } else if (ConsumeKeyword("RELATION")) {
      stmt.what = DropStmt::What::kRelation;
    } else {
      return Error("expected VIEW or RELATION after DROP (chronicles cannot "
                   "be dropped: the stream is the system of record)");
    }
    CHRONICLE_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseExplain() {
    Advance();  // EXPLAIN
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    ExplainStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("a view name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseShow() {
    Advance();  // SHOW
    ShowStmt stmt;
    if (ConsumeKeyword("CHRONICLES")) {
      stmt.what = ShowStmt::What::kChronicles;
    } else if (ConsumeKeyword("RELATIONS")) {
      stmt.what = ShowStmt::What::kRelations;
    } else if (ConsumeKeyword("VIEWS")) {
      stmt.what = ShowStmt::What::kViews;
    } else {
      return Error("expected CHRONICLES, RELATIONS, or VIEWS after SHOW");
    }
    return Statement(std::move(stmt));
  }

  Result<std::string> ExpectStringLiteral(const std::string& what) {
    if (Peek().type != TokenType::kString) {
      return Status(StatusCode::kParseError,
                    "expected a quoted " + what + ", found '" + Peek().text +
                        "'");
    }
    return Advance().text;
  }

  Result<Statement> ParseCheckpoint() {
    Advance();  // CHECKPOINT
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("TO"));
    CheckpointStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.path, ExpectStringLiteral("path"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseRestore() {
    Advance();  // RESTORE
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RestoreStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.path, ExpectStringLiteral("path"));
    return Statement(std::move(stmt));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    static const struct {
      const char* keyword;
      AggKind kind;
    } kAggs[] = {{"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
                 {"MIN", AggKind::kMin},     {"MAX", AggKind::kMax},
                 {"AVG", AggKind::kAvg},     {"TIERED", AggKind::kTieredDiscount},
                 {"FIRST", AggKind::kFirst}, {"LAST", AggKind::kLast}};
    for (const auto& agg : kAggs) {
      if (PeekKeyword(agg.keyword) && PeekSymbol("(", 1)) {
        Advance();  // function name
        Advance();  // (
        item.is_aggregate = true;
        item.agg_kind = agg.kind;
        if (item.agg_kind == AggKind::kCount && ConsumeSymbol("*")) {
          // COUNT(*)
        } else {
          CHRONICLE_ASSIGN_OR_RETURN(item.column,
                                     ExpectIdentifier("an input column"));
        }
        if (item.agg_kind == AggKind::kTieredDiscount) {
          while (ConsumeSymbol(",")) {
            Tier tier;
            CHRONICLE_ASSIGN_OR_RETURN(tier.threshold, ParseNumber("threshold"));
            CHRONICLE_RETURN_NOT_OK(ExpectSymbol(":"));
            CHRONICLE_ASSIGN_OR_RETURN(tier.rate, ParseNumber("rate"));
            item.tiers.push_back(tier);
          }
          if (item.tiers.empty()) {
            return Error("TIERED requires at least one threshold:rate tier");
          }
        }
        CHRONICLE_RETURN_NOT_OK(ExpectSymbol(")"));
        if (ConsumeKeyword("AS")) {
          CHRONICLE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("an alias"));
        }
        return item;
      }
    }
    // Not an aggregate call: parse a general expression. A bare column
    // reference stays a plain column item; anything richer becomes a
    // computed item and must be aliased.
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr expr, ParseOrExpr());
    if (expr->kind() == ExprKind::kColumn) {
      item.column = expr->column_name();
    } else {
      item.expr = std::move(expr);
    }
    if (ConsumeKeyword("AS")) {
      CHRONICLE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("an alias"));
    }
    if (item.expr != nullptr && item.alias.empty()) {
      return Error("computed select items require AS <alias>");
    }
    return item;
  }

  Result<double> ParseNumber(const std::string& what) {
    if (Peek().type == TokenType::kInteger) {
      return static_cast<double>(Advance().int_value);
    }
    if (Peek().type == TokenType::kFloat) {
      return Advance().float_value;
    }
    return Status(StatusCode::kParseError,
                  "expected a numeric " + what + ", found '" + Peek().text + "'");
  }

  Result<SelectQuery> ParseSelectQuery() {
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectQuery query;
    if (ConsumeSymbol("*")) {
      query.select_star = true;
    } else {
      do {
        CHRONICLE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        query.items.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    CHRONICLE_ASSIGN_OR_RETURN(query.from, ExpectIdentifier("a source name"));
    if (ConsumeKeyword("JOIN")) {
      query.join.kind = JoinClause::Kind::kKey;
      CHRONICLE_ASSIGN_OR_RETURN(query.join.relation,
                                 ExpectIdentifier("a relation name"));
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("ON"));
      CHRONICLE_ASSIGN_OR_RETURN(query.join.left_column,
                                 ExpectIdentifier("a chronicle column"));
      CHRONICLE_RETURN_NOT_OK(ExpectSymbol("="));
      CHRONICLE_ASSIGN_OR_RETURN(query.join.right_column,
                                 ExpectIdentifier("a relation column"));
    } else if (ConsumeKeyword("CROSS")) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      query.join.kind = JoinClause::Kind::kCross;
      CHRONICLE_ASSIGN_OR_RETURN(query.join.relation,
                                 ExpectIdentifier("a relation name"));
    }
    if (ConsumeKeyword("WHERE")) {
      CHRONICLE_ASSIGN_OR_RETURN(query.where, ParseOrExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        CHRONICLE_ASSIGN_OR_RETURN(std::string col,
                                   ExpectIdentifier("a grouping column"));
        query.group_by.push_back(std::move(col));
      } while (ConsumeSymbol(","));
    }
    return query;
  }

  // --- expressions ---

  Result<ScalarExprPtr> ParseOrExpr() {
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAndExpr());
    while (ConsumeKeyword("OR")) {
      CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAndExpr());
      lhs = ScalarExpr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseAndExpr() {
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseNotExpr());
    while (ConsumeKeyword("AND")) {
      CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseNotExpr());
      lhs = ScalarExpr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseNotExpr() {
    if (ConsumeKeyword("NOT")) {
      CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr operand, ParseNotExpr());
      return ScalarExpr::Not(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ScalarExprPtr> ParseComparison() {
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAdditive());
    static const struct {
      const char* symbol;
      CompareOp op;
    } kOps[] = {{"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
                {"<>", CompareOp::kNe}, {"=", CompareOp::kEq},
                {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& candidate : kOps) {
      if (ConsumeSymbol(candidate.symbol)) {
        CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAdditive());
        return ScalarExpr::Compare(candidate.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseAdditive() {
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (ConsumeSymbol("+")) {
        CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseMultiplicative());
        lhs = ScalarExpr::Arith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (ConsumeSymbol("-")) {
        CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseMultiplicative());
        lhs = ScalarExpr::Arith(ArithOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ScalarExprPtr> ParseMultiplicative() {
    CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParsePrimary());
    while (true) {
      if (ConsumeSymbol("*")) {
        CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParsePrimary());
        lhs = ScalarExpr::Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
      } else if (ConsumeSymbol("/")) {
        CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParsePrimary());
        lhs = ScalarExpr::Arith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ScalarExprPtr> ParsePrimary() {
    if (PeekKeyword("CASE")) return ParseCase();
    if (ConsumeSymbol("(")) {
      CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr inner, ParseOrExpr());
      CHRONICLE_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (ConsumeSymbol("-")) {
      CHRONICLE_ASSIGN_OR_RETURN(ScalarExprPtr inner, ParsePrimary());
      return ScalarExpr::Arith(ArithOp::kSub, Lit(Value(int64_t{0})),
                               std::move(inner));
    }
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Advance();
        return Lit(Value(t.int_value));
      case TokenType::kFloat:
        Advance();
        return Lit(Value(t.float_value));
      case TokenType::kString:
        Advance();
        return Lit(Value(t.text));
      case TokenType::kIdentifier: {
        Advance();
        if (t.text == "$sn") return ScalarExpr::SeqNumRef();
        if (t.text == "$chronon") return ScalarExpr::ChrononRef();
        return Col(t.text);
      }
      default:
        return Error("expected an expression, found '" + t.text + "'");
    }
  }

  // CASE WHEN c THEN v [WHEN ...] [ELSE v] END; a missing ELSE yields NULL.
  Result<ScalarExprPtr> ParseCase() {
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("CASE"));
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches;
    while (ConsumeKeyword("WHEN")) {
      std::pair<ScalarExprPtr, ScalarExprPtr> branch;
      CHRONICLE_ASSIGN_OR_RETURN(branch.first, ParseOrExpr());
      CHRONICLE_RETURN_NOT_OK(ExpectKeyword("THEN"));
      CHRONICLE_ASSIGN_OR_RETURN(branch.second, ParseOrExpr());
      branches.push_back(std::move(branch));
    }
    if (branches.empty()) {
      return Error("CASE requires at least one WHEN branch");
    }
    ScalarExprPtr else_value = Lit(Value());
    if (ConsumeKeyword("ELSE")) {
      CHRONICLE_ASSIGN_OR_RETURN(else_value, ParseOrExpr());
    }
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("END"));
    return ScalarExpr::Case(std::move(branches), std::move(else_value));
  }

  // --- literals (for INSERT/UPDATE/DELETE) ---

  Result<Value> ParseLiteralValue() {
    bool negative = ConsumeSymbol("-");
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Advance();
        return Value(negative ? -t.int_value : t.int_value);
      case TokenType::kFloat:
        Advance();
        return Value(negative ? -t.float_value : t.float_value);
      case TokenType::kString:
        if (negative) return Error("'-' before a string literal");
        Advance();
        return Value(t.text);
      case TokenType::kIdentifier:
        if (t.upper == "NULL") {
          Advance();
          return Value();
        }
        return Error("expected a literal, found '" + t.text + "'");
      default:
        return Error("expected a literal, found '" + t.text + "'");
    }
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("INTO"));
    InsertStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.target, ExpectIdentifier("a target name"));
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    do {
      CHRONICLE_RETURN_NOT_OK(ExpectSymbol("("));
      Tuple row;
      do {
        CHRONICLE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
      } while (ConsumeSymbol(","));
      CHRONICLE_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (ConsumeSymbol(","));
    if (ConsumeKeyword("AT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected an integer chronon after AT");
      }
      stmt.at = static_cast<Chronon>(Advance().int_value);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("a relation"));
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      std::pair<std::string, Value> set;
      CHRONICLE_ASSIGN_OR_RETURN(set.first, ExpectIdentifier("a column"));
      CHRONICLE_RETURN_NOT_OK(ExpectSymbol("="));
      CHRONICLE_ASSIGN_OR_RETURN(set.second, ParseLiteralValue());
      stmt.sets.push_back(std::move(set));
    } while (ConsumeSymbol(","));
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.where_column, ExpectIdentifier("a column"));
    CHRONICLE_RETURN_NOT_OK(ExpectSymbol("="));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.where_value, ParseLiteralValue());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    CHRONICLE_ASSIGN_OR_RETURN(stmt.relation, ExpectIdentifier("a relation"));
    CHRONICLE_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.where_column, ExpectIdentifier("a column"));
    CHRONICLE_RETURN_NOT_OK(ExpectSymbol("="));
    CHRONICLE_ASSIGN_OR_RETURN(stmt.where_value, ParseLiteralValue());
    return Statement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseOne();
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace cql
}  // namespace chronicle
