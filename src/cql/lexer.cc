#include "cql/lexer.h"

#include <cctype>
#include <charconv>

namespace chronicle {
namespace cql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentBody(input[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = input.substr(start, i - start);
      token.upper = Upper(token.text);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      token.text = input.substr(start, i - start);
      // std::from_chars reports overflow through an error code instead of
      // throwing (the fuzz tests feed 80-digit "literals").
      if (is_float) {
        token.type = TokenType::kFloat;
        auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(),
            token.float_value);
        if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
          return Status::ParseError("malformed numeric literal '" + token.text +
                                    "' at offset " + std::to_string(start));
        }
      } else {
        token.type = TokenType::kInteger;
        auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(),
            token.int_value);
        if (ec == std::errc::result_out_of_range) {
          return Status::ParseError("integer literal '" + token.text +
                                    "' out of range at offset " +
                                    std::to_string(start));
        }
        if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
          return Status::ParseError("malformed numeric literal '" + token.text +
                                    "' at offset " + std::to_string(start));
        }
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      std::string value;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          break;
        }
        value += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start - 1));
      }
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      const std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        token.type = TokenType::kSymbol;
        token.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),;.*=<>+-/:";
    if (kSingles.find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::ParseError("illegal character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cql
}  // namespace chronicle
