// CQL binder/executor: lowers parsed statements onto a ChronicleDatabase.
//
// CREATE VIEW statements are bound to chronicle-algebra plans + SCA
// summarizations: WHERE predicates that touch only base-chronicle columns
// are pushed below the join (so the §5.2 guard extraction sees them);
// JOIN ... ON c = r requires r to be the relation's declared key, which is
// exactly the CA_⋈ admission rule of Definition 4.2 — joining on a non-key
// column is rejected with a PlanError explaining why.

#ifndef CHRONICLE_CQL_BINDER_H_
#define CHRONICLE_CQL_BINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cql/parser.h"
#include "db/database.h"

namespace chronicle {
namespace cql {

// Result of executing one statement.
struct ExecResult {
  // Human-readable outcome ("view minutes_by_acct created (CA_join /
  // IM-log(R))", "3 rows appended at sn=17", ...).
  std::string message;
  // For SELECT: the result rows and their schema.
  Schema schema;
  std::vector<Tuple> rows;
};

// A CREATE VIEW query bound against one engine: the CA plan, the
// summarization, the finalizer columns, and the complexity label. Plans
// bind engine-local objects (scan nodes, relation pointers), so a sharded
// session calls BindViewQuery once per shard engine with the same query.
struct BoundView {
  CaExprPtr plan;
  // Optional only because SummarySpec has no default construction; always
  // engaged on a successful bind.
  std::optional<SummarySpec> spec;
  std::vector<ComputedColumn> computed;
  std::string classification;  // e.g. "CA_join / IM-log(R)"
};

// Binds the SELECT body of a CREATE VIEW: WHERE pushdown below the join
// (§5.2 guard extraction), the Definition 4.2 key-join admission check,
// and the GroupBy / DistinctProjection summarization.
Result<BoundView> BindViewQuery(ChronicleDatabase* db,
                                const SelectQuery& query);

// Applies an interactive SELECT's WHERE (unless `where_applied` says the
// plan already evaluated it) and select-list projection over materialized
// rows. Shared by the unsharded executor and the sharded session's
// merged-read path.
Result<ExecResult> ProjectSelect(const SelectQuery& query,
                                 const Schema& source_schema,
                                 std::vector<Tuple> rows, bool where_applied);

// Executes one parsed statement against `db`.
Result<ExecResult> Execute(ChronicleDatabase* db, const Statement& statement);

// Parses and executes one statement.
Result<ExecResult> Execute(ChronicleDatabase* db, const std::string& sql);

// Parses and executes a ';'-separated script, stopping at the first error;
// returns the result of the last statement.
Result<ExecResult> ExecuteScript(ChronicleDatabase* db, const std::string& sql);

}  // namespace cql
}  // namespace chronicle

#endif  // CHRONICLE_CQL_BINDER_H_
