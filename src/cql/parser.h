// CQL grammar and recursive-descent parser.
//
//   CREATE CHRONICLE name (col TYPE, ...)
//     [RETAIN {ALL | NONE | LAST n | HOT n}]
//   CREATE RELATION  name (col TYPE, ...) [KEY col]
//   CREATE VIEW name AS
//     SELECT item [, item ...]
//     FROM chronicle
//     [JOIN relation ON chron_col = rel_col | CROSS JOIN relation]
//     [WHERE predicate]
//     [GROUP BY col [, col ...]]
//   CREATE PERIODIC VIEW name AS <select>
//     OVER PERIOD p [ORIGIN o] [EXPIRE AFTER e]          (§5.1 calendars)
//   CREATE SLIDING VIEW name AS <select>
//     OVER WINDOW n PANES OF w [ORIGIN o]                (§5.1 cyclic buffer)
//   EXPLAIN VIEW name
//   SHOW {CHRONICLES | RELATIONS | VIEWS}
//   DROP VIEW name        (persistent, periodic, or sliding)
//   DROP RELATION name    (refused while referenced by a view)
//   CHECKPOINT TO 'path'
//   RESTORE FROM 'path'
//   INSERT INTO target VALUES (lit, ...) [, (lit, ...) ...] [AT chronon]
//   UPDATE relation SET col = lit [, ...] WHERE key_col = lit
//   DELETE FROM relation WHERE key_col = lit
//   SELECT {* | col [, col ...]} FROM view_or_relation [WHERE predicate]
//
//   item      := aggregate | column [AS alias] | expression AS alias
//   aggregate := {COUNT(*) | SUM(col) | MIN(col) | MAX(col) | AVG(col)
//                | TIERED(col, thr:rate [, thr:rate ...])} [AS alias]
//   TYPE      := INT64 | INT | BIGINT | DOUBLE | FLOAT | REAL
//                | STRING | TEXT | VARCHAR
//
// A view with aggregates becomes a GroupBy summarization (global group when
// GROUP BY is absent); a view without aggregates becomes a distinct
// projection. WHERE predicates may reference $sn and $chronon.

#ifndef CHRONICLE_CQL_PARSER_H_
#define CHRONICLE_CQL_PARSER_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "aggregates/aggregate.h"
#include "algebra/scalar_expr.h"
#include "common/status.h"
#include "cql/lexer.h"
#include "storage/chronicle.h"
#include "storage/chronicle_group.h"

namespace chronicle {
namespace cql {

struct ColumnDef {
  std::string name;
  DataType type;
};

struct CreateChronicleStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  RetentionPolicy retention = RetentionPolicy::All();
};

struct CreateRelationStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  std::string key_column;  // empty = keyless
};

// One item of a SELECT list: a plain column, an aggregate, or a computed
// scalar expression (e.g. `CASE WHEN total >= 50000 THEN 'gold' ... END AS
// status`). In CREATE VIEW, computed items become finalizer columns
// evaluated over the summarized output row; they must carry an alias.
struct SelectItem {
  bool is_aggregate = false;
  // Aggregate form.
  AggKind agg_kind = AggKind::kCount;
  std::vector<Tier> tiers;  // TIERED only
  // Computed form (non-null expr). Owns the expression.
  ScalarExprPtr expr;
  // Shared.
  std::string column;  // input column; empty for COUNT(*) / computed
  std::string alias;   // empty = default name
};

struct JoinClause {
  enum class Kind { kNone, kKey, kCross };
  Kind kind = Kind::kNone;
  std::string relation;
  std::string left_column;   // chronicle-side column (kKey)
  std::string right_column;  // relation-side column (kKey; must be its key)
};

struct SelectQuery {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::string from;
  JoinClause join;
  ScalarExprPtr where;  // may be null
  std::vector<std::string> group_by;
};

// How a CREATE ... VIEW materializes.
struct ViewTarget {
  enum class Kind { kPersistent, kPeriodic, kSliding };
  Kind kind = Kind::kPersistent;
  // kPeriodic: OVER PERIOD p [ORIGIN o] [EXPIRE AFTER e]
  Chronon period = 0;
  Chronon origin = 0;
  Chronon expire_after = -1;  // -1 = never
  // kSliding: OVER WINDOW n PANES OF w [ORIGIN o]
  int64_t num_panes = 0;
  Chronon pane_width = 0;
};

struct CreateViewStmt {
  std::string name;
  SelectQuery query;
  ViewTarget target;
};

// EXPLAIN VIEW name — plan tree + complexity classification.
struct ExplainStmt {
  std::string view;
};

// SHOW CHRONICLES / RELATIONS / VIEWS.
struct ShowStmt {
  enum class What { kChronicles, kRelations, kViews };
  What what = What::kViews;
};

// DROP VIEW name / DROP RELATION name.
struct DropStmt {
  enum class What { kView, kRelation };
  What what = What::kView;
  std::string name;
};

// CHECKPOINT TO 'path' / RESTORE FROM 'path'.
struct CheckpointStmt {
  std::string path;
};
struct RestoreStmt {
  std::string path;
};

struct InsertStmt {
  std::string target;  // chronicle or relation
  std::vector<Tuple> rows;
  std::optional<Chronon> at;  // chronicles only
};

struct UpdateStmt {
  std::string relation;
  std::vector<std::pair<std::string, Value>> sets;
  std::string where_column;
  Value where_value;
};

struct DeleteStmt {
  std::string relation;
  std::string where_column;
  Value where_value;
};

struct SelectStmt {
  SelectQuery query;
};

using Statement =
    std::variant<CreateChronicleStmt, CreateRelationStmt, CreateViewStmt,
                 InsertStmt, UpdateStmt, DeleteStmt, SelectStmt, ExplainStmt,
                 ShowStmt, DropStmt, CheckpointStmt, RestoreStmt>;

// Parses one statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& input);

// Splits a script on top-level ';' and parses each statement.
Result<std::vector<Statement>> ParseScript(const std::string& input);

}  // namespace cql
}  // namespace chronicle

#endif  // CHRONICLE_CQL_PARSER_H_
