// cql::Session: the ONE statement-execution layer.
//
// Before this layer existed, statement dispatch lived in the shell
// (tools/chronicle_shell.cc) and nowhere else: the shell owned the
// database, the WAL attachment, and the stats-enricher wiring, so no other
// front-end could execute CQL without re-implementing all three. Session
// extracts that state into a library type the shell, the wire service
// (src/net), and tests all drive — one code path, one error surface.
//
// A session owns either
//   * an unsharded ChronicleDatabase, or
//   * a shard::ShardedDatabase (DatabaseOptions::sharding.num_shards > 1),
// and dispatches every statement to the right engine. On a sharded session
// the DDL broadcasts (CreateView re-binds the same parsed query per shard
// engine via BindViewQuery), DML routes through the router, and SELECT
// reads the merged view layer — so `\shards N` in the shell and the wire
// service get sharded execution with no statement-level special cases.
//
// Error surface: every failure is a Status whose StatusCode is the single
// error enum. The shell renders it as "ERROR: Code: message"
// (Status::ToString), HTTP surfaces render ErrorJson() —
// {"error":{"code":"...","message":"..."}} — and map the code to an HTTP
// status (src/net/wire_service.h). No surface invents its own strings.
//
// Thread safety: the session is the serialization point for everything
// that mutates engine state. The database's append path is single-driver
// by contract, but a session is routinely driven from several threads at
// once — the shell REPL plus the wire service's HTTP threads and ingest
// worker after \listen — so ExecuteStatement/ExecuteSql/ExecuteScript,
// AppendRows, ReconfigureMaintenance, and the WAL attach/checkpoint/
// recover calls all take one internal mutex. A script executes atomically
// (no statement from another thread interleaves inside it). Read-only
// observability (CollectStats, the enricher chain, monitoring) stays
// lock-free here: the database's own obs_mutex_ makes snapshots a
// consistent cut against in-flight appends.

#ifndef CHRONICLE_CQL_SESSION_H_
#define CHRONICLE_CQL_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "cql/binder.h"
#include "cql/parser.h"
#include "db/database.h"
#include "obs/request_trace.h"
#include "obs/stats.h"
#include "shard/sharded_db.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace chronicle {
namespace cql {

// The one JSON error shape for every surface that reports failures as
// JSON: {"error":{"code":"ParseError","message":"..."}}. The code string
// is StatusCodeToString(status.code()) — the same enum Result<T> carries
// and the shell prints.
std::string ErrorJson(const Status& status);

class Session {
 public:
  // Opens an unsharded database, or a ShardedDatabase when
  // options.sharding.num_shards > 1 (per-shard WALs are recovered and
  // attached when sharding.wal_dir is set).
  static Result<std::unique_ptr<Session>> Open(DatabaseOptions options);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool sharded() const { return sharded_ != nullptr; }
  size_t num_shards() const {
    return sharded_ ? sharded_->num_shards() : size_t{1};
  }
  // Null when sharded.
  ChronicleDatabase* db() { return db_.get(); }
  // Null when unsharded.
  shard::ShardedDatabase* sharded_db() { return sharded_.get(); }
  // The engine meta/introspection commands act on: the unsharded database
  // or shard 0 (schemas, plans, and options are identical across shards).
  ChronicleDatabase& engine0() {
    return sharded_ ? sharded_->engine(0) : *db_;
  }
  const ChronicleDatabase& engine0() const {
    return sharded_ ? sharded_->engine(0) : *db_;
  }
  const DatabaseOptions& options() const {
    return sharded_ ? sharded_->options() : db_->options();
  }

  // --- statement execution (the shared code path) ---

  Result<ExecResult> ExecuteStatement(const Statement& statement);
  // Parses and executes one statement.
  Result<ExecResult> ExecuteSql(const std::string& sql);
  // Parses and executes a ';'-separated script, stopping at the first
  // error; returns the result of the last statement.
  Result<ExecResult> ExecuteScript(const std::string& sql);

  // --- bulk ingest (the wire service's /v1/append target) ---

  // One AppendMany: each batch is one tick. Returns total rows applied.
  Result<uint64_t> AppendRows(const std::string& chronicle,
                              std::vector<std::vector<Tuple>> batches);

  // Schema of a registered chronicle, resolved under the execution mutex
  // so a concurrent DDL statement cannot tear the lookup (the wire
  // service's prepared-binding path).
  Result<Schema> ChronicleSchema(const std::string& chronicle);

  // Flushes the sharded ingest lanes (no-op unsharded), serialized
  // against statement execution like every other mutation.
  Status Flush();

  // --- maintenance reconfiguration (shell \threads, \engine) ---

  // Broadcast to every engine so sharded and unsharded sessions stay
  // symmetric.
  void ReconfigureMaintenance(const MaintenanceOptions& options);
  const MaintenanceOptions& maintenance_options() const {
    return engine0().maintenance_options();
  }

  // --- durability (unsharded sessions; sharded sessions configure
  // per-shard WALs via ShardingOptions::wal_dir at Open) ---

  // Opens a WAL in `dir` and routes every future mutation through it.
  Status AttachWal(const std::string& dir);
  // Syncs and closes the WAL; no-op when none is attached.
  Status DetachWal();
  // Writes a checkpoint into the attached WAL's directory.
  Status WriteCheckpoint();
  // Rebuilds state from `dir` (apply the DDL first!), then resumes
  // logging there. The report's replay counters land in the WAL stats
  // section of every snapshot.
  Result<wal::RecoveryReport> Recover(const std::string& dir);
  wal::Wal* wal() { return wal_.get(); }

  // --- observability ---

  // Merged snapshot with every registered enricher applied (WAL section,
  // net section, ...).
  obs::StatsSnapshot CollectStats() const;
  // The database exposes ONE stats-enricher hook, but two owners need it
  // (the session's WAL mirror, the wire service's net section), so the
  // session multiplexes a chain. Returns a token for RemoveStatsEnricher.
  // On unsharded sessions the chain runs inside the database's own
  // CollectStats (HTTP endpoint, history sampler, and flight recorder all
  // see it); on sharded sessions it runs on Session::CollectStats.
  size_t AddStatsEnricher(std::function<void(obs::StatsSnapshot*)> enricher);
  void RemoveStatsEnricher(size_t token);

  // Read-only monitoring endpoint passthrough (shell \serve; unsharded
  // only — a sharded session serves merged stats via the wire service).
  Status StartMonitoring(uint16_t port);
  void StopMonitoring();
  uint16_t monitoring_port() const;

  // Request tracer, owned here because the session is the one object every
  // front-end (shell, wire service) shares. Null when
  // ObservabilityOptions::request_trace_capacity is 0. The tracer's req
  // section rides the enricher chain into every CollectStats snapshot, and
  // its slow-capture hook dumps through engine0()'s flight recorder.
  obs::RequestTracer* request_tracer() { return tracer_.get(); }

 private:
  Session() = default;

  // Callers hold exec_mu_.
  Result<ExecResult> ExecuteStatementLocked(const Statement& statement);
  Status AttachWalLocked(const std::string& dir);
  Status DetachWalLocked();

  Result<ExecResult> ExecuteSharded(const Statement& statement);
  Result<ExecResult> ShardedCreateView(const CreateViewStmt& stmt);
  Result<ExecResult> ShardedInsert(const InsertStmt& stmt);
  Result<ExecResult> ShardedSelect(const SelectStmt& stmt);

  // Installs the db-side enricher that runs the chain (unsharded only).
  void InstallEnricherHook();
  void RunEnrichers(obs::StatsSnapshot* snap) const;

  std::unique_ptr<ChronicleDatabase> db_;
  std::unique_ptr<shard::ShardedDatabase> sharded_;

  // Request tracing (null when disabled). Declared after the engines so it
  // is destroyed first — engines never dereference it without a live
  // RequestScope, and scopes cannot outlive the front-end request that
  // installed them.
  std::unique_ptr<obs::RequestTracer> tracer_;

  // Serializes every mutating entry point (see the thread-safety note at
  // the top). Never held while collecting stats or running enrichers.
  std::mutex exec_mu_;

  // Durability attachment (unsharded).
  std::unique_ptr<wal::Wal> wal_;
  std::unique_ptr<wal::WalMutationLog> log_;
  // Last Recover outcome, surfaced in the WAL stats section.
  bool recovered_ = false;
  uint64_t recovery_records_applied_ = 0;
  uint64_t recovery_records_skipped_ = 0;

  // Enricher chain. The mutex serializes registration against snapshot
  // collection (which may run on the monitoring thread).
  mutable std::mutex enricher_mu_;
  std::vector<std::pair<size_t, std::function<void(obs::StatsSnapshot*)>>>
      enrichers_;
  size_t next_enricher_token_ = 1;
};

}  // namespace cql
}  // namespace chronicle

#endif  // CHRONICLE_CQL_SESSION_H_
