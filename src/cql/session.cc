#include "cql/session.h"

#include <utility>

#include "obs/export.h"
#include "storage/chronicle.h"
#include "storage/chronicle_group.h"

namespace chronicle {
namespace cql {

namespace {

Result<Schema> SchemaFromColumns(const std::vector<ColumnDef>& columns) {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (const ColumnDef& def : columns) {
    fields.push_back(Field{def.name, def.type});
  }
  return Schema::Make(std::move(fields));
}

// Statements hold ScalarExprPtr (move-only); the sharded CreateView path
// needs the query to outlive the statement — the router re-binds it per
// shard and again for merged-read scratch rebuilds — so it deep-copies.
SelectQuery CloneSelectQuery(const SelectQuery& q) {
  SelectQuery out;
  out.select_star = q.select_star;
  out.from = q.from;
  out.join = q.join;
  out.group_by = q.group_by;
  if (q.where != nullptr) out.where = q.where->Clone();
  out.items.reserve(q.items.size());
  for (const SelectItem& item : q.items) {
    SelectItem copy;
    copy.is_aggregate = item.is_aggregate;
    copy.agg_kind = item.agg_kind;
    copy.tiers = item.tiers;
    if (item.expr != nullptr) copy.expr = item.expr->Clone();
    copy.column = item.column;
    copy.alias = item.alias;
    out.items.push_back(std::move(copy));
  }
  return out;
}

}  // namespace

std::string ErrorJson(const Status& status) {
  return std::string("{\"error\":{\"code\":\"") +
         StatusCodeToString(status.code()) + "\",\"message\":\"" +
         obs::JsonEscape(status.message()) + "\"}}";
}

Result<std::unique_ptr<Session>> Session::Open(DatabaseOptions options) {
  auto session = std::unique_ptr<Session>(new Session());
  const obs::ObservabilityOptions& obs_opts = options.observability;
  if (obs_opts.request_trace_capacity > 0) {
    session->tracer_ = std::make_unique<obs::RequestTracer>(
        obs_opts.request_trace_capacity, obs_opts.request_sample_rate,
        obs_opts.slow_request_budget_ns);
  }
  if (options.sharding.num_shards > 1) {
    CHRONICLE_ASSIGN_OR_RETURN(session->sharded_,
                               shard::ShardedDatabase::Open(std::move(options)));
    if (!session->sharded_->options().sharding.wal_dir.empty()) {
      // A fresh session has no DDL to recover into; directories with
      // history go through ShardedDatabase::RecoverFromWal directly.
      CHRONICLE_RETURN_NOT_OK(session->sharded_->AttachWals());
    }
  } else {
    session->db_ = ChronicleDatabase::Open(std::move(options));
    session->db_->set_request_tracer(session->tracer_.get());
    session->InstallEnricherHook();
  }
  if (session->tracer_ != nullptr &&
      session->tracer_->slow_budget_ns() > 0) {
    // Slow-request capture: snapshot + span tree through engine0's flight
    // recorder. Fired by the wire service OUTSIDE its own stats mutex, so
    // CollectStats (which runs the net enricher) cannot deadlock.
    Session* raw = session.get();
    session->tracer_->set_slow_capture(
        [raw](uint64_t trace_hi, uint64_t trace_lo, int64_t total_ns) {
          const obs::StatsSnapshot snap = raw->CollectStats();
          const std::string snapshot_json = obs::RenderJson(snap);
          const std::string tree_json =
              raw->tracer_->RenderTraceTreeJson(trace_hi, trace_lo);
          raw->engine0()
              .RecordSlowRequest(trace_hi, trace_lo, total_ns,
                                 raw->tracer_->slow_budget_ns(), snapshot_json,
                                 tree_json)
              .status()
              .ok();  // capture is best-effort; failures drop the dump
        });
  }
  return session;
}

Session::~Session() {
  // Monitoring threads call the enricher chain; join them while the
  // session is fully alive, then close the WAL.
  if (db_ != nullptr) db_->StopMonitoring();
  DetachWal().ok();
}

Result<Schema> Session::ChronicleSchema(const std::string& chronicle) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  ChronicleGroup& group = engine0().group();
  CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id, group.FindChronicle(chronicle));
  CHRONICLE_ASSIGN_OR_RETURN(Chronicle * chron, group.GetChronicle(id));
  return chron->schema();
}

Status Session::Flush() {
  std::lock_guard<std::mutex> lock(exec_mu_);
  if (sharded_ != nullptr) return sharded_->Flush();
  return Status::OK();
}

void Session::InstallEnricherHook() {
  db_->set_stats_enricher(
      [this](obs::StatsSnapshot* snap) { RunEnrichers(snap); });
}

void Session::RunEnrichers(obs::StatsSnapshot* snap) const {
  // The session's own WAL mirror runs first so registered enrichers can
  // see a complete snapshot.
  if (wal_ != nullptr) {
    const wal::WalStats& w = wal_->stats();
    snap->wal.attached = true;
    snap->wal.records_logged = w.records_logged;
    snap->wal.bytes_logged = w.bytes_logged;
    snap->wal.syncs = w.syncs;
    snap->wal.segments_created = w.segments_created;
    snap->wal.segments_removed = w.segments_removed;
    snap->wal.checkpoints_written = w.checkpoints_written;
    snap->wal.group_commits = w.group_commits;
    snap->wal.group_commit_ticks = w.group_commit_ticks;
    snap->wal.fsync_latency = w.fsync_latency;
  }
  snap->wal.recovered = recovered_;
  snap->wal.recovery_records_applied = recovery_records_applied_;
  snap->wal.recovery_records_skipped = recovery_records_skipped_;
  // The req section lives here (not in a registered enricher) so a WAL
  // detach/attach cycle — which tears down registered enrichers' hook on
  // the unsharded engine — cannot drop it.
  if (tracer_ != nullptr) tracer_->Fill(&snap->req);

  std::lock_guard<std::mutex> lock(enricher_mu_);
  for (const auto& [token, fn] : enrichers_) fn(snap);
}

obs::StatsSnapshot Session::CollectStats() const {
  if (sharded_ != nullptr) {
    obs::StatsSnapshot snap = sharded_->CollectStats();
    RunEnrichers(&snap);
    return snap;
  }
  return db_->CollectStats();  // runs the chain via the installed hook
}

size_t Session::AddStatsEnricher(
    std::function<void(obs::StatsSnapshot*)> enricher) {
  std::lock_guard<std::mutex> lock(enricher_mu_);
  const size_t token = next_enricher_token_++;
  enrichers_.emplace_back(token, std::move(enricher));
  return token;
}

void Session::RemoveStatsEnricher(size_t token) {
  std::lock_guard<std::mutex> lock(enricher_mu_);
  for (auto it = enrichers_.begin(); it != enrichers_.end(); ++it) {
    if (it->first == token) {
      enrichers_.erase(it);
      return;
    }
  }
}

Status Session::StartMonitoring(uint16_t port) {
  if (sharded_ != nullptr) {
    return Status::FailedPrecondition(
        "per-engine monitoring is not merged across shards; serve the "
        "sharded session through the wire service instead");
  }
  return db_->StartMonitoring(port);
}

void Session::StopMonitoring() {
  if (db_ != nullptr) db_->StopMonitoring();
}

uint16_t Session::monitoring_port() const {
  return db_ != nullptr ? db_->monitoring_port() : 0;
}

void Session::ReconfigureMaintenance(const MaintenanceOptions& options) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  if (sharded_ != nullptr) {
    for (size_t k = 0; k < sharded_->num_shards(); ++k) {
      sharded_->engine(k).ReconfigureMaintenance(options);
    }
  } else {
    db_->ReconfigureMaintenance(options);
  }
}

// --- durability ---

Status Session::AttachWal(const std::string& dir) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  return AttachWalLocked(dir);
}

Status Session::AttachWalLocked(const std::string& dir) {
  if (sharded_ != nullptr) {
    return Status::FailedPrecondition(
        "a sharded session keeps one WAL per shard; set "
        "ShardingOptions::wal_dir at open instead of attaching one log");
  }
  CHRONICLE_RETURN_NOT_OK(DetachWalLocked());
  CHRONICLE_ASSIGN_OR_RETURN(wal_, wal::Wal::Open(dir));
  log_ = std::make_unique<wal::WalMutationLog>(wal_.get(), db_.get());
  db_->AttachMutationLog(log_.get());
  return Status::OK();
}

Status Session::DetachWal() {
  std::lock_guard<std::mutex> lock(exec_mu_);
  return DetachWalLocked();
}

Status Session::DetachWalLocked() {
  if (db_ == nullptr || wal_ == nullptr) return Status::OK();
  db_->DetachMutationLog();
  // Re-installing the enricher hook waits out any in-flight snapshot, so
  // no other thread can still be reading the Wal we are about to close.
  db_->set_stats_enricher(nullptr);
  const Status closed = wal_->Close();
  log_.reset();
  wal_.reset();
  InstallEnricherHook();
  return closed;
}

Status Session::WriteCheckpoint() {
  std::lock_guard<std::mutex> lock(exec_mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "no wal attached (use AttachWal / \\wal <dir> first)");
  }
  return wal_->WriteCheckpoint(*db_);
}

Result<wal::RecoveryReport> Session::Recover(const std::string& dir) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  if (sharded_ != nullptr) {
    return Status::FailedPrecondition(
        "sharded recovery goes through per-shard WALs "
        "(ShardedDatabase::RecoverFromWal)");
  }
  // Recovery needs a detached log; re-attach to the same dir on success so
  // the session keeps logging where it left off.
  CHRONICLE_RETURN_NOT_OK(DetachWalLocked());
  CHRONICLE_ASSIGN_OR_RETURN(wal::RecoveryReport report,
                             wal::Recover(dir, db_.get()));
  recovered_ = true;
  recovery_records_applied_ = report.replay.records_applied;
  recovery_records_skipped_ = report.replay.records_skipped;
  CHRONICLE_RETURN_NOT_OK(AttachWalLocked(dir));
  return report;
}

// --- statement execution ---

Result<ExecResult> Session::ExecuteSql(const std::string& sql) {
  CHRONICLE_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<ExecResult> Session::ExecuteScript(const std::string& sql) {
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  // One lock for the whole script: statements from other threads never
  // interleave inside it.
  std::lock_guard<std::mutex> lock(exec_mu_);
  ExecResult last;
  for (const Statement& stmt : stmts) {
    CHRONICLE_ASSIGN_OR_RETURN(last, ExecuteStatementLocked(stmt));
  }
  return last;
}

Result<ExecResult> Session::ExecuteStatement(const Statement& statement) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  return ExecuteStatementLocked(statement);
}

Result<ExecResult> Session::ExecuteStatementLocked(const Statement& statement) {
  if (sharded_ != nullptr) return ExecuteSharded(statement);
  return Execute(db_.get(), statement);
}

Result<uint64_t> Session::AppendRows(const std::string& chronicle,
                                     std::vector<std::vector<Tuple>> batches) {
  std::lock_guard<std::mutex> lock(exec_mu_);
  uint64_t rows = 0;
  for (const std::vector<Tuple>& batch : batches) rows += batch.size();
  if (sharded_ != nullptr) {
    CHRONICLE_RETURN_NOT_OK(
        sharded_->AppendMany(chronicle, std::move(batches)).status());
  } else {
    CHRONICLE_RETURN_NOT_OK(
        db_->AppendMany(chronicle, std::move(batches)).status());
  }
  return rows;
}

// --- sharded dispatch ---

Result<ExecResult> Session::ExecuteSharded(const Statement& statement) {
  ExecResult result;
  if (const auto* s = std::get_if<CreateChronicleStmt>(&statement)) {
    CHRONICLE_ASSIGN_OR_RETURN(Schema schema, SchemaFromColumns(s->columns));
    CHRONICLE_RETURN_NOT_OK(
        sharded_->CreateChronicle(s->name, std::move(schema), s->retention)
            .status());
    result.message = "chronicle " + s->name + " created";
    return result;
  }
  if (const auto* s = std::get_if<CreateRelationStmt>(&statement)) {
    CHRONICLE_ASSIGN_OR_RETURN(Schema schema, SchemaFromColumns(s->columns));
    CHRONICLE_RETURN_NOT_OK(
        sharded_->CreateRelation(s->name, std::move(schema), s->key_column)
            .status());
    result.message = "relation " + s->name + " created";
    return result;
  }
  if (const auto* s = std::get_if<CreateViewStmt>(&statement)) {
    return ShardedCreateView(*s);
  }
  if (const auto* s = std::get_if<InsertStmt>(&statement)) {
    return ShardedInsert(*s);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&statement)) {
    // Compute the post-image against the replicated copy on shard 0, then
    // broadcast the keyed update so every shard's plans see the same row.
    ChronicleDatabase& engine = engine0();
    CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, engine.GetRelation(s->relation));
    if (!rel->has_key() ||
        rel->schema().field(rel->key_index()).name != s->where_column) {
      return Status::PlanError("UPDATE requires WHERE on the key column of '" +
                               s->relation + "'");
    }
    CHRONICLE_ASSIGN_OR_RETURN(const Tuple* current,
                               rel->LookupByKey(s->where_value));
    Tuple next = *current;
    for (const auto& [column, value] : s->sets) {
      CHRONICLE_ASSIGN_OR_RETURN(size_t idx, rel->schema().IndexOf(column));
      next[idx] = value;
    }
    CHRONICLE_RETURN_NOT_OK(
        sharded_->UpdateRelation(s->relation, s->where_value, std::move(next)));
    result.message = "1 row updated in " + s->relation +
                     " (proactive: affects future sequence numbers only)";
    return result;
  }
  if (const auto* s = std::get_if<DeleteStmt>(&statement)) {
    ChronicleDatabase& engine = engine0();
    CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, engine.GetRelation(s->relation));
    if (!rel->has_key() ||
        rel->schema().field(rel->key_index()).name != s->where_column) {
      return Status::PlanError("DELETE requires WHERE on the key column of '" +
                               s->relation + "'");
    }
    CHRONICLE_RETURN_NOT_OK(sharded_->DeleteFrom(s->relation, s->where_value));
    result.message = "1 row deleted from " + s->relation;
    return result;
  }
  if (const auto* s = std::get_if<SelectStmt>(&statement)) {
    return ShardedSelect(*s);
  }
  if (std::get_if<ExplainStmt>(&statement) != nullptr ||
      std::get_if<ShowStmt>(&statement) != nullptr) {
    // Plans and registered objects are identical on every shard; counters
    // in SHOW output are shard 0's (merged counters live in \stats /
    // /stats.json).
    return Execute(&engine0(), statement);
  }
  if (const auto* s = std::get_if<DropStmt>(&statement)) {
    if (s->what == DropStmt::What::kView) {
      return Status::NotImplemented(
          "DROP VIEW on a sharded session (the router's merged-read "
          "registry has no removal path yet)");
    }
    for (size_t k = 0; k < sharded_->num_shards(); ++k) {
      CHRONICLE_RETURN_NOT_OK(sharded_->engine(k).DropRelation(s->name));
    }
    result.message = "relation " + s->name + " dropped";
    return result;
  }
  if (std::get_if<CheckpointStmt>(&statement) != nullptr ||
      std::get_if<RestoreStmt>(&statement) != nullptr) {
    return Status::NotImplemented(
        "CHECKPOINT/RESTORE on a sharded session; per-shard durability "
        "goes through ShardingOptions::wal_dir");
  }
  return Status::Internal("unreachable statement type");
}

Result<ExecResult> Session::ShardedCreateView(const CreateViewStmt& stmt) {
  // Bind once against shard 0 for validation, the summarization spec, and
  // the complexity label; the factories re-bind per engine because plans
  // hold engine-local scan nodes and relation pointers.
  CHRONICLE_ASSIGN_OR_RETURN(BoundView bound,
                             BindViewQuery(&engine0(), stmt.query));
  ExecResult result;
  if (stmt.target.kind == ViewTarget::Kind::kPersistent) {
    auto query = std::make_shared<SelectQuery>(CloneSelectQuery(stmt.query));
    shard::ShardedDatabase::PlanFactory plan_factory =
        [query](ChronicleDatabase& engine) -> Result<CaExprPtr> {
      CHRONICLE_ASSIGN_OR_RETURN(BoundView per_engine,
                                 BindViewQuery(&engine, *query));
      return std::move(per_engine.plan);
    };
    shard::ShardedDatabase::ComputedFactory computed_factory = nullptr;
    if (!bound.computed.empty()) {
      computed_factory =
          [query](ChronicleDatabase& engine) -> std::vector<ComputedColumn> {
        Result<BoundView> per_engine = BindViewQuery(&engine, *query);
        if (!per_engine.ok()) return {};
        return std::move(per_engine->computed);
      };
    }
    CHRONICLE_RETURN_NOT_OK(sharded_
                                ->CreateView(stmt.name, plan_factory,
                                             std::move(*bound.spec),
                                             computed_factory)
                                .status());
    result.message = "view " + stmt.name + " created (" +
                     bound.classification + ", " +
                     std::to_string(sharded_->num_shards()) + " shards)";
    return result;
  }

  // Periodic and sliding views maintain shard-local instances: relations
  // are replicated and chronicle rows are partitioned, so each engine's
  // view covers exactly its slice. Merged reads of these views are not
  // supported (SELECT routes through the persistent merge layer only).
  if (!bound.computed.empty()) {
    return Status::PlanError(
        "computed select items are not supported on periodic views");
  }
  for (size_t k = 0; k < sharded_->num_shards(); ++k) {
    ChronicleDatabase& engine = sharded_->engine(k);
    CHRONICLE_ASSIGN_OR_RETURN(BoundView per_engine,
                               BindViewQuery(&engine, stmt.query));
    if (stmt.target.kind == ViewTarget::Kind::kPeriodic) {
      CHRONICLE_ASSIGN_OR_RETURN(
          std::shared_ptr<PeriodicCalendar> calendar,
          PeriodicCalendar::Make(stmt.target.origin, stmt.target.period));
      PeriodicViewOptions options;
      options.expire_after = stmt.target.expire_after;
      CHRONICLE_RETURN_NOT_OK(
          engine.CreatePeriodicView(stmt.name, per_engine.plan,
                                    std::move(*per_engine.spec), calendar,
                                    options));
    } else {
      CHRONICLE_RETURN_NOT_OK(engine.CreateSlidingView(
          stmt.name, per_engine.plan, std::move(*per_engine.spec),
          stmt.target.origin, stmt.target.pane_width, stmt.target.num_panes));
    }
  }
  result.message =
      std::string(stmt.target.kind == ViewTarget::Kind::kPeriodic ? "periodic"
                                                                  : "sliding") +
      " view " + stmt.name + " created (" + bound.classification +
      ", shard-local on " + std::to_string(sharded_->num_shards()) + " shards)";
  return result;
}

Result<ExecResult> Session::ShardedInsert(const InsertStmt& stmt) {
  ExecResult result;
  if (engine0().group().FindChronicle(stmt.target).ok()) {
    Result<shard::ShardAppendResult> appended =
        stmt.at.has_value() ? sharded_->Append(stmt.target, stmt.rows, *stmt.at)
                            : sharded_->Append(stmt.target, stmt.rows);
    CHRONICLE_RETURN_NOT_OK(appended.status());
    result.message = std::to_string(stmt.rows.size()) +
                     " row(s) appended to " + stmt.target + " at chronon=" +
                     std::to_string(appended->chronon) + " (" +
                     std::to_string(appended->shards_touched) + " shard(s))";
    return result;
  }
  if (stmt.at.has_value()) {
    return Status::PlanError("AT <chronon> applies only to chronicles");
  }
  for (const Tuple& row : stmt.rows) {
    CHRONICLE_RETURN_NOT_OK(sharded_->InsertInto(stmt.target, row));
  }
  result.message = std::to_string(stmt.rows.size()) +
                   " row(s) inserted into " + stmt.target;
  return result;
}

Result<ExecResult> Session::ShardedSelect(const SelectStmt& stmt) {
  const SelectQuery& query = stmt.query;
  if (query.join.kind != JoinClause::Kind::kNone || !query.group_by.empty()) {
    return Status::PlanError(
        "interactive SELECT supports only persistent views and relations "
        "(define a VIEW for joins/aggregation — that is the point of the "
        "chronicle model)");
  }
  for (const SelectItem& item : query.items) {
    if (item.is_aggregate) {
      return Status::PlanError(
          "aggregates in interactive SELECT are not supported; define a "
          "persistent view instead");
    }
  }
  ChronicleDatabase& engine = engine0();
  if (engine.view_manager().FindView(query.from).ok()) {
    CHRONICLE_ASSIGN_OR_RETURN(const PersistentView* view,
                               engine.GetView(query.from));
    CHRONICLE_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                               sharded_->ScanView(query.from));
    return ProjectSelect(query, view->output_schema(), std::move(rows),
                         /*where_applied=*/false);
  }
  if (engine.group().FindChronicle(query.from).ok()) {
    return Status::FailedPrecondition(
        "detail queries over chronicles are not merged across shards; "
        "SELECT from a view or relation on a sharded session");
  }
  CHRONICLE_ASSIGN_OR_RETURN(const Relation* rel,
                             engine.GetRelation(query.from));
  return ProjectSelect(query, rel->schema(), rel->rows(),
                       /*where_applied=*/false);
}

}  // namespace cql
}  // namespace chronicle
