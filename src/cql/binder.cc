#include "cql/binder.h"

#include <optional>
#include <unordered_set>

#include "algebra/complexity.h"
#include "algebra/validate.h"
#include "checkpoint/checkpoint.h"

namespace chronicle {
namespace cql {

namespace {

Result<Schema> SchemaFromColumns(const std::vector<ColumnDef>& columns) {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (const ColumnDef& def : columns) {
    fields.push_back(Field{def.name, def.type});
  }
  return Schema::Make(std::move(fields));
}

// Collects the payload column names referenced by an expression.
void CollectColumnNames(const ScalarExpr& expr,
                        std::unordered_set<std::string>* out) {
  if (expr.kind() == ExprKind::kColumn) out->insert(expr.column_name());
  for (size_t i = 0; i < expr.num_children(); ++i) {
    CollectColumnNames(expr.child(i), out);
  }
}

Result<AggSpec> MakeAggSpec(const SelectItem& item) {
  const std::string alias = item.alias;
  switch (item.agg_kind) {
    case AggKind::kCount:
      return alias.empty() ? AggSpec::Count() : AggSpec::Count(alias);
    case AggKind::kSum:
      return AggSpec::Sum(item.column, alias);
    case AggKind::kMin:
      return AggSpec::Min(item.column, alias);
    case AggKind::kMax:
      return AggSpec::Max(item.column, alias);
    case AggKind::kAvg:
      return AggSpec::Avg(item.column, alias);
    case AggKind::kFirst:
      return AggSpec::First(item.column, alias);
    case AggKind::kLast:
      return AggSpec::Last(item.column, alias);
    case AggKind::kTieredDiscount: {
      CHRONICLE_ASSIGN_OR_RETURN(TieredSchedule schedule,
                                 TieredSchedule::Make(item.tiers));
      return AggSpec::TieredDiscount(item.column, std::move(schedule), alias);
    }
    case AggKind::kCustom:
      return Status::PlanError("custom aggregates are not expressible in CQL");
  }
  return Status::Internal("unreachable aggregate kind");
}

Result<ExecResult> ExecCreateChronicle(ChronicleDatabase* db,
                                       const CreateChronicleStmt& stmt) {
  CHRONICLE_ASSIGN_OR_RETURN(Schema schema, SchemaFromColumns(stmt.columns));
  CHRONICLE_RETURN_NOT_OK(
      db->CreateChronicle(stmt.name, std::move(schema), stmt.retention).status());
  ExecResult result;
  result.message = "chronicle " + stmt.name + " created";
  return result;
}

Result<ExecResult> ExecCreateRelation(ChronicleDatabase* db,
                                      const CreateRelationStmt& stmt) {
  CHRONICLE_ASSIGN_OR_RETURN(Schema schema, SchemaFromColumns(stmt.columns));
  CHRONICLE_RETURN_NOT_OK(
      db->CreateRelation(stmt.name, std::move(schema), stmt.key_column).status());
  ExecResult result;
  result.message = "relation " + stmt.name + " created";
  return result;
}

Result<ExecResult> ExecCreateView(ChronicleDatabase* db,
                                  const CreateViewStmt& stmt) {
  CHRONICLE_ASSIGN_OR_RETURN(BoundView bound, BindViewQuery(db, stmt.query));
  CaExprPtr plan = std::move(bound.plan);
  std::optional<SummarySpec> spec = std::move(bound.spec);
  std::vector<ComputedColumn> computed = std::move(bound.computed);
  const std::string classification = std::move(bound.classification);

  ExecResult result;
  switch (stmt.target.kind) {
    case ViewTarget::Kind::kPersistent:
      CHRONICLE_RETURN_NOT_OK(
          db->CreateView(stmt.name, plan, std::move(*spec), std::move(computed))
              .status());
      result.message = "view " + stmt.name + " created (" + classification + ")";
      break;
    case ViewTarget::Kind::kPeriodic:
      if (!computed.empty()) {
        return Status::PlanError(
            "computed select items are not supported on periodic views");
      }
      {
      CHRONICLE_ASSIGN_OR_RETURN(
          std::shared_ptr<PeriodicCalendar> calendar,
          PeriodicCalendar::Make(stmt.target.origin, stmt.target.period));
      PeriodicViewOptions options;
      options.expire_after = stmt.target.expire_after;
      CHRONICLE_RETURN_NOT_OK(db->CreatePeriodicView(
          stmt.name, plan, std::move(*spec), calendar, options));
      result.message = "periodic view " + stmt.name + " created over " +
                       calendar->ToString() + " (" + classification + ")";
      break;
    }
    case ViewTarget::Kind::kSliding:
      if (!computed.empty()) {
        return Status::PlanError(
            "computed select items are not supported on sliding views");
      }
      CHRONICLE_RETURN_NOT_OK(db->CreateSlidingView(
          stmt.name, plan, std::move(*spec), stmt.target.origin,
          stmt.target.pane_width, stmt.target.num_panes));
      result.message = "sliding view " + stmt.name + " created (" +
                       std::to_string(stmt.target.num_panes) + " panes of " +
                       std::to_string(stmt.target.pane_width) + ", " +
                       classification + ")";
      break;
  }
  return result;
}

// Appends a Definition 4.1 conformance note: the engine accepts richer
// selection predicates than the paper's strict grammar; flag divergence.
void AppendStrictnessNote(const CaExpr& plan, std::string* message) {
  Status strict = ValidateStrictPredicates(plan);
  if (!strict.ok()) {
    *message += "\nnote: " + strict.message() +
                " — accepted by this engine (still O(1) per tuple)";
  }
}

Result<ExecResult> ExecExplain(ChronicleDatabase* db, const ExplainStmt& stmt) {
  ExecResult result;
  Result<PersistentView*> persistent = db->view_manager().FindView(stmt.view);
  if (persistent.ok()) {
    const PersistentView* view = *persistent;
    result.message = "view " + view->name() + "\n" + view->plan()->ToString() +
                     "summarize: " + view->spec().ToString() + "\n" +
                     "complexity: " + view->complexity().ToString() + "\n" +
                     "groups: " + std::to_string(view->size()) +
                     ", ticks applied: " +
                     std::to_string(view->ticks_applied()) +
                     ", delta rows applied: " +
                     std::to_string(view->delta_rows_applied());
    Result<const LatencyHistogram*> latency =
        db->view_manager().GetViewLatency(stmt.view);
    if (latency.ok() && (*latency)->count() > 0) {
      result.message += "\nmaintenance latency: " + (*latency)->ToString();
    }
    AppendStrictnessNote(*view->plan(), &result.message);
    return result;
  }
  Result<const PeriodicViewSet*> periodic = db->GetPeriodicView(stmt.view);
  if (periodic.ok()) {
    const PeriodicViewSet* set = *periodic;
    result.message =
        "periodic view " + set->name() + " over " + set->calendar().ToString() +
        "\n" + set->plan()->ToString() +
        "complexity: " + AnalyzeComplexity(*set->plan()).ToString() + "\n" +
        "active instances: " + std::to_string(set->num_active_instances()) +
        " (created " + std::to_string(set->instances_created()) + ", expired " +
        std::to_string(set->instances_expired()) + ")";
    AppendStrictnessNote(*set->plan(), &result.message);
    return result;
  }
  Result<const SlidingWindowView*> sliding = db->GetSlidingView(stmt.view);
  if (sliding.ok()) {
    const SlidingWindowView* view = *sliding;
    result.message =
        "sliding view " + view->name() + ": " +
        std::to_string(view->num_panes()) + " panes of " +
        std::to_string(view->pane_width()) + " (window " +
        std::to_string(view->window()) + ")\n" + view->plan()->ToString() +
        "complexity: " + AnalyzeComplexity(*view->plan()).ToString() + "\n" +
        "current pane: " + std::to_string(view->current_pane());
    AppendStrictnessNote(*view->plan(), &result.message);
    return result;
  }
  return Status::NotFound("no view named '" + stmt.view + "'");
}

Result<ExecResult> ExecShow(ChronicleDatabase* db, const ShowStmt& stmt) {
  ExecResult result;
  switch (stmt.what) {
    case ShowStmt::What::kChronicles: {
      CHRONICLE_ASSIGN_OR_RETURN(
          result.schema,
          Schema::Make({{"name", DataType::kString},
                        {"schema", DataType::kString},
                        {"total_appended", DataType::kInt64},
                        {"retained", DataType::kInt64}}));
      const ChronicleGroup& group = db->group();
      for (ChronicleId id = 0; id < group.num_chronicles(); ++id) {
        const Chronicle* chron = group.GetChronicle(id).value();
        result.rows.push_back(
            Tuple{Value(chron->name()), Value(chron->schema().ToString()),
                  Value(static_cast<int64_t>(chron->total_appended())),
                  Value(static_cast<int64_t>(chron->retained().size()))});
      }
      break;
    }
    case ShowStmt::What::kRelations: {
      CHRONICLE_ASSIGN_OR_RETURN(
          result.schema, Schema::Make({{"name", DataType::kString},
                                       {"schema", DataType::kString},
                                       {"rows", DataType::kInt64}}));
      db->ForEachRelation([&](const Relation& rel) {
        result.rows.push_back(Tuple{Value(rel.name()),
                                    Value(rel.schema().ToString()),
                                    Value(static_cast<int64_t>(rel.size()))});
      });
      break;
    }
    case ShowStmt::What::kViews: {
      CHRONICLE_ASSIGN_OR_RETURN(
          result.schema, Schema::Make({{"name", DataType::kString},
                                       {"kind", DataType::kString},
                                       {"class", DataType::kString},
                                       {"groups", DataType::kInt64}}));
      ViewManager& views = db->view_manager();
      for (ViewId id = 0; id < views.num_views(); ++id) {
        Result<PersistentView*> live = views.GetView(id);
        if (!live.ok()) continue;  // dropped view
        const PersistentView* view = *live;
        result.rows.push_back(
            Tuple{Value(view->name()), Value("persistent"),
                  Value(ImClassToString(view->complexity().im_class)),
                  Value(static_cast<int64_t>(view->size()))});
      }
      db->ForEachPeriodicView([&](const PeriodicViewSet& set) {
        result.rows.push_back(
            Tuple{Value(set.name()), Value("periodic"), Value("per-interval"),
                  Value(static_cast<int64_t>(set.num_active_instances()))});
      });
      db->ForEachSlidingView([&](const SlidingWindowView& view) {
        result.rows.push_back(
            Tuple{Value(view.name()), Value("sliding"), Value("pane-ring"),
                  Value(view.num_panes())});
      });
      break;
    }
  }
  result.message = std::to_string(result.rows.size()) + " row(s)";
  return result;
}

Result<ExecResult> ExecDrop(ChronicleDatabase* db, const DropStmt& stmt) {
  ExecResult result;
  if (stmt.what == DropStmt::What::kView) {
    CHRONICLE_RETURN_NOT_OK(db->DropView(stmt.name));
    result.message = "view " + stmt.name + " dropped";
  } else {
    CHRONICLE_RETURN_NOT_OK(db->DropRelation(stmt.name));
    result.message = "relation " + stmt.name + " dropped";
  }
  return result;
}

Result<ExecResult> ExecCheckpoint(ChronicleDatabase* db,
                                  const CheckpointStmt& stmt) {
  CHRONICLE_RETURN_NOT_OK(checkpoint::SaveDatabaseToFile(*db, stmt.path));
  ExecResult result;
  result.message = "checkpoint written to " + stmt.path;
  return result;
}

Result<ExecResult> ExecRestore(ChronicleDatabase* db, const RestoreStmt& stmt) {
  CHRONICLE_RETURN_NOT_OK(checkpoint::RestoreDatabaseFromFile(stmt.path, db));
  ExecResult result;
  result.message = "database restored from " + stmt.path;
  return result;
}

Result<ExecResult> ExecInsert(ChronicleDatabase* db, const InsertStmt& stmt) {
  ExecResult result;
  if (db->group().FindChronicle(stmt.target).ok()) {
    Result<AppendResult> appended =
        stmt.at.has_value()
            ? db->Append(stmt.target, stmt.rows, *stmt.at)
            : db->Append(stmt.target, stmt.rows);
    CHRONICLE_RETURN_NOT_OK(appended.status());
    result.message = std::to_string(stmt.rows.size()) + " row(s) appended to " +
                     stmt.target + " at sn=" +
                     std::to_string(appended->event.sn) + " (" +
                     std::to_string(appended->maintenance.views_updated) +
                     " view(s) maintained)";
    return result;
  }
  if (stmt.at.has_value()) {
    return Status::PlanError("AT <chronon> applies only to chronicles");
  }
  for (const Tuple& row : stmt.rows) {
    CHRONICLE_RETURN_NOT_OK(db->InsertInto(stmt.target, row));
  }
  result.message = std::to_string(stmt.rows.size()) + " row(s) inserted into " +
                   stmt.target;
  return result;
}

Result<ExecResult> ExecUpdate(ChronicleDatabase* db, const UpdateStmt& stmt) {
  CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, db->GetRelation(stmt.relation));
  if (!rel->has_key() ||
      rel->schema().field(rel->key_index()).name != stmt.where_column) {
    return Status::PlanError("UPDATE requires WHERE on the key column of '" +
                             stmt.relation + "'");
  }
  CHRONICLE_ASSIGN_OR_RETURN(const Tuple* current,
                             rel->LookupByKey(stmt.where_value));
  Tuple next = *current;
  for (const auto& [column, value] : stmt.sets) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, rel->schema().IndexOf(column));
    next[idx] = value;
  }
  CHRONICLE_RETURN_NOT_OK(rel->UpdateByKey(stmt.where_value, std::move(next)));
  ExecResult result;
  result.message = "1 row updated in " + stmt.relation +
                   " (proactive: affects future sequence numbers only)";
  return result;
}

Result<ExecResult> ExecDelete(ChronicleDatabase* db, const DeleteStmt& stmt) {
  CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, db->GetRelation(stmt.relation));
  if (!rel->has_key() ||
      rel->schema().field(rel->key_index()).name != stmt.where_column) {
    return Status::PlanError("DELETE requires WHERE on the key column of '" +
                             stmt.relation + "'");
  }
  CHRONICLE_RETURN_NOT_OK(db->DeleteFrom(stmt.relation, stmt.where_value));
  ExecResult result;
  result.message = "1 row deleted from " + stmt.relation;
  return result;
}

Result<ExecResult> ExecSelect(ChronicleDatabase* db, const SelectStmt& stmt) {
  const SelectQuery& query = stmt.query;
  if (query.join.kind != JoinClause::Kind::kNone || !query.group_by.empty()) {
    return Status::PlanError(
        "interactive SELECT supports only persistent views and relations "
        "(define a VIEW for joins/aggregation — that is the point of the "
        "chronicle model)");
  }
  for (const SelectItem& item : query.items) {
    if (item.is_aggregate) {
      return Status::PlanError(
          "aggregates in interactive SELECT are not supported; define a "
          "persistent view instead");
    }
  }

  // Source: a persistent view, a relation, or a chronicle (in which case
  // this is a §2.2 detail query over the retained window).
  Schema source_schema;
  std::vector<Tuple> rows;
  bool where_applied = false;
  ViewManager& views = db->view_manager();
  Result<PersistentView*> view = views.FindView(query.from);
  if (view.ok()) {
    source_schema = (*view)->output_schema();
    CHRONICLE_ASSIGN_OR_RETURN(rows, db->ScanView(query.from));
  } else if (db->group().FindChronicle(query.from).ok()) {
    CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr plan, db->ScanChronicle(query.from));
    if (query.where != nullptr) {
      // Pushing the WHERE into the plan lets it see $sn / $chronon.
      CHRONICLE_ASSIGN_OR_RETURN(plan,
                                 CaExpr::Select(plan, query.where->Clone()));
      where_applied = true;
    }
    source_schema = plan->schema();
    CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> window,
                               db->QueryRecentWindow(*plan));
    rows.reserve(window.size());
    for (ChronicleRow& row : window) rows.push_back(std::move(row.values));
  } else {
    CHRONICLE_ASSIGN_OR_RETURN(const Relation* rel, db->GetRelation(query.from));
    source_schema = rel->schema();
    rows = rel->rows();
  }

  return ProjectSelect(query, source_schema, std::move(rows), where_applied);
}

}  // namespace

Result<BoundView> BindViewQuery(ChronicleDatabase* db,
                                const SelectQuery& query) {
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr plan, db->ScanChronicle(query.from));
  const Schema chronicle_schema = plan->schema();

  // Push the WHERE below the join when it only touches chronicle columns —
  // this is what lets the ViewManager use it as a routing guard (§5.2).
  ScalarExprPtr where_above_join;
  if (query.where != nullptr) {
    std::unordered_set<std::string> referenced;
    CollectColumnNames(*query.where, &referenced);
    bool chronicle_only = true;
    for (const std::string& name : referenced) {
      if (!chronicle_schema.Contains(name)) {
        chronicle_only = false;
        break;
      }
    }
    if (chronicle_only) {
      CHRONICLE_ASSIGN_OR_RETURN(plan,
                                 CaExpr::Select(plan, query.where->Clone()));
    } else {
      where_above_join = query.where->Clone();
    }
  }

  if (query.join.kind == JoinClause::Kind::kKey) {
    CHRONICLE_ASSIGN_OR_RETURN(Relation * rel,
                               db->GetRelation(query.join.relation));
    if (!rel->has_key() ||
        rel->schema().field(rel->key_index()).name != query.join.right_column) {
      return Status::PlanError(
          "JOIN must be on the key of relation '" + query.join.relation +
          "': the chronicle model admits only joins with at most one "
          "matching relation tuple per chronicle tuple (Definition 4.2, "
          "CA_join); '" + query.join.right_column + "' is not its key");
    }
    CHRONICLE_ASSIGN_OR_RETURN(
        plan, CaExpr::RelKeyJoin(plan, rel, query.join.left_column));
  } else if (query.join.kind == JoinClause::Kind::kCross) {
    CHRONICLE_ASSIGN_OR_RETURN(Relation * rel,
                               db->GetRelation(query.join.relation));
    CHRONICLE_ASSIGN_OR_RETURN(plan, CaExpr::RelCross(plan, rel));
  }

  if (where_above_join != nullptr) {
    CHRONICLE_ASSIGN_OR_RETURN(plan,
                               CaExpr::Select(plan, std::move(where_above_join)));
  }

  // Summarization.
  bool has_aggregate = false;
  for (const SelectItem& item : query.items) {
    if (item.is_aggregate) has_aggregate = true;
  }
  if (query.select_star) {
    return Status::PlanError(
        "CREATE VIEW requires an explicit select list (views summarize away "
        "the sequencing attribute; '*' would keep it)");
  }

  // Computed items become finalizer columns over the summarized output row
  // (e.g. premier status from a miles total); they never affect
  // maintenance.
  BoundView bound;
  if (has_aggregate) {
    std::vector<std::string> keys = query.group_by;
    std::vector<AggSpec> aggs;
    for (const SelectItem& item : query.items) {
      if (item.is_aggregate) {
        CHRONICLE_ASSIGN_OR_RETURN(AggSpec agg, MakeAggSpec(item));
        aggs.push_back(std::move(agg));
      } else if (item.expr != nullptr) {
        bound.computed.push_back(ComputedColumn{item.alias, item.expr->Clone()});
      } else {
        bool in_group = false;
        for (const std::string& g : query.group_by) {
          if (g == item.column) in_group = true;
        }
        if (!in_group) {
          return Status::PlanError("column '" + item.column +
                                   "' must appear in GROUP BY or be aggregated");
        }
      }
    }
    CHRONICLE_ASSIGN_OR_RETURN(
        SummarySpec group_spec,
        SummarySpec::GroupBy(plan->schema(), std::move(keys), std::move(aggs)));
    bound.spec.emplace(std::move(group_spec));
  } else {
    if (!query.group_by.empty()) {
      return Status::PlanError("GROUP BY without aggregates; add an aggregate "
                               "or drop the GROUP BY");
    }
    std::vector<std::string> columns;
    for (const SelectItem& item : query.items) {
      if (item.expr != nullptr) {
        bound.computed.push_back(ComputedColumn{item.alias, item.expr->Clone()});
      } else {
        columns.push_back(item.column);
      }
    }
    if (columns.empty()) {
      return Status::PlanError(
          "a view needs at least one plain column or aggregate");
    }
    CHRONICLE_ASSIGN_OR_RETURN(
        SummarySpec proj_spec,
        SummarySpec::DistinctProjection(plan->schema(), columns));
    bound.spec.emplace(std::move(proj_spec));
  }

  const ComplexityReport report = AnalyzeComplexity(*plan);
  bound.classification = std::string(CaClassToString(report.ca_class)) + " / " +
                         ImClassToString(report.im_class);
  bound.plan = std::move(plan);
  return bound;
}

Result<ExecResult> ProjectSelect(const SelectQuery& query,
                                 const Schema& source_schema,
                                 std::vector<Tuple> rows, bool where_applied) {
  // WHERE.
  if (where_applied) {
    // already evaluated inside the window plan
  } else if (query.where != nullptr) {
    ScalarExprPtr predicate = query.where->Clone();
    CHRONICLE_RETURN_NOT_OK(predicate->Bind(source_schema));
    std::vector<Tuple> kept;
    for (Tuple& row : rows) {
      EvalRow eval{&row, 0, 0};
      CHRONICLE_ASSIGN_OR_RETURN(bool pass, predicate->EvalBool(eval));
      if (pass) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Projection: plain columns by index, computed items by evaluation.
  ExecResult result;
  if (query.select_star) {
    result.schema = source_schema;
    result.rows = std::move(rows);
  } else {
    struct OutputItem {
      size_t index = 0;            // plain column
      const ScalarExpr* expr = nullptr;  // computed (bound below)
    };
    std::vector<OutputItem> outputs;
    std::vector<Field> fields;
    std::vector<ScalarExprPtr> bound_exprs;  // keep clones alive
    for (const SelectItem& item : query.items) {
      if (item.expr != nullptr) {
        ScalarExprPtr expr = item.expr->Clone();
        CHRONICLE_RETURN_NOT_OK(expr->Bind(source_schema));
        outputs.push_back(OutputItem{0, expr.get()});
        bound_exprs.push_back(std::move(expr));
        // Computed output type is dynamic; surface as INT64 by convention.
        fields.push_back(Field{item.alias, DataType::kInt64});
      } else {
        CHRONICLE_ASSIGN_OR_RETURN(size_t idx,
                                   source_schema.IndexOf(item.column));
        outputs.push_back(OutputItem{idx, nullptr});
        Field field = source_schema.field(idx);
        if (!item.alias.empty()) field.name = item.alias;
        fields.push_back(std::move(field));
      }
    }
    CHRONICLE_ASSIGN_OR_RETURN(result.schema, Schema::Make(std::move(fields)));
    result.rows.reserve(rows.size());
    for (const Tuple& row : rows) {
      Tuple projected;
      projected.reserve(outputs.size());
      for (const OutputItem& output : outputs) {
        if (output.expr != nullptr) {
          EvalRow eval{&row, 0, 0};
          CHRONICLE_ASSIGN_OR_RETURN(Value v, output.expr->Eval(eval));
          projected.push_back(std::move(v));
        } else {
          projected.push_back(row[output.index]);
        }
      }
      result.rows.push_back(std::move(projected));
    }
  }
  result.message = std::to_string(result.rows.size()) + " row(s)";
  return result;
}

Result<ExecResult> Execute(ChronicleDatabase* db, const Statement& statement) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (const auto* s = std::get_if<CreateChronicleStmt>(&statement)) {
    return ExecCreateChronicle(db, *s);
  }
  if (const auto* s = std::get_if<CreateRelationStmt>(&statement)) {
    return ExecCreateRelation(db, *s);
  }
  if (const auto* s = std::get_if<CreateViewStmt>(&statement)) {
    return ExecCreateView(db, *s);
  }
  if (const auto* s = std::get_if<InsertStmt>(&statement)) {
    return ExecInsert(db, *s);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&statement)) {
    return ExecUpdate(db, *s);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&statement)) {
    return ExecDelete(db, *s);
  }
  if (const auto* s = std::get_if<SelectStmt>(&statement)) {
    return ExecSelect(db, *s);
  }
  if (const auto* s = std::get_if<ExplainStmt>(&statement)) {
    return ExecExplain(db, *s);
  }
  if (const auto* s = std::get_if<ShowStmt>(&statement)) {
    return ExecShow(db, *s);
  }
  if (const auto* s = std::get_if<DropStmt>(&statement)) {
    return ExecDrop(db, *s);
  }
  if (const auto* s = std::get_if<CheckpointStmt>(&statement)) {
    return ExecCheckpoint(db, *s);
  }
  if (const auto* s = std::get_if<RestoreStmt>(&statement)) {
    return ExecRestore(db, *s);
  }
  return Status::Internal("unreachable statement type");
}

Result<ExecResult> Execute(ChronicleDatabase* db, const std::string& sql) {
  CHRONICLE_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return Execute(db, stmt);
}

Result<ExecResult> ExecuteScript(ChronicleDatabase* db, const std::string& sql) {
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  ExecResult last;
  for (const Statement& stmt : stmts) {
    CHRONICLE_ASSIGN_OR_RETURN(last, Execute(db, stmt));
  }
  return last;
}

}  // namespace cql
}  // namespace chronicle
