// CQL lexer. CQL (Chronicle Query Language) is the SQL-like surface the
// paper's introduction calls for: summary views are "specified
// declaratively (an SQL like language may be used)".
//
// Token set: identifiers (case-insensitive keywords), integer and floating
// literals, single-quoted string literals, and punctuation/operators.

#ifndef CHRONICLE_CQL_LEXER_H_
#define CHRONICLE_CQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace chronicle {
namespace cql {

enum class TokenType : uint8_t {
  kIdentifier,  // possibly a keyword; parser matches case-insensitively
  kInteger,
  kFloat,
  kString,
  kSymbol,  // one of ( ) , ; . * = <> != < <= > >= + - / :
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw text (uppercased for identifiers' `upper`)
  std::string upper;    // uppercase of text, for keyword matching
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
};

// Splits `input` into tokens; the final token is always kEnd. Fails with
// ParseError on unterminated strings or illegal characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cql
}  // namespace chronicle

#endif  // CHRONICLE_CQL_LEXER_H_
