#include "storage/relation.h"

#include <algorithm>

namespace chronicle {

Relation::Relation(std::string name, Schema schema,
                   std::optional<size_t> key_index, IndexMode index_mode)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_index_(key_index),
      index_mode_(index_mode) {}

Result<Relation> Relation::Make(std::string name, Schema schema,
                                const std::string& key_column,
                                IndexMode index_mode) {
  std::optional<size_t> key_index;
  if (!key_column.empty()) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(key_column));
    key_index = idx;
  }
  return Relation(std::move(name), std::move(schema), key_index, index_mode);
}

Status Relation::Insert(Tuple row) {
  CHRONICLE_RETURN_NOT_OK(ValidateTuple(schema_, row));
  rows_.push_back(std::move(row));
  Status st = IndexInsert(rows_.size() - 1);
  if (!st.ok()) {
    rows_.pop_back();
    return st;
  }
  ++version_;
  return Status::OK();
}

Status Relation::UpdateByKey(const Value& key, Tuple new_row) {
  CHRONICLE_RETURN_NOT_OK(ValidateTuple(schema_, new_row));
  if (!has_key()) {
    return Status::FailedPrecondition("relation '" + name_ + "' has no key");
  }
  const Value& new_key = new_row[*key_index_];
  if (new_key.is_null()) {
    return Status::InvalidArgument("NULL key in relation '" + name_ + "'");
  }
  // Check collisions up front so the delete+insert below cannot half-apply.
  if (new_key != key && LookupByKey(new_key).ok()) {
    return Status::AlreadyExists("duplicate key " + new_key.ToString() +
                                 " in relation '" + name_ + "'");
  }
  CHRONICLE_RETURN_NOT_OK(DeleteByKey(key));
  return Insert(std::move(new_row));
}

Status Relation::DeleteByKey(const Value& key) {
  if (!has_key()) {
    return Status::FailedPrecondition("relation '" + name_ + "' has no key");
  }
  size_t idx;
  if (index_mode_ == IndexMode::kHash) {
    auto it = key_hash_.find(key);
    if (it == key_hash_.end()) {
      return Status::NotFound("no row with key " + key.ToString());
    }
    idx = it->second;
  } else {
    auto it = key_ordered_.find(key);
    if (it == key_ordered_.end()) {
      return Status::NotFound("no row with key " + key.ToString());
    }
    idx = it->second;
  }
  IndexErase(idx);
  const size_t last = rows_.size() - 1;
  if (idx != last) {
    IndexReplaceSlot(last, idx);
    rows_[idx] = std::move(rows_[last]);
  }
  rows_.pop_back();
  ++version_;
  return Status::OK();
}

Result<const Tuple*> Relation::LookupByKey(const Value& key) const {
  if (!has_key()) {
    return Status::FailedPrecondition("relation '" + name_ + "' has no key");
  }
  const Tuple* row = FindByKey(key);
  if (row == nullptr) {
    return Status::NotFound("no row with key " + key.ToString());
  }
  return row;
}

const Tuple* Relation::FindByKey(const Value& key) const {
  if (!has_key()) return nullptr;
  if (index_mode_ == IndexMode::kHash) {
    auto it = key_hash_.find(key);
    return it == key_hash_.end() ? nullptr : &rows_[it->second];
  }
  auto it = key_ordered_.find(key);
  return it == key_ordered_.end() ? nullptr : &rows_[it->second];
}

Status Relation::CreateSecondaryIndex(const std::string& column) {
  CHRONICLE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  if (secondary_.count(col) != 0) {
    return Status::AlreadyExists("secondary index on '" + column +
                                 "' already exists");
  }
  auto& index = secondary_[col];
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][col]].push_back(i);
  }
  return Status::OK();
}

bool Relation::HasSecondaryIndex(size_t column) const {
  return secondary_.count(column) != 0;
}

Result<std::vector<const Tuple*>> Relation::LookupBySecondary(
    size_t column, const Value& value) const {
  if (secondary_.count(column) == 0) {
    return Status::FailedPrecondition("no secondary index on column " +
                                      std::to_string(column));
  }
  std::vector<const Tuple*> out;
  const std::vector<size_t>* slots = FindBySecondary(column, value);
  if (slots != nullptr) {
    out.reserve(slots->size());
    for (size_t slot : *slots) out.push_back(&rows_[slot]);
  }
  return out;
}

const std::vector<size_t>* Relation::FindBySecondary(size_t column,
                                                     const Value& value) const {
  auto idx_it = secondary_.find(column);
  if (idx_it == secondary_.end()) return nullptr;
  auto it = idx_it->second.find(value);
  return it == idx_it->second.end() ? nullptr : &it->second;
}

void Relation::ScanAll(const std::function<void(const Tuple&)>& fn) const {
  for (const Tuple& row : rows_) fn(row);
}

Status Relation::IndexInsert(size_t idx) {
  if (has_key()) {
    const Value& key = rows_[idx][*key_index_];
    if (key.is_null()) {
      return Status::InvalidArgument("NULL key in relation '" + name_ + "'");
    }
    if (index_mode_ == IndexMode::kHash) {
      auto [it, inserted] = key_hash_.emplace(key, idx);
      if (!inserted) {
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in relation '" + name_ + "'");
      }
    } else {
      auto [it, inserted] = key_ordered_.emplace(key, idx);
      if (!inserted) {
        return Status::AlreadyExists("duplicate key " + key.ToString() +
                                     " in relation '" + name_ + "'");
      }
    }
  }
  for (auto& [col, index] : secondary_) {
    index[rows_[idx][col]].push_back(idx);
  }
  return Status::OK();
}

void Relation::IndexErase(size_t idx) {
  if (has_key()) {
    const Value& key = rows_[idx][*key_index_];
    if (index_mode_ == IndexMode::kHash) {
      key_hash_.erase(key);
    } else {
      key_ordered_.erase(key);
    }
  }
  for (auto& [col, index] : secondary_) {
    auto it = index.find(rows_[idx][col]);
    if (it == index.end()) continue;
    auto& slots = it->second;
    slots.erase(std::remove(slots.begin(), slots.end(), idx), slots.end());
    if (slots.empty()) index.erase(it);
  }
}

void Relation::IndexReplaceSlot(size_t from, size_t to) {
  if (has_key()) {
    const Value& key = rows_[from][*key_index_];
    if (index_mode_ == IndexMode::kHash) {
      key_hash_[key] = to;
    } else {
      key_ordered_[key] = to;
    }
  }
  for (auto& [col, index] : secondary_) {
    auto it = index.find(rows_[from][col]);
    if (it == index.end()) continue;
    for (size_t& slot : it->second) {
      if (slot == from) slot = to;
    }
  }
}

}  // namespace chronicle
