// KeyedTable<V>: the "efficient storage structure" for persistent views
// (paper §5.2) — a map from a group-key Tuple to an arbitrary per-group
// payload V (aggregate states, multiplicity counts, ...).
//
// Two interchangeable index modes mirror the complexity discussion of
// Theorem 4.4: kOrdered gives the paper's O(log |V|) per-delta-tuple bound
// with a comparison-based index; kHash gives the expected-O(1) variant a
// production system would deploy. Benchmark E5 contrasts them.

#ifndef CHRONICLE_STORAGE_KEYED_TABLE_H_
#define CHRONICLE_STORAGE_KEYED_TABLE_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "storage/relation.h"  // IndexMode
#include "types/tuple.h"

namespace chronicle {

template <typename V>
class KeyedTable {
 public:
  explicit KeyedTable(IndexMode mode = IndexMode::kHash) : mode_(mode) {}

  IndexMode mode() const { return mode_; }

  size_t size() const {
    return mode_ == IndexMode::kHash ? hash_.size() : ordered_.size();
  }

  // Returns the payload for `key`, default-constructing it on first access.
  V& GetOrCreate(const Tuple& key) {
    if (mode_ == IndexMode::kHash) return hash_[key];
    return ordered_[key];
  }

  // One-probe variant for hot loops: stable pointers to the stored key and
  // payload, plus whether the entry was just created. The key is copied
  // only on creation, and the pointers survive later insertions (both
  // underlying containers are node-based), so callers can hold them
  // instead of re-probing per output row.
  struct Entry {
    const Tuple* key;
    V* value;
    bool inserted;
  };
  Entry GetOrCreateEntry(const Tuple& key) {
    if (mode_ == IndexMode::kHash) {
      auto [it, inserted] = hash_.try_emplace(key);
      return Entry{&it->first, &it->second, inserted};
    }
    auto [it, inserted] = ordered_.try_emplace(key);
    return Entry{&it->first, &it->second, inserted};
  }

  // Returns the payload for `key` or nullptr if absent.
  const V* Find(const Tuple& key) const {
    if (mode_ == IndexMode::kHash) {
      auto it = hash_.find(key);
      return it == hash_.end() ? nullptr : &it->second;
    }
    auto it = ordered_.find(key);
    return it == ordered_.end() ? nullptr : &it->second;
  }
  V* Find(const Tuple& key) {
    return const_cast<V*>(static_cast<const KeyedTable*>(this)->Find(key));
  }

  // Removes `key`; returns whether it was present.
  bool Erase(const Tuple& key) {
    if (mode_ == IndexMode::kHash) return hash_.erase(key) > 0;
    return ordered_.erase(key) > 0;
  }

  void Clear() {
    hash_.clear();
    ordered_.clear();
  }

  // Applies `fn` to every (key, payload) pair. Ordered mode iterates in key
  // order; hash mode in arbitrary order.
  void ForEach(const std::function<void(const Tuple&, const V&)>& fn) const {
    if (mode_ == IndexMode::kHash) {
      for (const auto& [k, v] : hash_) fn(k, v);
    } else {
      for (const auto& [k, v] : ordered_) fn(k, v);
    }
  }

 private:
  IndexMode mode_;
  std::unordered_map<Tuple, V, TupleHash, TupleEq> hash_;
  std::map<Tuple, V, TupleLess> ordered_;
};

}  // namespace chronicle

#endif  // CHRONICLE_STORAGE_KEYED_TABLE_H_
