// Relation: an ordinary relation of the chronicle database.
//
// Relations are small relative to chronicles (|R| << |C|, paper §3) and are
// updated only PROACTIVELY: because every chronicle/relation join in the
// model implicitly uses the *current* relation version (paper §2.3), no
// multiversion storage is needed — the version counter exists so callers and
// tests can assert which version a tick observed.
//
// A relation may declare a single-column unique key. Joins on that key are
// what admit a chronicle-algebra expression into CA_⋈ (at most one relation
// tuple joins each chronicle tuple). The key index runs in one of two modes:
//   * kHash    — expected O(1) lookups (what a production system would use);
//   * kOrdered — O(log |R|) lookups, matching the paper's stated
//                IM-log(R) bound for comparison-based indexes.
// Benchmark E2 contrasts the two.

#ifndef CHRONICLE_STORAGE_RELATION_H_
#define CHRONICLE_STORAGE_RELATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

// Identifies a relation within a database.
using RelationId = uint32_t;

// Key-index implementation selector.
enum class IndexMode : uint8_t {
  kHash = 0,
  kOrdered = 1,
};

class Relation {
 public:
  // Creates a relation. `key_column` names the unique key column, or is
  // empty for a keyless (heap) relation.
  static Result<Relation> Make(std::string name, Schema schema,
                               const std::string& key_column = "",
                               IndexMode index_mode = IndexMode::kHash);

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  // True iff a unique key column is declared.
  bool has_key() const { return key_index_.has_value(); }
  // Column index of the key; only valid when has_key().
  size_t key_index() const { return *key_index_; }
  IndexMode index_mode() const { return index_mode_; }

  size_t size() const { return rows_.size(); }
  // Monotone counter bumped by every mutation; identifies relation versions.
  uint64_t version() const { return version_; }

  // Inserts a row. Fails on schema mismatch or duplicate key.
  Status Insert(Tuple row);
  // Replaces the row with the given key value. Fails if absent, on schema
  // mismatch, or if the replacement changes the key to a colliding value.
  Status UpdateByKey(const Value& key, Tuple new_row);
  // Removes the row with the given key value. Fails if absent.
  Status DeleteByKey(const Value& key);

  // Key lookup: the unique matching row, or NotFound. The pointer is
  // invalidated by the next mutation.
  Result<const Tuple*> LookupByKey(const Value& key) const;

  // Status-free key lookup for hot paths (delta maintenance probes this
  // once per inserted tuple): the unique matching row, or nullptr when the
  // key is absent or the relation is keyless. Never allocates — the miss
  // path of an inner join costs one hash/tree probe and nothing else.
  // The pointer is invalidated by the next mutation.
  const Tuple* FindByKey(const Value& key) const;

  // Builds a non-unique hash index on `column` to bound equality lookups.
  Status CreateSecondaryIndex(const std::string& column);
  // True iff a secondary index exists on that column.
  bool HasSecondaryIndex(size_t column) const;
  // Equality lookup through a secondary index; fails if no index on column.
  // Returns the matching rows (possibly empty), borrowed from the relation
  // and invalidated by the next mutation.
  Result<std::vector<const Tuple*>> LookupBySecondary(size_t column,
                                                      const Value& value) const;

  // Status-free secondary lookup: the row slots matching `value`, or
  // nullptr when there are no matches (or no index on `column` — callers
  // on the hot path have already proven the index exists at plan-build
  // time, see CaExpr::RelBoundedJoin). Resolve slots through rows().
  // Never allocates; invalidated by the next mutation.
  const std::vector<size_t>* FindBySecondary(size_t column,
                                             const Value& value) const;

  // Applies `fn` to every row (arbitrary order).
  void ScanAll(const std::function<void(const Tuple&)>& fn) const;
  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  Relation(std::string name, Schema schema, std::optional<size_t> key_index,
           IndexMode index_mode);

  // Registers row `idx` in the key and secondary indexes.
  Status IndexInsert(size_t idx);
  // Unregisters row `idx` from all indexes.
  void IndexErase(size_t idx);
  // Rewrites index entries pointing at `from` to point at `to` (swap-remove
  // fixup).
  void IndexReplaceSlot(size_t from, size_t to);

  std::string name_;
  Schema schema_;
  std::optional<size_t> key_index_;
  IndexMode index_mode_;
  std::vector<Tuple> rows_;
  uint64_t version_ = 0;

  std::unordered_map<Value, size_t, ValueHash> key_hash_;
  std::map<Value, size_t> key_ordered_;
  // column index -> (value -> row slots)
  std::unordered_map<size_t,
                     std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      secondary_;
};

}  // namespace chronicle

#endif  // CHRONICLE_STORAGE_RELATION_H_
