// Chronicle: an unbounded, append-only sequence of transaction records.
//
// A chronicle "can be very large, and the entire chronicle may not be stored
// in the system" (paper §2.1). Retention is therefore a policy, not a
// guarantee: the incremental view-maintenance machinery never reads a
// chronicle, so a retention of kNone is fully functional for maintenance.
// Stored prefixes exist only to serve detailed window queries and the naive
// baseline engine.
//
// Appends happen exclusively through the owning ChronicleGroup, which
// enforces the group-wide sequence-number discipline.

#ifndef CHRONICLE_STORAGE_CHRONICLE_H_
#define CHRONICLE_STORAGE_CHRONICLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tracking_allocator.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

// Identifies a chronicle within its group.
using ChronicleId = uint32_t;

// How much of the stream the chronicle retains.
struct RetentionPolicy {
  enum class Kind : uint8_t {
    kNone,    // store nothing (pure stream; maintenance-only)
    kWindow,  // keep the most recent `window_rows` rows
    kAll,     // keep everything (needed by the naive baseline)
    kTiered,  // keep `window_rows` rows hot in memory, spill the rest to an
              // attached TierSink (the on-disk segment store)
  };

  Kind kind = Kind::kAll;
  size_t window_rows = 0;

  static RetentionPolicy None() { return {Kind::kNone, 0}; }
  static RetentionPolicy Window(size_t rows) { return {Kind::kWindow, rows}; }
  static RetentionPolicy All() { return {Kind::kAll, 0}; }
  static RetentionPolicy Tiered(size_t hot_rows) {
    return {Kind::kTiered, hot_rows};
  }
};

// Where a tiered chronicle spills rows that age out of the hot window.
// Implemented by store::TieredStore; declared here so the storage layer
// never depends on the store library.
class TierSink {
 public:
  virtual ~TierSink() = default;

  // Durably persists `rows` (a contiguous, oldest-first slice of the
  // chronicle; never splits a sequence number). On OK the rows may be
  // dropped from memory; on error the caller must keep them hot.
  virtual Status SealRows(ChronicleId id,
                          const std::vector<ChronicleRow>& rows) = 0;
  // Highest sequence number durably sealed for `id`; 0 if none. Appends at
  // or below this SN are already in the warm tier (recovery replay).
  virtual SeqNum last_sealed_sn(ChronicleId id) const = 0;
  // Rows currently retained in the warm tier for `id`.
  virtual uint64_t WarmRows(ChronicleId id) const = 0;
  // Applies `fn` to every warm row of `id`, oldest first. Fails closed if a
  // segment cannot be decoded.
  virtual Status ScanWarm(
      ChronicleId id,
      const std::function<void(const ChronicleRow&)>& fn) const = 0;
};

class Chronicle {
 public:
  Chronicle(ChronicleId id, std::string name, Schema schema,
            RetentionPolicy retention);

  Chronicle(const Chronicle&) = delete;
  Chronicle& operator=(const Chronicle&) = delete;
  Chronicle(Chronicle&&) = default;
  Chronicle& operator=(Chronicle&&) = default;

  ChronicleId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RetentionPolicy& retention() const { return retention_; }

  // Total number of tuples ever appended (independent of retention).
  uint64_t total_appended() const { return total_appended_; }
  // Sequence number of the most recent append; 0 if never appended.
  SeqNum last_sn() const { return last_sn_; }

  // The hot (in-memory) retained suffix, oldest first. Under kTiered this
  // is only the hot window; use ScanRetained / num_retained for the full
  // retained prefix including warm segments.
  const std::deque<ChronicleRow>& retained() const { return rows_; }

  // Total rows retained across warm (on-disk) and hot tiers.
  uint64_t num_retained() const {
    return (sink_ != nullptr ? sink_->WarmRows(id_) : 0) + rows_.size();
  }

  // Applies `fn` to every retained row, oldest first: warm segments (if a
  // tier sink is attached) then the hot deque. The templated overload is
  // the hot path — `fn` is invoked directly with no per-row indirect call.
  // Returns non-OK only if a warm segment cannot be decoded.
  template <typename Visitor>
  Status ScanRetained(Visitor&& fn) const {
    if (sink_ != nullptr) {
      CHRONICLE_RETURN_NOT_OK(ScanWarmTier(fn));
    }
    for (const ChronicleRow& row : rows_) fn(row);
    return Status::OK();
  }
  // Thin wrapper for callers that already hold a std::function.
  Status ScanRetained(const std::function<void(const ChronicleRow&)>& fn) const;

  // Approximate bytes held by hot retained rows.
  size_t MemoryFootprint() const { return meter_.current(); }

  // Attaches the warm-tier sink for a kTiered chronicle. `seal_batch_rows`
  // rows are handed to the sink per seal (extended so one SN never spans
  // the hot/warm boundary). Must be attached before the first append.
  void AttachTierSink(TierSink* sink, size_t seal_batch_rows);

  const TierSink* tier_sink() const { return sink_; }

 private:
  friend class ChronicleGroup;  // appends are group-mediated

  // Called by ChronicleGroup after SN validation and schema validation.
  void AppendValidated(SeqNum sn, std::vector<Tuple> tuples);

  // Spills hot rows past the window to the tier sink, oldest first. A sink
  // failure leaves the rows hot (retention degrades; nothing is lost).
  void MaybeSealTier();

  // Out-of-line bridge so the templated ScanRetained stays header-only
  // without instantiating the sink call per visitor type.
  Status ScanWarmTier(const std::function<void(const ChronicleRow&)>& fn) const;

  static size_t ApproxTupleBytes(const Tuple& t);

  ChronicleId id_;
  std::string name_;
  Schema schema_;
  RetentionPolicy retention_;
  std::deque<ChronicleRow> rows_;
  uint64_t total_appended_ = 0;
  SeqNum last_sn_ = 0;
  MemoryMeter meter_;
  TierSink* sink_ = nullptr;  // not owned; null unless kTiered and attached
  size_t seal_batch_rows_ = 0;
};

}  // namespace chronicle

#endif  // CHRONICLE_STORAGE_CHRONICLE_H_
