// Chronicle: an unbounded, append-only sequence of transaction records.
//
// A chronicle "can be very large, and the entire chronicle may not be stored
// in the system" (paper §2.1). Retention is therefore a policy, not a
// guarantee: the incremental view-maintenance machinery never reads a
// chronicle, so a retention of kNone is fully functional for maintenance.
// Stored prefixes exist only to serve detailed window queries and the naive
// baseline engine.
//
// Appends happen exclusively through the owning ChronicleGroup, which
// enforces the group-wide sequence-number discipline.

#ifndef CHRONICLE_STORAGE_CHRONICLE_H_
#define CHRONICLE_STORAGE_CHRONICLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tracking_allocator.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

// Identifies a chronicle within its group.
using ChronicleId = uint32_t;

// How much of the stream the chronicle retains.
struct RetentionPolicy {
  enum class Kind : uint8_t {
    kNone,    // store nothing (pure stream; maintenance-only)
    kWindow,  // keep the most recent `window_rows` rows
    kAll,     // keep everything (needed by the naive baseline)
  };

  Kind kind = Kind::kAll;
  size_t window_rows = 0;

  static RetentionPolicy None() { return {Kind::kNone, 0}; }
  static RetentionPolicy Window(size_t rows) { return {Kind::kWindow, rows}; }
  static RetentionPolicy All() { return {Kind::kAll, 0}; }
};

class Chronicle {
 public:
  Chronicle(ChronicleId id, std::string name, Schema schema,
            RetentionPolicy retention);

  Chronicle(const Chronicle&) = delete;
  Chronicle& operator=(const Chronicle&) = delete;
  Chronicle(Chronicle&&) = default;
  Chronicle& operator=(Chronicle&&) = default;

  ChronicleId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RetentionPolicy& retention() const { return retention_; }

  // Total number of tuples ever appended (independent of retention).
  uint64_t total_appended() const { return total_appended_; }
  // Sequence number of the most recent append; 0 if never appended.
  SeqNum last_sn() const { return last_sn_; }

  // The retained suffix, oldest first.
  const std::deque<ChronicleRow>& retained() const { return rows_; }

  // Applies `fn` to every retained row, oldest first.
  void ScanRetained(const std::function<void(const ChronicleRow&)>& fn) const;

  // Approximate bytes held by retained rows.
  size_t MemoryFootprint() const { return meter_.current(); }

 private:
  friend class ChronicleGroup;  // appends are group-mediated

  // Called by ChronicleGroup after SN validation and schema validation.
  void AppendValidated(SeqNum sn, std::vector<Tuple> tuples);

  static size_t ApproxTupleBytes(const Tuple& t);

  ChronicleId id_;
  std::string name_;
  Schema schema_;
  RetentionPolicy retention_;
  std::deque<ChronicleRow> rows_;
  uint64_t total_appended_ = 0;
  SeqNum last_sn_ = 0;
  MemoryMeter meter_;
};

}  // namespace chronicle

#endif  // CHRONICLE_STORAGE_CHRONICLE_H_
