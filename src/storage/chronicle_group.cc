#include "storage/chronicle_group.h"

namespace chronicle {

ChronicleGroup::ChronicleGroup(std::string name) : name_(std::move(name)) {}

Result<ChronicleId> ChronicleGroup::CreateChronicle(const std::string& name,
                                                    Schema schema,
                                                    RetentionPolicy retention) {
  for (const auto& c : chronicles_) {
    if (c->name() == name) {
      return Status::AlreadyExists("chronicle '" + name + "' already exists in group '" +
                                   name_ + "'");
    }
  }
  ChronicleId id = static_cast<ChronicleId>(chronicles_.size());
  chronicles_.push_back(
      std::make_unique<Chronicle>(id, name, std::move(schema), retention));
  return id;
}

Result<Chronicle*> ChronicleGroup::GetChronicle(ChronicleId id) {
  if (id >= chronicles_.size()) {
    return Status::NotFound("no chronicle with id " + std::to_string(id));
  }
  return chronicles_[id].get();
}

Result<const Chronicle*> ChronicleGroup::GetChronicle(ChronicleId id) const {
  if (id >= chronicles_.size()) {
    return Status::NotFound("no chronicle with id " + std::to_string(id));
  }
  return static_cast<const Chronicle*>(chronicles_[id].get());
}

Result<ChronicleId> ChronicleGroup::FindChronicle(const std::string& name) const {
  for (const auto& c : chronicles_) {
    if (c->name() == name) return c->id();
  }
  return Status::NotFound("no chronicle named '" + name + "'");
}

Result<AppendEvent> ChronicleGroup::Append(ChronicleId id,
                                           std::vector<Tuple> tuples) {
  return Append(id, std::move(tuples), last_chronon_ + 1);
}

Result<AppendEvent> ChronicleGroup::Append(ChronicleId id,
                                           std::vector<Tuple> tuples,
                                           Chronon chronon) {
  std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
  inserts.emplace_back(id, std::move(tuples));
  return AppendMulti(std::move(inserts), chronon);
}

Result<AppendEvent> ChronicleGroup::AppendMulti(
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts,
    Chronon chronon) {
  return AppendWithSeqNum(last_sn_ + 1, chronon, std::move(inserts));
}

Result<AppendEvent> ChronicleGroup::AppendWithSeqNum(
    SeqNum sn, Chronon chronon,
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts) {
  if (sn <= last_sn_) {
    return Status::OutOfRange(
        "sequence number " + std::to_string(sn) +
        " is not greater than the group's last sequence number " +
        std::to_string(last_sn_));
  }
  if (chronon < last_chronon_) {
    return Status::OutOfRange("chronon " + std::to_string(chronon) +
                              " regresses below " + std::to_string(last_chronon_));
  }
  if (inserts.empty()) {
    return Status::InvalidArgument("append event has no inserts");
  }
  // Validate everything before mutating anything (atomic tick).
  for (const auto& [id, tuples] : inserts) {
    CHRONICLE_ASSIGN_OR_RETURN(Chronicle * target, GetChronicle(id));
    if (tuples.empty()) {
      return Status::InvalidArgument("empty tuple batch for chronicle '" +
                                     target->name() + "'");
    }
    for (const Tuple& t : tuples) {
      CHRONICLE_RETURN_NOT_OK(ValidateTuple(target->schema(), t));
    }
  }

  AppendEvent event;
  event.sn = sn;
  event.chronon = chronon;
  event.inserts = inserts;  // keep a copy for the maintenance machinery
  for (auto& [id, tuples] : inserts) {
    chronicles_[id]->AppendValidated(sn, std::move(tuples));
  }
  last_sn_ = sn;
  last_chronon_ = chronon;
  return event;
}

Status ChronicleGroup::RestoreCounters(SeqNum last_sn, Chronon last_chronon) {
  if (last_sn_ != 0) {
    return Status::FailedPrecondition(
        "cannot restore counters into a group that has seen appends");
  }
  last_sn_ = last_sn;
  last_chronon_ = last_chronon;
  return Status::OK();
}

Status ChronicleGroup::RestoreChronicleState(
    ChronicleId id, uint64_t total_appended, SeqNum last_sn,
    std::vector<ChronicleRow> retained) {
  CHRONICLE_ASSIGN_OR_RETURN(Chronicle * chron, GetChronicle(id));
  if (chron->total_appended() != 0) {
    return Status::FailedPrecondition("chronicle '" + chron->name() +
                                      "' is not empty; cannot restore into it");
  }
  for (const ChronicleRow& row : retained) {
    CHRONICLE_RETURN_NOT_OK(ValidateTuple(chron->schema(), row.values));
  }
  for (ChronicleRow& row : retained) {
    chron->AppendValidated(row.sn, {std::move(row.values)});
  }
  // AppendValidated counted the retained rows; overwrite with the true
  // stream counters.
  chron->total_appended_ = total_appended;
  chron->last_sn_ = last_sn;
  return Status::OK();
}

size_t ChronicleGroup::MemoryFootprint() const {
  size_t total = 0;
  for (const auto& c : chronicles_) total += c->MemoryFootprint();
  return total;
}

}  // namespace chronicle
