#include "storage/chronicle.h"

namespace chronicle {

Chronicle::Chronicle(ChronicleId id, std::string name, Schema schema,
                     RetentionPolicy retention)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      retention_(retention) {}

void Chronicle::ScanRetained(
    const std::function<void(const ChronicleRow&)>& fn) const {
  for (const ChronicleRow& row : rows_) fn(row);
}

size_t Chronicle::ApproxTupleBytes(const Tuple& t) {
  size_t bytes = sizeof(ChronicleRow) + t.capacity() * sizeof(Value);
  for (const Value& v : t) {
    if (v.is_string()) bytes += v.str().capacity();
  }
  return bytes;
}

void Chronicle::AppendValidated(SeqNum sn, std::vector<Tuple> tuples) {
  total_appended_ += tuples.size();
  last_sn_ = sn;
  if (retention_.kind == RetentionPolicy::Kind::kNone) return;
  for (Tuple& t : tuples) {
    meter_.Add(ApproxTupleBytes(t));
    rows_.push_back(ChronicleRow{sn, std::move(t)});
  }
  if (retention_.kind == RetentionPolicy::Kind::kWindow) {
    while (rows_.size() > retention_.window_rows) {
      meter_.Sub(ApproxTupleBytes(rows_.front().values));
      rows_.pop_front();
    }
  }
}

}  // namespace chronicle
