#include "storage/chronicle.h"

namespace chronicle {

Chronicle::Chronicle(ChronicleId id, std::string name, Schema schema,
                     RetentionPolicy retention)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      retention_(retention) {}

Status Chronicle::ScanRetained(
    const std::function<void(const ChronicleRow&)>& fn) const {
  return ScanRetained([&fn](const ChronicleRow& row) { fn(row); });
}

Status Chronicle::ScanWarmTier(
    const std::function<void(const ChronicleRow&)>& fn) const {
  return sink_->ScanWarm(id_, fn);
}

void Chronicle::AttachTierSink(TierSink* sink, size_t seal_batch_rows) {
  sink_ = sink;
  seal_batch_rows_ = seal_batch_rows == 0 ? 1 : seal_batch_rows;
}

size_t Chronicle::ApproxTupleBytes(const Tuple& t) {
  size_t bytes = sizeof(ChronicleRow) + t.capacity() * sizeof(Value);
  for (const Value& v : t) {
    if (v.is_string()) bytes += v.str().capacity();
  }
  return bytes;
}

void Chronicle::AppendValidated(SeqNum sn, std::vector<Tuple> tuples) {
  total_appended_ += tuples.size();
  last_sn_ = sn;
  if (retention_.kind == RetentionPolicy::Kind::kNone) return;
  if (retention_.kind == RetentionPolicy::Kind::kTiered && sink_ != nullptr &&
      sn <= sink_->last_sealed_sn(id_)) {
    // Recovery replay (checkpoint restore or WAL tail) of rows the warm
    // tier already holds durably; counters were advanced above.
    return;
  }
  for (Tuple& t : tuples) {
    meter_.Add(ApproxTupleBytes(t));
    rows_.push_back(ChronicleRow{sn, std::move(t)});
  }
  if (retention_.kind == RetentionPolicy::Kind::kWindow) {
    while (rows_.size() > retention_.window_rows) {
      meter_.Sub(ApproxTupleBytes(rows_.front().values));
      rows_.pop_front();
    }
  } else if (retention_.kind == RetentionPolicy::Kind::kTiered) {
    MaybeSealTier();
  }
}

void Chronicle::MaybeSealTier() {
  if (sink_ == nullptr) return;
  while (rows_.size() >= retention_.window_rows + seal_batch_rows_) {
    size_t count = seal_batch_rows_;
    // Never split one sequence number across the warm/hot boundary: the
    // recovery dedup guard (`sn <= last_sealed_sn`) must be able to treat
    // a sealed SN as fully sealed.
    while (count < rows_.size() && rows_[count - 1].sn == rows_[count].sn) {
      ++count;
    }
    std::vector<ChronicleRow> batch(rows_.begin(), rows_.begin() + count);
    if (!sink_->SealRows(id_, batch).ok()) return;
    for (size_t i = 0; i < count; ++i) {
      meter_.Sub(ApproxTupleBytes(rows_.front().values));
      rows_.pop_front();
    }
  }
}

}  // namespace chronicle
