// ChronicleGroup: a collection of chronicles whose sequence numbers are
// drawn from one shared ordered domain (paper §4).
//
// The group enforces the model's single update rule: an insert into ANY
// member chronicle must carry a sequence number strictly greater than every
// sequence number already present anywhere in the group. Multiple tuples —
// and multiple member chronicles — may share one sequence number within a
// single append event ("tick"), which is what makes the SN-equijoin between
// chronicles meaningful.
//
// Each tick also carries a chronon (a temporal instant, paper §2.1) used by
// periodic views to map sequence numbers to calendar intervals. Chronons
// must be non-decreasing across ticks.

#ifndef CHRONICLE_STORAGE_CHRONICLE_GROUP_H_
#define CHRONICLE_STORAGE_CHRONICLE_GROUP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/chronicle.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace chronicle {

// A temporal instant associated with a sequence number (paper: "chronon").
// Units are application-defined; the library treats them as an ordered axis.
using Chronon = int64_t;

// One append event: everything inserted under a single fresh sequence
// number. This is the unit the view-maintenance machinery consumes.
struct AppendEvent {
  SeqNum sn = 0;
  Chronon chronon = 0;
  // Per member chronicle, the tuples inserted at this SN. Chronicles absent
  // from the vector received nothing.
  std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
};

class ChronicleGroup {
 public:
  explicit ChronicleGroup(std::string name = "default");

  ChronicleGroup(const ChronicleGroup&) = delete;
  ChronicleGroup& operator=(const ChronicleGroup&) = delete;

  const std::string& name() const { return name_; }

  // Registers a new member chronicle. Fails on duplicate name.
  Result<ChronicleId> CreateChronicle(const std::string& name, Schema schema,
                                      RetentionPolicy retention =
                                          RetentionPolicy::All());

  // Member access.
  Result<Chronicle*> GetChronicle(ChronicleId id);
  Result<const Chronicle*> GetChronicle(ChronicleId id) const;
  Result<ChronicleId> FindChronicle(const std::string& name) const;
  size_t num_chronicles() const { return chronicles_.size(); }

  // Highest sequence number ever issued in this group (0 if none).
  SeqNum last_sn() const { return last_sn_; }
  // Chronon of the most recent tick.
  Chronon last_chronon() const { return last_chronon_; }

  // Appends `tuples` to one chronicle under a fresh sequence number and
  // returns the resulting event. `chronon` defaults to advancing the clock
  // by one unit per tick.
  Result<AppendEvent> Append(ChronicleId id, std::vector<Tuple> tuples);
  Result<AppendEvent> Append(ChronicleId id, std::vector<Tuple> tuples,
                             Chronon chronon);

  // Appends to several member chronicles under ONE shared fresh sequence
  // number (the multi-chronicle tick that feeds SN-equijoins).
  Result<AppendEvent> AppendMulti(
      std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts,
      Chronon chronon);

  // Explicit-SN variant used to exercise (and test) the sequencing
  // discipline: fails with OutOfRange unless sn > last_sn(), and with
  // OutOfRange if chronon regresses.
  Result<AppendEvent> AppendWithSeqNum(
      SeqNum sn, Chronon chronon,
      std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts);

  // Sum of member chronicles' retained-row footprints.
  size_t MemoryFootprint() const;

  // --- checkpoint hooks (src/checkpoint) ---

  // Reinstates the group counters after a restart. Only legal on a group
  // that has seen no appends; counters may only move forward.
  Status RestoreCounters(SeqNum last_sn, Chronon last_chronon);
  // Reinstates a member chronicle's counters and retained rows. Only legal
  // while the chronicle is empty.
  Status RestoreChronicleState(ChronicleId id, uint64_t total_appended,
                               SeqNum last_sn,
                               std::vector<ChronicleRow> retained);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Chronicle>> chronicles_;
  SeqNum last_sn_ = 0;
  Chronon last_chronon_ = 0;
};

}  // namespace chronicle

#endif  // CHRONICLE_STORAGE_CHRONICLE_GROUP_H_
