#include "checkpoint/serde.h"

#include <algorithm>
#include <cstring>

namespace chronicle {
namespace checkpoint {

namespace {
// Value type tags.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;
}  // namespace

void Writer::WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void Writer::WriteU32(uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  buffer_.append(bytes, 4);
}

void Writer::WriteU64(uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  buffer_.append(bytes, 8);
}

void Writer::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void Writer::WriteDouble(double v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  buffer_.append(bytes, 8);
}

void Writer::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s);
}

void Writer::WriteValue(const Value& v) {
  if (v.is_null()) {
    WriteU8(kTagNull);
  } else if (v.is_int64()) {
    WriteU8(kTagInt64);
    WriteI64(v.int64());
  } else if (v.is_double()) {
    WriteU8(kTagDouble);
    WriteDouble(v.dbl());
  } else {
    WriteU8(kTagString);
    WriteString(v.str());
  }
}

void Writer::WriteTuple(const Tuple& t) {
  WriteU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) WriteValue(v);
}

void Writer::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

Status Reader::Need(size_t bytes) const {
  if (pos_ + bytes > data_.size()) {
    return Status::ParseError("checkpoint truncated: need " +
                              std::to_string(bytes) + " bytes at offset " +
                              std::to_string(pos_));
  }
  return Status::OK();
}

Result<uint8_t> Reader::ReadU8() {
  CHRONICLE_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Reader::ReadU32() {
  CHRONICLE_RETURN_NOT_OK(Need(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::ReadU64() {
  CHRONICLE_RETURN_NOT_OK(Need(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int64_t> Reader::ReadI64() {
  CHRONICLE_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::ReadDouble() {
  CHRONICLE_RETURN_NOT_OK(Need(8));
  double v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> Reader::ReadString() {
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  CHRONICLE_RETURN_NOT_OK(Need(size));
  std::string s(data_.substr(pos_, size));
  pos_ += size;
  return s;
}

Result<Value> Reader::ReadValue() {
  CHRONICLE_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (tag) {
    case kTagNull:
      return Value();
    case kTagInt64: {
      CHRONICLE_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case kTagDouble: {
      CHRONICLE_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case kTagString: {
      CHRONICLE_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value(std::move(s));
    }
    default:
      return Status::ParseError("bad value tag " + std::to_string(tag) +
                                " in checkpoint");
  }
}

Result<uint64_t> Reader::ReadVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    CHRONICLE_ASSIGN_OR_RETURN(uint8_t byte, ReadU8());
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::ParseError("varint longer than 10 bytes at offset " +
                            std::to_string(pos_));
}

Result<Tuple> Reader::ReadTuple() {
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t arity, ReadU32());
  Tuple t;
  // A corrupted arity must not trigger a giant allocation: every value
  // consumes at least one byte, so `remaining()` bounds the real arity.
  t.reserve(std::min<size_t>(arity, remaining()));
  for (uint32_t i = 0; i < arity; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(Value v, ReadValue());
    t.push_back(std::move(v));
  }
  return t;
}

}  // namespace checkpoint
}  // namespace chronicle
