// Minimal bounds-checked binary serialization for checkpoints and the
// tiered segment store.
//
// Little-endian fixed-width integers, IEEE-754 doubles, length-prefixed
// strings, LEB128 varints. Values carry a one-byte type tag. Not a wire
// format for interchange — a crash-recovery image read back by the same
// build.

#ifndef CHRONICLE_CHECKPOINT_SERDE_H_
#define CHRONICLE_CHECKPOINT_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "types/tuple.h"
#include "types/value.h"

namespace chronicle {
namespace checkpoint {

// Appends encoded data to an owned byte buffer.
class Writer {
 public:
  const std::string& buffer() const { return buffer_; }
  // Moves the encoded bytes out (the writer is spent afterwards).
  std::string release() { return std::move(buffer_); }
  // Pre-sizes the buffer (hot encoding paths pass a size estimate).
  void Reserve(size_t bytes) { buffer_.reserve(bytes); }

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  // Unsigned LEB128: 1 byte for values < 128, ~2x smaller than WriteU64 on
  // delta-encoded sequence numbers (the segment store's row headers).
  void WriteVarint(uint64_t v);

 private:
  std::string buffer_;
};

// Consumes a byte buffer; every read is bounds-checked and returns a
// ParseError on truncation or a bad tag.
class Reader {
 public:
  explicit Reader(std::string buffer)
      : owned_(std::move(buffer)), data_(owned_) {}

  // A reader over bytes the caller keeps alive (e.g. an mmap'd segment
  // payload); nothing is copied.
  static Reader Borrowed(std::string_view data) { return Reader(data); }

  // `data_` may view `owned_`; moving would dangle. Construct in place
  // (prvalues returned by Borrowed are elided, not moved).
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  Result<Tuple> ReadTuple();
  Result<uint64_t> ReadVarint();

 private:
  explicit Reader(std::string_view data) : data_(data) {}

  Status Need(size_t bytes) const;

  std::string owned_;
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace checkpoint
}  // namespace chronicle

#endif  // CHRONICLE_CHECKPOINT_SERDE_H_
