#include "checkpoint/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "checkpoint/serde.h"

namespace chronicle {
namespace checkpoint {

namespace {

constexpr uint32_t kMagic = 0x43484b50;  // "CHKP"
// v2 added the WAL watermark after the append counter; v1 images (no
// watermark field) still restore.
constexpr uint32_t kVersion = 2;

void WriteAggState(Writer* w, const AggState& state) {
  w->WriteI64(state.count);
  w->WriteI64(state.sum_i);
  w->WriteDouble(state.sum_d);
  w->WriteValue(state.min);
  w->WriteValue(state.max);
  w->WriteValue(state.first);
  w->WriteValue(state.last);
  w->WriteTuple(state.custom);
}

Result<AggState> ReadAggState(Reader* r) {
  AggState state;
  CHRONICLE_ASSIGN_OR_RETURN(state.count, r->ReadI64());
  CHRONICLE_ASSIGN_OR_RETURN(state.sum_i, r->ReadI64());
  CHRONICLE_ASSIGN_OR_RETURN(state.sum_d, r->ReadDouble());
  CHRONICLE_ASSIGN_OR_RETURN(state.min, r->ReadValue());
  CHRONICLE_ASSIGN_OR_RETURN(state.max, r->ReadValue());
  CHRONICLE_ASSIGN_OR_RETURN(state.first, r->ReadValue());
  CHRONICLE_ASSIGN_OR_RETURN(state.last, r->ReadValue());
  CHRONICLE_ASSIGN_OR_RETURN(state.custom, r->ReadTuple());
  return state;
}

void WriteViewGroups(Writer* w, const PersistentView& view) {
  w->WriteU64(view.size());
  view.VisitGroups([&](const Tuple& key, const std::vector<AggState>& states,
                       int64_t multiplicity) {
    w->WriteTuple(key);
    w->WriteI64(multiplicity);
    w->WriteU32(static_cast<uint32_t>(states.size()));
    for (const AggState& state : states) WriteAggState(w, state);
  });
}

// Reads one serialized view-group record.
struct GroupRecord {
  Tuple key;
  int64_t multiplicity;
  std::vector<AggState> states;
};

Result<GroupRecord> ReadGroupRecord(Reader* r) {
  GroupRecord record;
  CHRONICLE_ASSIGN_OR_RETURN(record.key, r->ReadTuple());
  CHRONICLE_ASSIGN_OR_RETURN(record.multiplicity, r->ReadI64());
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_states, r->ReadU32());
  record.states.reserve(std::min<size_t>(num_states, r->remaining()));
  for (uint32_t i = 0; i < num_states; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(AggState state, ReadAggState(r));
    record.states.push_back(std::move(state));
  }
  return record;
}

}  // namespace

Result<std::string> SaveDatabase(const ChronicleDatabase& db,
                                 uint64_t wal_watermark) {
  Writer w;
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU64(db.appends_processed());
  w.WriteU64(wal_watermark);

  // Chronicle group.
  const ChronicleGroup& group = db.group();
  w.WriteU64(group.last_sn());
  w.WriteI64(group.last_chronon());
  w.WriteU32(static_cast<uint32_t>(group.num_chronicles()));
  for (ChronicleId id = 0; id < group.num_chronicles(); ++id) {
    const Chronicle* chron = group.GetChronicle(id).value();
    w.WriteString(chron->name());
    w.WriteU64(chron->total_appended());
    w.WriteU64(chron->last_sn());
    w.WriteU64(chron->retained().size());
    for (const ChronicleRow& row : chron->retained()) {
      w.WriteU64(row.sn);
      w.WriteTuple(row.values);
    }
  }

  // Relations.
  uint32_t num_relations = 0;
  db.ForEachRelation([&](const Relation&) { ++num_relations; });
  w.WriteU32(num_relations);
  db.ForEachRelation([&](const Relation& rel) {
    w.WriteString(rel.name());
    w.WriteU64(rel.size());
    for (const Tuple& row : rel.rows()) w.WriteTuple(row);
  });

  // Persistent views (live slots only).
  const ViewManager& views = db.view_manager();
  w.WriteU32(static_cast<uint32_t>(views.num_live_views()));
  for (ViewId id = 0; id < views.num_views(); ++id) {
    Result<const PersistentView*> live = views.GetView(id);
    if (!live.ok()) continue;  // dropped view
    const PersistentView* view = *live;
    w.WriteString(view->name());
    w.WriteU64(view->ticks_applied());
    w.WriteU64(view->delta_rows_applied());
    WriteViewGroups(&w, *view);
  }

  // Periodic view sets.
  uint32_t num_periodic = 0;
  db.ForEachPeriodicView([&](const PeriodicViewSet&) { ++num_periodic; });
  w.WriteU32(num_periodic);
  db.ForEachPeriodicView([&](const PeriodicViewSet& set) {
    w.WriteString(set.name());
    w.WriteU64(set.instances_created());
    w.WriteU64(set.instances_expired());
    w.WriteU64(set.num_active_instances());
    set.VisitInstances([&](int64_t index, const PersistentView& instance) {
      w.WriteI64(index);
      WriteViewGroups(&w, instance);
    });
  });

  // Sliding-window views.
  uint32_t num_sliding = 0;
  db.ForEachSlidingView([&](const SlidingWindowView&) { ++num_sliding; });
  w.WriteU32(num_sliding);
  db.ForEachSlidingView([&](const SlidingWindowView& view) {
    w.WriteString(view.name());
    w.WriteI64(view.current_pane());
    uint64_t groups = 0;
    view.VisitPanes(
        [&](int64_t, const Tuple&, const std::vector<AggState>&) { ++groups; });
    w.WriteU64(groups);
    view.VisitPanes([&](int64_t pane, const Tuple& key,
                        const std::vector<AggState>& states) {
      w.WriteI64(pane);
      w.WriteTuple(key);
      w.WriteU32(static_cast<uint32_t>(states.size()));
      for (const AggState& state : states) WriteAggState(&w, state);
    });
  });

  return w.buffer();
}

Status RestoreDatabase(const std::string& image, ChronicleDatabase* db) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (db->appends_processed() != 0 || db->group().last_sn() != 0) {
    return Status::FailedPrecondition(
        "checkpoints must be restored into a database that has processed no "
        "appends (re-apply the DDL on a fresh instance first)");
  }
  Reader r(image);
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("not a chronicle checkpoint (bad magic)");
  }
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != 1 && version != kVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version));
  }
  CHRONICLE_ASSIGN_OR_RETURN(uint64_t appends, r.ReadU64());
  if (version >= 2) {
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t watermark, r.ReadU64());
    (void)watermark;  // recovery reads it via CheckpointWatermark
  }

  // Chronicle group.
  CHRONICLE_ASSIGN_OR_RETURN(uint64_t group_sn, r.ReadU64());
  CHRONICLE_ASSIGN_OR_RETURN(int64_t group_chronon, r.ReadI64());
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_chronicles, r.ReadU32());
  for (uint32_t i = 0; i < num_chronicles; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t total_appended, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t last_sn, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t retained, r.ReadU64());
    std::vector<ChronicleRow> rows;
    rows.reserve(std::min<size_t>(retained, r.remaining()));
    for (uint64_t j = 0; j < retained; ++j) {
      ChronicleRow row;
      CHRONICLE_ASSIGN_OR_RETURN(row.sn, r.ReadU64());
      CHRONICLE_ASSIGN_OR_RETURN(row.values, r.ReadTuple());
      rows.push_back(std::move(row));
    }
    CHRONICLE_ASSIGN_OR_RETURN(ChronicleId id,
                               db->group().FindChronicle(name));
    CHRONICLE_RETURN_NOT_OK(db->group().RestoreChronicleState(
        id, total_appended, last_sn, std::move(rows)));
  }
  CHRONICLE_RETURN_NOT_OK(db->group().RestoreCounters(group_sn, group_chronon));

  // Relations.
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_relations, r.ReadU32());
  for (uint32_t i = 0; i < num_relations; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, db->GetRelation(name));
    if (rel->size() != 0) {
      return Status::FailedPrecondition("relation '" + name +
                                        "' is not empty; cannot restore");
    }
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
    for (uint64_t j = 0; j < rows; ++j) {
      CHRONICLE_ASSIGN_OR_RETURN(Tuple row, r.ReadTuple());
      CHRONICLE_RETURN_NOT_OK(rel->Insert(std::move(row)));
    }
  }

  // Persistent views.
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_views, r.ReadU32());
  for (uint32_t i = 0; i < num_views; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    CHRONICLE_ASSIGN_OR_RETURN(PersistentView * view,
                               db->view_manager().FindView(name));
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t ticks, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t delta_rows, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t groups, r.ReadU64());
    for (uint64_t j = 0; j < groups; ++j) {
      CHRONICLE_ASSIGN_OR_RETURN(GroupRecord record, ReadGroupRecord(&r));
      CHRONICLE_RETURN_NOT_OK(view->RestoreGroup(std::move(record.key),
                                                 std::move(record.states),
                                                 record.multiplicity));
    }
    view->RestoreCounters(ticks, delta_rows);
  }

  // Periodic view sets.
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_periodic, r.ReadU32());
  for (uint32_t i = 0; i < num_periodic; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    CHRONICLE_ASSIGN_OR_RETURN(PeriodicViewSet * set,
                               db->GetPeriodicViewMutable(name));
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t created, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t expired, r.ReadU64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t instances, r.ReadU64());
    for (uint64_t j = 0; j < instances; ++j) {
      CHRONICLE_ASSIGN_OR_RETURN(int64_t index, r.ReadI64());
      CHRONICLE_ASSIGN_OR_RETURN(uint64_t groups, r.ReadU64());
      for (uint64_t k = 0; k < groups; ++k) {
        CHRONICLE_ASSIGN_OR_RETURN(GroupRecord record, ReadGroupRecord(&r));
        CHRONICLE_RETURN_NOT_OK(set->RestoreInstanceGroup(
            index, std::move(record.key), std::move(record.states),
            record.multiplicity));
      }
    }
    set->RestoreCounters(created, expired);
  }

  // Sliding-window views.
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_sliding, r.ReadU32());
  for (uint32_t i = 0; i < num_sliding; ++i) {
    CHRONICLE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    CHRONICLE_ASSIGN_OR_RETURN(SlidingWindowView * view,
                               db->GetSlidingViewMutable(name));
    CHRONICLE_ASSIGN_OR_RETURN(int64_t current_pane, r.ReadI64());
    CHRONICLE_ASSIGN_OR_RETURN(uint64_t groups, r.ReadU64());
    for (uint64_t j = 0; j < groups; ++j) {
      CHRONICLE_ASSIGN_OR_RETURN(int64_t pane, r.ReadI64());
      CHRONICLE_ASSIGN_OR_RETURN(Tuple key, r.ReadTuple());
      CHRONICLE_ASSIGN_OR_RETURN(uint32_t num_states, r.ReadU32());
      std::vector<AggState> states;
      states.reserve(std::min<size_t>(num_states, r.remaining()));
      for (uint32_t k = 0; k < num_states; ++k) {
        CHRONICLE_ASSIGN_OR_RETURN(AggState state, ReadAggState(&r));
        states.push_back(std::move(state));
      }
      CHRONICLE_RETURN_NOT_OK(
          view->RestorePaneGroup(pane, std::move(key), std::move(states)));
    }
    view->RestoreCurrentPane(current_pane);
  }

  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in checkpoint (" +
                              std::to_string(r.remaining()) + ")");
  }
  db->RestoreAppendsProcessed(appends);
  return Status::OK();
}

Result<uint64_t> CheckpointWatermark(const std::string& image) {
  Reader r(image);
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("not a chronicle checkpoint (bad magic)");
  }
  CHRONICLE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != 1 && version != kVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version));
  }
  if (version < 2) return uint64_t{0};
  CHRONICLE_RETURN_NOT_OK(r.ReadU64().status());  // appends_processed
  return r.ReadU64();
}

Status SaveDatabaseToFile(const ChronicleDatabase& db,
                          const std::string& path) {
  CHRONICLE_ASSIGN_OR_RETURN(std::string image, SaveDatabase(db));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

Status RestoreDatabaseFromFile(const std::string& path, ChronicleDatabase* db) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open checkpoint '" + path + "'");
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return RestoreDatabase(image, db);
}

}  // namespace checkpoint
}  // namespace chronicle
