// Checkpoint / recovery for a chronicle database.
//
// A chronicle database poses a recovery problem ordinary databases do not
// have: the chronicle itself is NOT stored (or only a window of it is), so
// after a crash the persistent views cannot be rebuilt by replaying the
// log — there is no log. Checkpointing the materialized view state is
// therefore the only way the system can restart without losing its
// summaries. This module serializes:
//
//   * the chronicle group's sequence-number / chronon counters (so the
//     append discipline resumes where it left off),
//   * each chronicle's stream counters and retained window,
//   * relation contents,
//   * every persistent view's raw group states (aggregate states and
//     multiplicities — NOT the finalized rows, so maintenance can continue
//     exactly),
//   * periodic view sets (per-interval instances) and sliding-window views
//     (pane ring contents).
//
// Restore protocol: view DEFINITIONS (schemas, plans, calendars) live in
// application code / DDL, not in the checkpoint. The caller constructs a
// fresh ChronicleDatabase, re-applies the same DDL, and then calls
// RestoreDatabase, which matches objects BY NAME and refuses mismatches
// (missing objects, non-empty targets, wrong aggregate counts).
//
// On its own a checkpoint recovers only up to the moment it was taken;
// everything after it used to be lost on a crash. The write-ahead log
// (src/wal, docs/DURABILITY.md) closes that gap: images carry a WAL
// watermark — the LSN of the last logged operation they cover — and
// recovery replays the log tail past it.

#ifndef CHRONICLE_CHECKPOINT_CHECKPOINT_H_
#define CHRONICLE_CHECKPOINT_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "db/database.h"

namespace chronicle {
namespace checkpoint {

// Serializes the full database state into a byte buffer. `wal_watermark`
// is the LSN of the last write-ahead-log record this image covers (0 when
// the database runs unlogged).
Result<std::string> SaveDatabase(const ChronicleDatabase& db,
                                 uint64_t wal_watermark = 0);

// Reads an image's WAL watermark without restoring it. Images from before
// the watermark existed (format v1) report 0.
Result<uint64_t> CheckpointWatermark(const std::string& image);

// Restores a checkpoint into `db`, which must be freshly constructed with
// the same DDL already applied and no appends processed.
Status RestoreDatabase(const std::string& image, ChronicleDatabase* db);

// File convenience wrappers.
Status SaveDatabaseToFile(const ChronicleDatabase& db, const std::string& path);
Status RestoreDatabaseFromFile(const std::string& path, ChronicleDatabase* db);

}  // namespace checkpoint
}  // namespace chronicle

#endif  // CHRONICLE_CHECKPOINT_CHECKPOINT_H_
