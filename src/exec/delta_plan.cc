#include "exec/delta_plan.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <string>

#include "storage/relation.h"

namespace chronicle {
namespace exec {

namespace {

int64_t ProfileNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Record(DeltaStats* stats, size_t rows) {
  if (stats == nullptr) return;
  stats->total_rows_produced += rows;
  if (rows > stats->max_intermediate_rows) stats->max_intermediate_rows = rows;
}

// Appends a ⧺ b to *out without a temporary.
void EmitConcat(std::vector<Tuple>* out, const Tuple& a, const Tuple& b) {
  out->emplace_back();
  Tuple& dst = out->back();
  dst.reserve(a.size() + b.size());
  dst.insert(dst.end(), a.begin(), a.end());
  dst.insert(dst.end(), b.begin(), b.end());
}

// reserve() for a*b rows, skipped when the product is unrepresentable.
void ReserveProduct(std::vector<Tuple>* out, size_t a, size_t b) {
  if (a != 0 && b > std::numeric_limits<size_t>::max() / a) return;
  out->reserve(a * b);
}

}  // namespace

bool TupleRefSet::Insert(const Tuple* t) {
  if (slots_.empty() || size_ * 2 >= slots_.size()) Grow();
  const size_t mask = slots_.size() - 1;
  size_t i = TupleHash()(*t) & mask;
  while (true) {
    Slot& slot = slots_[i];
    if (!Live(slot)) {
      slot.key = t;
      slot.generation = generation_;
      ++size_;
      return true;
    }
    if (TupleEq()(*slot.key, *t)) return false;
    i = (i + 1) & mask;
  }
}

bool TupleRefSet::Contains(const Tuple& t) const {
  if (slots_.empty()) return false;
  const size_t mask = slots_.size() - 1;
  size_t i = TupleHash()(t) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (!Live(slot)) return false;
    if (TupleEq()(*slot.key, t)) return true;
    i = (i + 1) & mask;
  }
}

void TupleRefSet::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.key == nullptr || slot.generation != generation_) continue;
    size_t i = TupleHash()(*slot.key) & mask;
    while (slots_[i].generation == generation_ && slots_[i].key != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = slot;
  }
}

void PlanScratch::Prepare(size_t num_slots) {
  if (slots_.size() < num_slots) slots_.resize(num_slots);
  if (col_slots_.size() < num_slots) col_slots_.resize(num_slots);
  if (slot_form_.size() < num_slots) slot_form_.resize(num_slots);
  // clear() keeps each slot's capacity: steady-state ticks reuse it.
  for (size_t i = 0; i < num_slots; ++i) {
    slots_[i].clear();
    col_slots_[i].Clear();
    slot_form_[i] = 0;
  }
  if (profile_slots_) {
    slot_ns_.assign(num_slots, 0);
    slot_rows_.assign(num_slots, 0);
    slot_vec_.assign(num_slots, 0);
  }
  arena_.Reset();
}

void PlanScratch::EnsureRowForm(uint32_t slot) {
  if (slot_form_[slot] & kRowsValid) return;
  MaterializeRows(col_slots_[slot], &slots_[slot]);
  slot_form_[slot] |= kRowsValid;
}

bool PlanScratch::EnsureColForm(uint32_t slot, const Schema& schema) {
  const uint8_t form = slot_form_[slot];
  if (form & kColsValid) return true;
  if (form & kColsFailed) return false;
  if (TransposeRows(slots_[slot], schema, &arena_, &col_slots_[slot])) {
    slot_form_[slot] = form | kColsValid;
    return true;
  }
  slot_form_[slot] = form | kColsFailed;
  return false;
}

Result<const std::vector<Tuple>*> DeltaPlan::Execute(const AppendEvent& event,
                                                     PlanScratch* scratch,
                                                     DeltaStats* stats) const {
  scratch->Prepare(num_slots());
  // The profiling branch is a single well-predicted test per instruction
  // when off; the clock reads only happen on sampled ticks.
  const bool profile = scratch->profile_slots_;
  const bool vec_on = scratch->columnar_enabled_;
  int64_t instr_start_ns = 0;
  for (size_t idx = 0; idx < instrs_.size(); ++idx) {
    const PlanInstr& instr = instrs_[idx];
    if (profile) instr_start_ns = ProfileNowNanos();
    const CaExpr& node = *instr.node;
    // Engine dispatch: instructions the compiler marked columnar try the
    // vector kernel first; a per-tick kernel refusal (transposition type
    // check, relation cell mismatch, cross-product overflow) falls through
    // to the unchanged row arm below, so a tick always completes.
    size_t produced = 0;
    const bool vec_done = vec_on && instr.columnar &&
                          ExecuteVector(idx, event, scratch, stats);
    if (vec_done) {
      scratch->slot_form_[instr.out] = PlanScratch::kColsValid;
      produced = scratch->col_slots_[instr.out].size();
    } else {
    // Row arms consume row slots; materialize any columnar inputs first.
    {
      const size_t arity = node.num_children();
      if (arity >= 1) scratch->EnsureRowForm(instr.in0);
      if (arity >= 2) scratch->EnsureRowForm(instr.in1);
    }
    std::vector<Tuple>& out = scratch->slots_[instr.out];
    switch (instr.op) {
      case PlanOp::kScan: {
        // Set semantics: identical tuples appended under one SN are one
        // row. First-seen survivors are copied once; duplicates never are.
        scratch->seen_.Clear();
        for (const auto& [id, tuples] : event.inserts) {
          if (id != node.chronicle_id()) continue;
          out.reserve(out.size() + tuples.size());
          for (const Tuple& t : tuples) {
            if (scratch->seen_.Insert(&t)) out.push_back(t);
          }
        }
        break;
      }

      case PlanOp::kSelect: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        out.reserve(in.size());
        const ScalarExpr* predicate = node.predicate();
        for (const Tuple& t : in) {
          EvalRow row{&t, event.sn, event.chronon};
          CHRONICLE_ASSIGN_OR_RETURN(bool keep, predicate->EvalBool(row));
          if (keep) out.push_back(t);
        }
        break;
      }

      case PlanOp::kProject: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        out.reserve(in.size());
        const std::vector<size_t>& projection = node.projection();
        // Projection can merge rows that differed only on dropped columns.
        // out is reserved for the whole input above, so accepted rows never
        // move and the dedupe set can reference them in place.
        scratch->seen_.Clear();
        for (const Tuple& t : in) {
          out.emplace_back();
          Tuple& projected = out.back();
          projected.reserve(projection.size());
          for (size_t idx : projection) projected.push_back(t[idx]);
          if (!scratch->seen_.Insert(&projected)) out.pop_back();
        }
        break;
      }

      case PlanOp::kSeqJoin: {
        // One tick = one SN, so the SN-equijoin of the deltas is their full
        // pairing (Theorem 4.1).
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        ReserveProduct(&out, left.size(), right.size());
        for (const Tuple& l : left) {
          for (const Tuple& r : right) EmitConcat(&out, l, r);
        }
        break;
      }

      case PlanOp::kUnion: {
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        out.reserve(left.size() + right.size());
        scratch->seen_.Clear();
        for (const Tuple& t : left) {
          if (scratch->seen_.Insert(&t)) out.push_back(t);
        }
        for (const Tuple& t : right) {
          if (scratch->seen_.Insert(&t)) out.push_back(t);
        }
        break;
      }

      case PlanOp::kDifference: {
        // Δ(E1 − E2) = ΔE1 − ΔE2 exactly (Theorem 4.1 proof).
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        scratch->removed_.Clear();
        for (const Tuple& t : right) scratch->removed_.Insert(&t);
        out.reserve(left.size());
        // Subtraction and dedupe fused into one first-seen pass — same
        // output order as subtract-then-dedupe.
        scratch->seen_.Clear();
        for (const Tuple& t : left) {
          if (!scratch->removed_.Contains(t) && scratch->seen_.Insert(&t)) {
            out.push_back(t);
          }
        }
        break;
      }

      case PlanOp::kGroupBySeq: {
        // SN is in the grouping list, so appended tuples form brand-new
        // groups: aggregate within the tick only.
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const std::vector<size_t>& group_columns = node.group_columns();
        const std::vector<AggSpec>& aggregates = node.aggregates();
        PlanScratch::GroupMap& groups = scratch->groups_;
        groups.clear();
        // Deterministic output order: stable (key, states) pointers into
        // the retained map, collected in the tick arena.
        struct GroupRef {
          const Tuple* key;
          std::vector<AggState>* states;
        };
        ArenaVector<GroupRef> group_order{
            ArenaAllocator<GroupRef>(&scratch->arena_)};
        Tuple& key = scratch->key_;
        for (const Tuple& t : in) {
          key.clear();
          for (size_t idx : group_columns) key.push_back(t[idx]);
          auto [it, inserted] = groups.try_emplace(key);
          std::vector<AggState>* states = &it->second;
          if (inserted) {
            states->reserve(aggregates.size());
            for (const AggSpec& agg : aggregates) states->push_back(agg.Init());
            group_order.push_back(GroupRef{&it->first, states});
          }
          for (size_t i = 0; i < aggregates.size(); ++i) {
            aggregates[i].Update(&(*states)[i], t);
          }
        }
        out.reserve(group_order.size());
        for (const GroupRef& group : group_order) {
          out.emplace_back();
          Tuple& row = out.back();
          row.reserve(group.key->size() + aggregates.size());
          row.insert(row.end(), group.key->begin(), group.key->end());
          for (size_t i = 0; i < aggregates.size(); ++i) {
            row.push_back(aggregates[i].Finalize((*group.states)[i]));
          }
        }
        break;
      }

      case PlanOp::kRelCross: {
        // Implicit temporal join against the current relation version.
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        ReserveProduct(&out, in.size(), rel->size());
        for (const Tuple& t : in) {
          for (const Tuple& r : rel->rows()) EmitConcat(&out, t, r);
          if (stats != nullptr) stats->relation_rows_scanned += rel->size();
        }
        break;
      }

      case PlanOp::kRelKeyJoin: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        const size_t join_column = node.join_column();
        out.reserve(in.size());
        for (const Tuple& t : in) {
          if (stats != nullptr) ++stats->relation_lookups;
          const Tuple* match = rel->FindByKey(t[join_column]);
          if (match == nullptr) continue;  // inner join: misses drop out
          EmitConcat(&out, t, *match);
        }
        break;
      }

      case PlanOp::kRelBoundedJoin: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        ReserveProduct(&out, in.size(), node.max_matches());
        for (const Tuple& t : in) {
          if (stats != nullptr) ++stats->relation_lookups;
          const std::vector<size_t>* slots =
              rel->FindBySecondary(node.relation_column(), t[node.join_column()]);
          if (slots == nullptr) continue;
          if (slots->size() > node.max_matches()) {
            // Same integrity-constraint failure (and text) as the
            // interpreter: Definition 4.2 admission was unsound.
            return Status::FailedPrecondition(
                "bounded join matched " + std::to_string(slots->size()) +
                " relation tuples, declared bound is " +
                std::to_string(node.max_matches()) + " (Definition 4.2)");
          }
          for (size_t slot : *slots) EmitConcat(&out, t, rel->rows()[slot]);
        }
        break;
      }
    }
    scratch->slot_form_[instr.out] |= PlanScratch::kRowsValid;
    produced = out.size();
    }
    Record(stats, produced);
    if (profile) {
      scratch->slot_ns_[instr.out] +=
          static_cast<uint64_t>(ProfileNowNanos() - instr_start_ns);
      scratch->slot_rows_[instr.out] += produced;
      scratch->slot_vec_[instr.out] = vec_done ? 1 : 0;
    }
  }
  scratch->EnsureRowForm(root_slot_);
  return &scratch->slots_[root_slot_];
}

bool DeltaPlan::ExecuteVector(size_t idx, const AppendEvent& event,
                              PlanScratch* scratch, DeltaStats* stats) const {
  const PlanInstr& instr = instrs_[idx];
  const CaExpr& node = *instr.node;
  const VecInstrInfo& info = *vec_infos_[idx];
  ColumnBatch& out = scratch->col_slots_[instr.out];
  Arena* arena = &scratch->arena_;
  switch (instr.op) {
    case PlanOp::kScan: {
      // Same first-seen dedupe as the row arm, then a straight transpose of
      // the survivors. A schema-mismatched cell (possible only for rows
      // that predate a schema check, i.e. never via ValidateTuple) rejects
      // the whole tick to the row engine.
      scratch->seen_.Clear();
      ArenaVector<const Tuple*> survivors{ArenaAllocator<const Tuple*>(arena)};
      for (const auto& [id, tuples] : event.inserts) {
        if (id != node.chronicle_id()) continue;
        for (const Tuple& t : tuples) {
          if (scratch->seen_.Insert(&t)) survivors.push_back(&t);
        }
      }
      const Schema& schema = node.schema();
      const size_t ncols = schema.num_fields();
      AllocateColumns(schema, survivors.size(), arena, &out);
      for (size_t r = 0; r < survivors.size(); ++r) {
        const Tuple& t = *survivors[r];
        if (t.size() != ncols) return false;
        for (size_t c = 0; c < ncols; ++c) {
          if (!WriteCell(&out.cols[c], r, t[c])) return false;
        }
      }
      return true;
    }

    case PlanOp::kSelect: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema())) {
        return false;
      }
      VecSelect(*info.pred, scratch->col_slots_[instr.in0], event.sn,
                event.chronon, arena, &out);
      return true;
    }

    case PlanOp::kProject: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema())) {
        return false;
      }
      VecProject(scratch->col_slots_[instr.in0], node.projection(),
                 &scratch->vec_, arena, &out);
      return true;
    }

    case PlanOp::kSeqJoin: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema()) ||
          !scratch->EnsureColForm(instr.in1, node.child(1)->schema())) {
        return false;
      }
      return VecSeqJoin(scratch->col_slots_[instr.in0],
                        scratch->col_slots_[instr.in1], arena, &out);
    }

    case PlanOp::kUnion: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema()) ||
          !scratch->EnsureColForm(instr.in1, node.child(1)->schema())) {
        return false;
      }
      VecUnion(scratch->col_slots_[instr.in0], scratch->col_slots_[instr.in1],
               &scratch->vec_, arena, &out);
      return true;
    }

    case PlanOp::kGroupBySeq: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema())) {
        return false;
      }
      VecGroupBy(scratch->col_slots_[instr.in0], node.group_columns(),
                 info.aggs, node.aggregates(), node.schema(), &scratch->vec_,
                 arena, &out);
      return true;
    }

    case PlanOp::kRelKeyJoin: {
      if (!scratch->EnsureColForm(instr.in0, node.child(0)->schema())) {
        return false;
      }
      const ColumnBatch& in = scratch->col_slots_[instr.in0];
      if (!VecRelKeyJoin(in, node.relation(), node.join_column(),
                         node.schema(), arena, &out)) {
        // Fallback reruns the row arm, which owns the stats in that case.
        return false;
      }
      if (stats != nullptr) stats->relation_lookups += in.size();
      return true;
    }

    default:
      return false;
  }
}

Result<const std::vector<ChronicleRow>*> DeltaPlan::ExecuteToRows(
    const AppendEvent& event, PlanScratch* scratch, DeltaStats* stats) const {
  CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* tuples,
                             Execute(event, scratch, stats));
  scratch->rows_.clear();
  scratch->rows_.reserve(tuples->size());
  // The root slot is not read again this tick, so its tuples can be moved
  // out rather than copied (the slot is cleared by the next Prepare).
  for (Tuple& t : scratch->slots_[root_slot_]) {
    scratch->rows_.push_back(ChronicleRow{event.sn, std::move(t)});
  }
  return &scratch->rows_;
}

namespace {

// printf-append helper for the EXPLAIN renderers.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void ExplainAppendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// Minimal JSON string escaping (view names). exec does not depend on the
// obs layer, so it cannot share obs::JsonEscape.
std::string ExplainEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string DeltaPlan::ToString() const {
  std::string out;
  for (const PlanInstr& instr : instrs_) {
    out += "s" + std::to_string(instr.out) + " = ";
    out += CaOpToString(instr.node->op());
    out += "(";
    const size_t arity = instr.node->num_children();
    if (arity >= 1) out += "s" + std::to_string(instr.in0);
    if (arity >= 2) out += ", s" + std::to_string(instr.in1);
    out += ")\n";
  }
  out += "root: s" + std::to_string(root_slot_) + "\n";
  return out;
}

std::string DeltaPlan::Explain(const std::vector<SlotProfile>* profile) const {
  const bool profiled =
      profile != nullptr && profile->size() == instrs_.size() &&
      !instrs_.empty() && (*profile)[root_slot_].samples > 0;

  uint64_t total_ns = 0;
  std::vector<uint64_t> cum_ns(instrs_.size(), 0);
  if (profiled) {
    for (const SlotProfile& slot : *profile) total_ns += slot.ns;
    // Instructions are post-order, so every input slot index is smaller
    // than its consumer's: one forward pass yields subtree-cumulative
    // time. A shared subexpression contributes its full subtree to EACH
    // consumer (the interpreter would have recomputed it there), so the
    // root's cumulative share can exceed 100%; self shares always sum to
    // exactly 100%.
    for (size_t i = 0; i < instrs_.size(); ++i) {
      const PlanInstr& instr = instrs_[i];
      cum_ns[i] = (*profile)[i].ns;
      const size_t arity = instr.node->num_children();
      if (arity >= 1) cum_ns[i] += cum_ns[instr.in0];
      if (arity >= 2) cum_ns[i] += cum_ns[instr.in1];
    }
  }
  const double denom = total_ns > 0 ? static_cast<double>(total_ns) : 1.0;

  std::string out;
  ExplainAppendf(&out, "plan: %zu slots, root s%u, %zu shared subexpressions\n",
                 instrs_.size(), root_slot_, shared_subexpressions_);
  if (profiled) {
    ExplainAppendf(&out, "profile: %" PRIu64 " sampled ticks, %" PRIu64
                         " ns total self time\n",
                   (*profile)[root_slot_].samples, total_ns);
  } else {
    out += "profile: no samples (enable profile_plan_slots and append)\n";
  }

  // Depth-first from the root; a slot consumed by several parents is
  // rendered in full under its first parent and as a one-line back
  // reference afterwards.
  std::vector<bool> rendered(instrs_.size(), false);
  struct Frame {
    uint32_t slot;
    size_t depth;
  };
  std::vector<Frame> stack{{root_slot_, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const PlanInstr& instr = instrs_[frame.slot];
    for (size_t d = 0; d < frame.depth; ++d) out += "  ";
    ExplainAppendf(&out, "s%u %s", frame.slot, CaOpToString(instr.node->op()));
    if (instr.columnar) out += " [columnar]";
    if (rendered[frame.slot]) {
      out += "  (shared, see above)\n";
      continue;
    }
    rendered[frame.slot] = true;
    if (profiled) {
      const SlotProfile& slot = (*profile)[frame.slot];
      ExplainAppendf(&out,
                     "  self %5.1f%%  cum %5.1f%%  rows %" PRIu64
                     "  (%" PRIu64 " ns)",
                     100.0 * static_cast<double>(slot.ns) / denom,
                     100.0 * static_cast<double>(cum_ns[frame.slot]) / denom,
                     slot.rows, slot.ns);
      if (slot.samples > 0) {
        ExplainAppendf(&out, "  %.1f rows/tick",
                       static_cast<double>(slot.rows) /
                           static_cast<double>(slot.samples));
      }
      if (instr.columnar) {
        // How often the columnar kernel actually ran (vs row fallback).
        ExplainAppendf(&out, "  vec %" PRIu64 "/%" PRIu64, slot.vec_samples,
                       slot.samples);
      }
    }
    out += "\n";
    // Push in reverse so in0 renders first.
    const size_t arity = instr.node->num_children();
    if (arity >= 2) stack.push_back({instr.in1, frame.depth + 1});
    if (arity >= 1) stack.push_back({instr.in0, frame.depth + 1});
  }
  return out;
}

std::string DeltaPlan::ExplainJson(
    const std::string& view_name,
    const std::vector<SlotProfile>* profile) const {
  const bool profiled =
      profile != nullptr && profile->size() == instrs_.size() &&
      !instrs_.empty() && (*profile)[root_slot_].samples > 0;

  uint64_t total_ns = 0;
  std::vector<uint64_t> cum_ns(instrs_.size(), 0);
  if (profiled) {
    for (const SlotProfile& slot : *profile) total_ns += slot.ns;
    for (size_t i = 0; i < instrs_.size(); ++i) {
      const PlanInstr& instr = instrs_[i];
      cum_ns[i] = (*profile)[i].ns;
      const size_t arity = instr.node->num_children();
      if (arity >= 1) cum_ns[i] += cum_ns[instr.in0];
      if (arity >= 2) cum_ns[i] += cum_ns[instr.in1];
    }
  }
  const double denom = total_ns > 0 ? static_cast<double>(total_ns) : 1.0;

  std::string out;
  ExplainAppendf(&out,
                 "{\"view\":\"%s\",\"slots\":%zu,\"root\":%u,"
                 "\"shared_subexpressions\":%zu,\"sampled_ticks\":%" PRIu64
                 ",\"total_self_ns\":%" PRIu64 ",\"plan\":[",
                 ExplainEscape(view_name).c_str(), instrs_.size(), root_slot_,
                 shared_subexpressions_,
                 profiled ? (*profile)[root_slot_].samples : uint64_t{0},
                 total_ns);
  for (size_t i = 0; i < instrs_.size(); ++i) {
    const PlanInstr& instr = instrs_[i];
    if (i > 0) out += ",";
    ExplainAppendf(&out, "{\"slot\":%zu,\"op\":\"%s\",\"inputs\":[", i,
                   CaOpToString(instr.node->op()));
    const size_t arity = instr.node->num_children();
    if (arity >= 1) ExplainAppendf(&out, "%u", instr.in0);
    if (arity >= 2) ExplainAppendf(&out, ",%u", instr.in1);
    out += "]";
    ExplainAppendf(&out, ",\"engine\":\"%s\"",
                   instr.columnar ? "columnar" : "row");
    if (profiled) {
      const SlotProfile& slot = (*profile)[i];
      ExplainAppendf(&out,
                     ",\"self_ns\":%" PRIu64 ",\"self_share\":%.4f"
                     ",\"cum_share\":%.4f,\"rows\":%" PRIu64,
                     slot.ns, static_cast<double>(slot.ns) / denom,
                     static_cast<double>(cum_ns[i]) / denom, slot.rows);
      ExplainAppendf(&out, ",\"vec_samples\":%" PRIu64, slot.vec_samples);
      if (slot.samples > 0) {
        ExplainAppendf(&out, ",\"rows_per_tick\":%.1f",
                       static_cast<double>(slot.rows) /
                           static_cast<double>(slot.samples));
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace exec
}  // namespace chronicle
