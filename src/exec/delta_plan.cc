#include "exec/delta_plan.h"

#include <limits>
#include <string>

#include "storage/relation.h"

namespace chronicle {
namespace exec {

namespace {

void Record(DeltaStats* stats, size_t rows) {
  if (stats == nullptr) return;
  stats->total_rows_produced += rows;
  if (rows > stats->max_intermediate_rows) stats->max_intermediate_rows = rows;
}

// Appends a ⧺ b to *out without a temporary.
void EmitConcat(std::vector<Tuple>* out, const Tuple& a, const Tuple& b) {
  out->emplace_back();
  Tuple& dst = out->back();
  dst.reserve(a.size() + b.size());
  dst.insert(dst.end(), a.begin(), a.end());
  dst.insert(dst.end(), b.begin(), b.end());
}

// reserve() for a*b rows, skipped when the product is unrepresentable.
void ReserveProduct(std::vector<Tuple>* out, size_t a, size_t b) {
  if (a != 0 && b > std::numeric_limits<size_t>::max() / a) return;
  out->reserve(a * b);
}

}  // namespace

bool TupleRefSet::Insert(const Tuple* t) {
  if (slots_.empty() || size_ * 2 >= slots_.size()) Grow();
  const size_t mask = slots_.size() - 1;
  size_t i = TupleHash()(*t) & mask;
  while (true) {
    Slot& slot = slots_[i];
    if (!Live(slot)) {
      slot.key = t;
      slot.generation = generation_;
      ++size_;
      return true;
    }
    if (TupleEq()(*slot.key, *t)) return false;
    i = (i + 1) & mask;
  }
}

bool TupleRefSet::Contains(const Tuple& t) const {
  if (slots_.empty()) return false;
  const size_t mask = slots_.size() - 1;
  size_t i = TupleHash()(t) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (!Live(slot)) return false;
    if (TupleEq()(*slot.key, t)) return true;
    i = (i + 1) & mask;
  }
}

void TupleRefSet::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.key == nullptr || slot.generation != generation_) continue;
    size_t i = TupleHash()(*slot.key) & mask;
    while (slots_[i].generation == generation_ && slots_[i].key != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = slot;
  }
}

void PlanScratch::Prepare(size_t num_slots) {
  if (slots_.size() < num_slots) slots_.resize(num_slots);
  // clear() keeps each slot's capacity: steady-state ticks reuse it.
  for (size_t i = 0; i < num_slots; ++i) slots_[i].clear();
  arena_.Reset();
}

Result<const std::vector<Tuple>*> DeltaPlan::Execute(const AppendEvent& event,
                                                     PlanScratch* scratch,
                                                     DeltaStats* stats) const {
  scratch->Prepare(num_slots());
  for (const PlanInstr& instr : instrs_) {
    std::vector<Tuple>& out = scratch->slots_[instr.out];
    const CaExpr& node = *instr.node;
    switch (instr.op) {
      case PlanOp::kScan: {
        // Set semantics: identical tuples appended under one SN are one
        // row. First-seen survivors are copied once; duplicates never are.
        scratch->seen_.Clear();
        for (const auto& [id, tuples] : event.inserts) {
          if (id != node.chronicle_id()) continue;
          out.reserve(out.size() + tuples.size());
          for (const Tuple& t : tuples) {
            if (scratch->seen_.Insert(&t)) out.push_back(t);
          }
        }
        break;
      }

      case PlanOp::kSelect: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        out.reserve(in.size());
        const ScalarExpr* predicate = node.predicate();
        for (const Tuple& t : in) {
          EvalRow row{&t, event.sn, event.chronon};
          CHRONICLE_ASSIGN_OR_RETURN(bool keep, predicate->EvalBool(row));
          if (keep) out.push_back(t);
        }
        break;
      }

      case PlanOp::kProject: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        out.reserve(in.size());
        const std::vector<size_t>& projection = node.projection();
        // Projection can merge rows that differed only on dropped columns.
        // out is reserved for the whole input above, so accepted rows never
        // move and the dedupe set can reference them in place.
        scratch->seen_.Clear();
        for (const Tuple& t : in) {
          out.emplace_back();
          Tuple& projected = out.back();
          projected.reserve(projection.size());
          for (size_t idx : projection) projected.push_back(t[idx]);
          if (!scratch->seen_.Insert(&projected)) out.pop_back();
        }
        break;
      }

      case PlanOp::kSeqJoin: {
        // One tick = one SN, so the SN-equijoin of the deltas is their full
        // pairing (Theorem 4.1).
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        ReserveProduct(&out, left.size(), right.size());
        for (const Tuple& l : left) {
          for (const Tuple& r : right) EmitConcat(&out, l, r);
        }
        break;
      }

      case PlanOp::kUnion: {
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        out.reserve(left.size() + right.size());
        scratch->seen_.Clear();
        for (const Tuple& t : left) {
          if (scratch->seen_.Insert(&t)) out.push_back(t);
        }
        for (const Tuple& t : right) {
          if (scratch->seen_.Insert(&t)) out.push_back(t);
        }
        break;
      }

      case PlanOp::kDifference: {
        // Δ(E1 − E2) = ΔE1 − ΔE2 exactly (Theorem 4.1 proof).
        const std::vector<Tuple>& left = scratch->slots_[instr.in0];
        const std::vector<Tuple>& right = scratch->slots_[instr.in1];
        scratch->removed_.Clear();
        for (const Tuple& t : right) scratch->removed_.Insert(&t);
        out.reserve(left.size());
        // Subtraction and dedupe fused into one first-seen pass — same
        // output order as subtract-then-dedupe.
        scratch->seen_.Clear();
        for (const Tuple& t : left) {
          if (!scratch->removed_.Contains(t) && scratch->seen_.Insert(&t)) {
            out.push_back(t);
          }
        }
        break;
      }

      case PlanOp::kGroupBySeq: {
        // SN is in the grouping list, so appended tuples form brand-new
        // groups: aggregate within the tick only.
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const std::vector<size_t>& group_columns = node.group_columns();
        const std::vector<AggSpec>& aggregates = node.aggregates();
        PlanScratch::GroupMap& groups = scratch->groups_;
        groups.clear();
        // Deterministic output order: stable (key, states) pointers into
        // the retained map, collected in the tick arena.
        struct GroupRef {
          const Tuple* key;
          std::vector<AggState>* states;
        };
        ArenaVector<GroupRef> group_order{
            ArenaAllocator<GroupRef>(&scratch->arena_)};
        Tuple& key = scratch->key_;
        for (const Tuple& t : in) {
          key.clear();
          for (size_t idx : group_columns) key.push_back(t[idx]);
          auto [it, inserted] = groups.try_emplace(key);
          std::vector<AggState>* states = &it->second;
          if (inserted) {
            states->reserve(aggregates.size());
            for (const AggSpec& agg : aggregates) states->push_back(agg.Init());
            group_order.push_back(GroupRef{&it->first, states});
          }
          for (size_t i = 0; i < aggregates.size(); ++i) {
            aggregates[i].Update(&(*states)[i], t);
          }
        }
        out.reserve(group_order.size());
        for (const GroupRef& group : group_order) {
          out.emplace_back();
          Tuple& row = out.back();
          row.reserve(group.key->size() + aggregates.size());
          row.insert(row.end(), group.key->begin(), group.key->end());
          for (size_t i = 0; i < aggregates.size(); ++i) {
            row.push_back(aggregates[i].Finalize((*group.states)[i]));
          }
        }
        break;
      }

      case PlanOp::kRelCross: {
        // Implicit temporal join against the current relation version.
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        ReserveProduct(&out, in.size(), rel->size());
        for (const Tuple& t : in) {
          for (const Tuple& r : rel->rows()) EmitConcat(&out, t, r);
          if (stats != nullptr) stats->relation_rows_scanned += rel->size();
        }
        break;
      }

      case PlanOp::kRelKeyJoin: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        const size_t join_column = node.join_column();
        out.reserve(in.size());
        for (const Tuple& t : in) {
          if (stats != nullptr) ++stats->relation_lookups;
          const Tuple* match = rel->FindByKey(t[join_column]);
          if (match == nullptr) continue;  // inner join: misses drop out
          EmitConcat(&out, t, *match);
        }
        break;
      }

      case PlanOp::kRelBoundedJoin: {
        const std::vector<Tuple>& in = scratch->slots_[instr.in0];
        const Relation* rel = node.relation();
        ReserveProduct(&out, in.size(), node.max_matches());
        for (const Tuple& t : in) {
          if (stats != nullptr) ++stats->relation_lookups;
          const std::vector<size_t>* slots =
              rel->FindBySecondary(node.relation_column(), t[node.join_column()]);
          if (slots == nullptr) continue;
          if (slots->size() > node.max_matches()) {
            // Same integrity-constraint failure (and text) as the
            // interpreter: Definition 4.2 admission was unsound.
            return Status::FailedPrecondition(
                "bounded join matched " + std::to_string(slots->size()) +
                " relation tuples, declared bound is " +
                std::to_string(node.max_matches()) + " (Definition 4.2)");
          }
          for (size_t slot : *slots) EmitConcat(&out, t, rel->rows()[slot]);
        }
        break;
      }
    }
    Record(stats, out.size());
  }
  return &scratch->slots_[root_slot_];
}

Result<const std::vector<ChronicleRow>*> DeltaPlan::ExecuteToRows(
    const AppendEvent& event, PlanScratch* scratch, DeltaStats* stats) const {
  CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* tuples,
                             Execute(event, scratch, stats));
  scratch->rows_.clear();
  scratch->rows_.reserve(tuples->size());
  // The root slot is not read again this tick, so its tuples can be moved
  // out rather than copied (the slot is cleared by the next Prepare).
  for (Tuple& t : scratch->slots_[root_slot_]) {
    scratch->rows_.push_back(ChronicleRow{event.sn, std::move(t)});
  }
  return &scratch->rows_;
}

std::string DeltaPlan::ToString() const {
  std::string out;
  for (const PlanInstr& instr : instrs_) {
    out += "s" + std::to_string(instr.out) + " = ";
    out += CaOpToString(instr.node->op());
    out += "(";
    const size_t arity = instr.node->num_children();
    if (arity >= 1) out += "s" + std::to_string(instr.in0);
    if (arity >= 2) out += ", s" + std::to_string(instr.in1);
    out += ")\n";
  }
  out += "root: s" + std::to_string(root_slot_) + "\n";
  return out;
}

}  // namespace exec
}  // namespace chronicle
