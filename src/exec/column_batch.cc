#include "exec/column_batch.h"

namespace chronicle {
namespace exec {

void AllocateColumns(const Schema& schema, size_t rows, Arena* arena,
                     ColumnBatch* out) {
  out->Clear();
  out->num_rows = rows;
  const size_t n = schema.num_fields();
  out->cols.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ColumnData& c = out->cols[i];
    c.type = schema.field(i).type;
    c.i64 = nullptr;
    c.f64 = nullptr;
    c.str = nullptr;
    c.nulls = rows ? arena->AllocateArray<uint8_t>(rows) : nullptr;
    if (rows == 0) continue;
    switch (c.type) {
      case DataType::kInt64:
        c.i64 = arena->AllocateArray<int64_t>(rows);
        break;
      case DataType::kDouble:
        c.f64 = arena->AllocateArray<double>(rows);
        break;
      case DataType::kString:
        c.str = arena->AllocateArray<const std::string*>(rows);
        break;
    }
  }
}

size_t HashRowCols(const ColumnBatch& b, const size_t* cols, size_t ncols,
                   size_t row) {
  // Same formula as types/tuple.cc TupleHashValue over the chosen columns.
  size_t seed = 0x51ed2701;
  for (size_t i = 0; i < ncols; ++i) {
    seed = HashCombine(seed, HashCell(b.cols[cols[i]], row));
  }
  return seed;
}

bool RowColsEqual(const ColumnBatch& a, size_t ra, const ColumnBatch& b,
                  size_t rb, const size_t* acols, const size_t* bcols,
                  size_t ncols) {
  for (size_t i = 0; i < ncols; ++i) {
    if (!CellsEqual(a.cols[acols[i]], ra, b.cols[bcols[i]], rb)) return false;
  }
  return true;
}

bool TransposeRows(const std::vector<Tuple>& rows, const Schema& schema,
                   Arena* arena, ColumnBatch* out) {
  AllocateColumns(schema, rows.size(), arena, out);
  const size_t ncols = out->cols.size();
  for (size_t r = 0; r < rows.size(); ++r) {
    const Tuple& t = rows[r];
    if (t.size() != ncols) return false;
    for (size_t c = 0; c < ncols; ++c) {
      if (!WriteCell(&out->cols[c], r, t[c])) return false;
    }
  }
  return true;
}

void MaterializeRows(const ColumnBatch& batch, std::vector<Tuple>* out) {
  const size_t n = batch.size();
  const size_t ncols = batch.cols.size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = batch.RowAt(i);
    out->emplace_back();
    Tuple& t = out->back();
    t.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) t.push_back(CellValue(batch.cols[c], r));
  }
}

}  // namespace exec
}  // namespace chronicle
