// Compiled delta plans: the batch-at-a-time twin of algebra/delta_engine.
//
// DeltaEngine re-walks the CaExpr tree on every tick and pays a hash-map
// memo probe per node, a fresh std::vector per operator, and a heap Status
// per unmatched join key. Theorem 4.2 says the per-append algebra is cheap;
// those constant factors are pure interpretation overhead. A DeltaPlan
// removes them structurally:
//
//   * At view-registration time the validated CaExpr DAG is lowered into a
//     flat POST-ORDER instruction list (exec/plan_compiler.h). Instructions
//     read and write numbered operand slots; a subexpression shared by
//     several parents is lowered ONCE and its slot read many times — the
//     per-tick memo hashing of DeltaCache disappears by construction.
//   * Execution is batch-at-a-time over a PlanScratch: every slot is a
//     retained std::vector<Tuple> that is cleared (never freed) between
//     ticks, dedupe reuses a retained hash set, group-by reuses a retained
//     group table, and tick-scoped transients (group output order) live in
//     a bump Arena that is Reset, not freed. A steady-state tick touches
//     the system allocator only for the payload Tuples themselves.
//   * Relation probes go through the status-free Relation::FindByKey /
//     FindBySecondary, so the inner-join miss path allocates nothing.
//
// Semantics are BYTE-IDENTICAL to DeltaEngine (same operator order, same
// first-seen dedupe, same error texts for Definition 4.2 violations);
// tests/plan_equivalence_fuzz_test.cc enforces this with randomized
// expressions, and ViewManager keeps the interpreter available as the
// MaintenanceOptions::use_compiled_plans=false fallback.
//
// Thread safety: a DeltaPlan is immutable after compilation and may be
// executed concurrently; all mutable state lives in the caller-owned
// PlanScratch, one per worker (the parallel fan-out stays TSan-clean).

#ifndef CHRONICLE_EXEC_DELTA_PLAN_H_
#define CHRONICLE_EXEC_DELTA_PLAN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aggregates/aggregate.h"
#include "algebra/ca_expr.h"
#include "algebra/delta_engine.h"
#include "common/arena.h"
#include "common/status.h"
#include "exec/column_batch.h"
#include "exec/vector_kernels.h"
#include "storage/chronicle_group.h"

namespace chronicle {
namespace exec {

// The compiled operator set: exactly the legal CA operators (Definition
// 4.1 / CA_join). Theorem 4.3 constructs are rejected at compile time.
enum class PlanOp : uint8_t {
  kScan = 0,
  kSelect,
  kProject,
  kSeqJoin,
  kUnion,
  kDifference,
  kGroupBySeq,
  kRelCross,
  kRelKeyJoin,
  kRelBoundedJoin,
};

// One instruction of the flat post-order program. Operand payloads
// (predicate, projection map, aggregate specs, relation pointer) are read
// through `node`, which the owning DeltaPlan keeps alive via its root.
struct PlanInstr {
  PlanOp op;
  uint32_t out = 0;  // slot this instruction writes (written exactly once)
  uint32_t in0 = 0;  // first input slot (unary/binary ops)
  uint32_t in1 = 0;  // second input slot (binary ops)
  const CaExpr* node = nullptr;
  // Compile-time engine decision (exec/vector_kernels.h PlanVectorInstr):
  // true when this instruction has a vector kernel and its shape
  // qualifies. Execution still falls back to the row arm per-tick when the
  // scratch disables columnar mode or a transposition type-check fails.
  bool columnar = false;
};

// Accumulated profile of one plan slot across sampled executions, the
// data behind DeltaPlan::Explain. `ns`/`rows` are sums over `samples`
// profiled ticks; shares are derived at render time.
struct SlotProfile {
  uint64_t ns = 0;       // self time (this instruction only)
  uint64_t rows = 0;     // rows the instruction produced
  uint64_t samples = 0;  // profiled ticks folded in
  // Profiled ticks this slot actually executed on the vector engine (can
  // trail `samples` on compile-time columnar slots: runtime toggle off, or
  // a per-tick transposition fallback).
  uint64_t vec_samples = 0;
};

// Open-addressing set of tuples referenced by pointer, used for the
// executor's dedupe and difference membership tests. Keys live in the
// operand slots (or the append event) for the duration of one
// instruction, so the set never copies a Tuple — the node allocation and
// second deep copy per row that std::unordered_set<Tuple> would pay.
// Clear is O(1): every slot carries the generation that wrote it, and
// bumping the generation invalidates them all, so a tiny dedupe after a
// huge one does not pay a table-sized wipe.
class TupleRefSet {
 public:
  // Invalidates every element. The table (and its capacity) is retained.
  void Clear() {
    ++generation_;
    size_ = 0;
  }

  // Inserts `t` (by reference) unless a tuple equal to *t is already
  // present; returns whether it was inserted — the dedupe "first seen?".
  bool Insert(const Tuple* t);
  // Membership by value (the difference-operator probe).
  bool Contains(const Tuple& t) const;

  // Live elements since the last Clear / table capacity (0 before the
  // first growth). Exposed for the obs layer's dedupe-pressure gauge.
  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    const Tuple* key = nullptr;
    uint64_t generation = 0;
  };

  bool Live(const Slot& slot) const {
    return slot.key != nullptr && slot.generation == generation_;
  }
  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
  uint64_t generation_ = 1;  // default Slot::generation (0) is never live
};

// Per-worker, cross-tick execution state. Everything here follows the
// clear-don't-free discipline, so its footprint converges to the largest
// tick it has served — O((u·|R|)^j) in the Theorem 4.2 parameters, never
// proportional to |C| or to any view size. One scratch serves any number
// of plans (slot storage is sized to the largest), but only one execution
// at a time: give each thread its own.
class PlanScratch {
 public:
  PlanScratch() = default;
  PlanScratch(const PlanScratch&) = delete;
  PlanScratch& operator=(const PlanScratch&) = delete;

  // Reusable-footprint accounting (bench E13 / tests / obs).
  size_t num_slots() const { return slots_.size(); }
  size_t arena_bytes_reserved() const { return arena_.bytes_reserved(); }
  // Arena bytes handed out by the most recent execution (reset on the
  // next Prepare); the obs layer's per-tick arena high-water gauge.
  size_t arena_bytes_allocated() const { return arena_.bytes_allocated(); }
  // Load factor of the dedupe set as left by the most recent execution
  // (0 until the table first grows); the obs layer's dedupe-pressure
  // gauge.
  double dedupe_load_factor() const {
    return seen_.capacity() == 0
               ? 0.0
               : static_cast<double>(seen_.size()) / seen_.capacity();
  }

  // Per-slot profiling for the NEXT execution. When on, Execute reads the
  // clock around every instruction and records self-time and rows into
  // slot_ns()/slot_rows() (indexed by slot, valid until the next Prepare).
  // The caller samples (every Nth tick), folds the arrays into its own
  // SlotProfile accumulator, and turns the flag back off.
  void set_profile_slots(bool on) { profile_slots_ = on; }
  bool profile_slots() const { return profile_slots_; }
  const std::vector<uint64_t>& slot_ns() const { return slot_ns_; }
  const std::vector<uint64_t>& slot_rows() const { return slot_rows_; }
  // 1 per slot that executed on the vector engine in the last profiled
  // execution (0 = row engine). Folded into SlotProfile::vec_samples.
  const std::vector<uint8_t>& slot_vec() const { return slot_vec_; }

  // Runtime toggle for instructions compiled with a vector kernel
  // (MaintenanceOptions::use_columnar_kernels / shell \engine). Pure
  // executor state: flipping it never requires recompiling plans, and the
  // two modes are byte-identical by construction.
  void set_columnar_enabled(bool on) { columnar_enabled_ = on; }
  bool columnar_enabled() const { return columnar_enabled_; }

 private:
  friend class DeltaPlan;

  using GroupMap =
      std::unordered_map<Tuple, std::vector<AggState>, TupleHash, TupleEq>;

  // Clears (without freeing) the first `num_slots` slot buffers and resets
  // the arena, growing the slot array if this plan is the largest yet.
  void Prepare(size_t num_slots);

  // Engine-boundary conversions (executor only). EnsureRowForm
  // materializes a columnar slot into its row buffer; EnsureColForm
  // transposes a row slot into columns, returning false (and latching
  // kColsFailed) when a cell fails the schema type check. Both are no-ops
  // when the requested form is already valid, so a slot shared by several
  // consumers converts at most once per tick.
  void EnsureRowForm(uint32_t slot);
  bool EnsureColForm(uint32_t slot, const Schema& schema);

  // Which representations of a slot are valid this tick. A slot can hold
  // both (transposed or materialized on demand at an engine boundary);
  // kColsFailed latches a transposition type-check failure so shared
  // consumers do not retry it.
  enum SlotForm : uint8_t {
    kRowsValid = 1,
    kColsValid = 2,
    kColsFailed = 4,
  };

  std::vector<std::vector<Tuple>> slots_;
  std::vector<ColumnBatch> col_slots_;  // columnar twin of slots_
  std::vector<uint8_t> slot_form_;      // SlotForm bits per slot
  TupleRefSet seen_;     // dedupe scratch (table retained across ticks)
  TupleRefSet removed_;  // difference scratch
  GroupMap groups_;    // group-by scratch
  Tuple key_;          // reused group-key probe (capacity survives clear())
  VecScratch vec_;     // vectorized dedupe/group tables (retained)
  Arena arena_;        // tick-scoped transients (group output order,
                       // column storage)
  std::vector<ChronicleRow> rows_;  // retained final-output buffer
  bool columnar_enabled_ = true;    // run compiled-columnar instructions
  bool profile_slots_ = false;      // time the next execution's slots
  std::vector<uint64_t> slot_ns_;   // self ns per slot (profiled ticks)
  std::vector<uint64_t> slot_rows_;  // rows per slot (profiled ticks)
  std::vector<uint8_t> slot_vec_;    // vector-engine flag per slot
};

class DeltaPlan {
 public:
  // Executes the plan for one append event. Returns the root delta as a
  // pointer into `scratch` — valid until the scratch's next execution.
  // All rows conceptually carry event.sn (ExecuteToRows stamps it).
  // `stats` may be null; counters match the interpreter's exactly.
  Result<const std::vector<Tuple>*> Execute(const AppendEvent& event,
                                            PlanScratch* scratch,
                                            DeltaStats* stats) const;

  // Execute + SN stamping into the scratch's retained row buffer: the
  // drop-in replacement for DeltaEngine::ComputeDelta on the maintenance
  // path. The returned pointer is valid until the scratch's next use.
  Result<const std::vector<ChronicleRow>*> ExecuteToRows(
      const AppendEvent& event, PlanScratch* scratch,
      DeltaStats* stats) const;

  // --- inspection (compiler tests, EXPLAIN-style diagnostics) ---
  const std::vector<PlanInstr>& instructions() const { return instrs_; }
  // One slot per instruction: slot i is written by instruction i.
  size_t num_slots() const { return instrs_.size(); }
  uint32_t root_slot() const { return root_slot_; }
  // DAG edges that were resolved to an already-compiled slot — each one is
  // a whole subtree the interpreter would have re-memoized every tick.
  size_t shared_subexpressions() const { return shared_subexpressions_; }
  const CaExprPtr& root() const { return root_; }
  // Instructions the compiler routed to the vector engine.
  size_t vectorized_instructions() const {
    size_t n = 0;
    for (const PlanInstr& instr : instrs_) n += instr.columnar ? 1 : 0;
    return n;
  }

  // One instruction per line: "s3 = Union(s1, s2)".
  std::string ToString() const;

  // EXPLAIN tree, rendered from the root slot down. `profile` (one entry
  // per slot, from the sampled per-slot timings) may be null or empty, in
  // which case only the plan structure is shown; otherwise every line
  // carries the slot's self-time share (all self shares sum to 100%),
  // cumulative share (self + subtree), and rows per sampled tick.
  std::string Explain(const std::vector<SlotProfile>* profile) const;

  // Same data as a flat JSON document for /views/<name>/explain.json:
  // {"view":…,"slots":N,"root":N,"sampled_ticks":N,"plan":[{…}]}.
  // Guaranteed to pass obs::ValidateJson.
  std::string ExplainJson(const std::string& view_name,
                          const std::vector<SlotProfile>* profile) const;

 private:
  friend class PlanCompiler;
  DeltaPlan() = default;

  // Runs instruction `idx` on the vector engine. False = fall back to the
  // row arm for this tick (transposition type-check failed, or the seq
  // join product overflowed).
  bool ExecuteVector(size_t idx, const AppendEvent& event,
                     PlanScratch* scratch, DeltaStats* stats) const;

  CaExprPtr root_;  // keeps every node (and its payloads) alive
  std::vector<PlanInstr> instrs_;
  // Parallel to instrs_: the vector-engine payload of columnar
  // instructions (nullptr for row instructions).
  std::vector<std::unique_ptr<VecInstrInfo>> vec_infos_;
  uint32_t root_slot_ = 0;
  size_t shared_subexpressions_ = 0;
};

using DeltaPlanPtr = std::shared_ptr<const DeltaPlan>;

}  // namespace exec
}  // namespace chronicle

#endif  // CHRONICLE_EXEC_DELTA_PLAN_H_
