// Lowering of chronicle-algebra DAGs into flat DeltaPlans.
//
// Compilation happens once, at view-registration time — never on the
// append path. The compiler walks the shared-const CaExpr DAG in post
// order, assigns each DISTINCT node one output slot, and emits one
// instruction per distinct node: a subexpression reachable through many
// parents (the same scan under every branch of a union fan, a guarded
// selection shared by two views' plans) is compiled once and referenced by
// slot thereafter. That is the whole DeltaCache, paid at compile time.
//
// The four Theorem 4.3 constructs are rejected with the interpreter's
// exact diagnostic, so callers see one error surface regardless of
// execution mode.

#ifndef CHRONICLE_EXEC_PLAN_COMPILER_H_
#define CHRONICLE_EXEC_PLAN_COMPILER_H_

#include "algebra/ca_expr.h"
#include "common/status.h"
#include "exec/delta_plan.h"

namespace chronicle {
namespace exec {

class PlanCompiler {
 public:
  // Compiles `root` (which the plan retains, keeping the DAG alive) into
  // an executable DeltaPlan. Fails with InvalidArgument on any operator
  // outside chronicle algebra (Theorem 4.3).
  static Result<DeltaPlanPtr> Compile(CaExprPtr root);
};

// Convenience wrapper.
inline Result<DeltaPlanPtr> CompileDeltaPlan(CaExprPtr root) {
  return PlanCompiler::Compile(std::move(root));
}

}  // namespace exec
}  // namespace chronicle

#endif  // CHRONICLE_EXEC_PLAN_COMPILER_H_
