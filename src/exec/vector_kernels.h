// Vectorized kernels for the compiled delta executor.
//
// Each kernel is the column-loop twin of one PlanOp arm in
// exec/delta_plan.cc and MUST reproduce it byte-for-byte: same first-seen
// dedupe order, same group discovery order, same floating-point
// accumulation order (pass-2 aggregate loops walk rows in input order, so
// per-group double sums fold in exactly the row engine's order), same
// DeltaStats counters. tests/plan_equivalence_fuzz_test.cc triangulates
// interpreter vs row-compiled vs columnar on random plans.
//
// Engine decision: PlanCompiler calls PlanVectorInstr once per instruction
// at view-registration time. It returns a VecInstrInfo when the operator
// has a vector kernel AND the instruction's shape qualifies (predicate in
// the vectorizable subset, aggregates all in {COUNT,SUM,MIN,MAX}, join key
// non-string); otherwise nullptr and the instruction stays on the row
// engine. The decision is static; the executor additionally falls back
// per-tick when a transposition type-check fails (see column_batch.h).
//
// Ops that stay row-only by design:
//   kDifference     — two membership probes per row against pointer-keyed
//                     sets; no dense loop to win.
//   kRelCross       — output is a cross product of row tuples; the copy
//                     dominates either way.
//   kRelBoundedJoin — needs the Definition 4.2 integrity-error path, and
//                     secondary-index probes return row vectors.

#ifndef CHRONICLE_EXEC_VECTOR_KERNELS_H_
#define CHRONICLE_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/ca_expr.h"
#include "common/arena.h"
#include "exec/column_batch.h"

namespace chronicle {
namespace exec {

// A selection predicate compiled to column form. Supported shape: an
// AND/OR/NOT tree over comparisons whose operands are bound columns,
// non-null literals, $sn, or $chronon, with numeric-vs-numeric or
// string-vs-string operand classes. Anything else (arithmetic, CASE,
// truthiness of a bare column, mixed string/numeric comparison) keeps the
// instruction on the row engine. Within this subset evaluation can never
// error, which is what lets AND/OR drop short-circuiting for elementwise
// flag combines.
struct VecPred {
  enum class Kind : uint8_t { kAnd, kOr, kNot, kCmp, kConstFalse };
  enum class Src : uint8_t { kCol, kLit, kSn, kChronon };

  struct Operand {
    Src src = Src::kLit;
    size_t col = 0;                        // kCol: bound column index
    DataType type = DataType::kInt64;      // operand's static type
    int64_t i64 = 0;                       // kLit INT64 payload
    double f64 = 0.0;                      // kLit DOUBLE payload
    std::string str;                       // kLit STRING payload
  };

  Kind kind = Kind::kConstFalse;
  CompareOp op = CompareOp::kEq;  // kCmp
  Operand lhs, rhs;               // kCmp
  std::unique_ptr<VecPred> a, b;  // kAnd/kOr (both), kNot (a only)
};

// One aggregate of a vectorized group-by, pre-resolved at compile time so
// the pass-2 loops are monomorphic.
struct VecAgg {
  AggKind kind = AggKind::kCount;
  size_t input = 0;                         // bound input column (not kCount)
  DataType input_type = DataType::kInt64;   // child-schema type of `input`
};

// Per-instruction vector-engine payload, owned by the DeltaPlan alongside
// the instruction list.
struct VecInstrInfo {
  std::unique_ptr<VecPred> pred;  // kSelect
  std::vector<VecAgg> aggs;       // kGroupBySeq
};

// Compile-time engine decision (see file comment). Never fails — a shape
// without a kernel simply returns nullptr.
std::unique_ptr<VecInstrInfo> PlanVectorInstr(const CaExpr& node);

// Compiles `e` into a VecPred against `schema`; nullptr when the predicate
// falls outside the vectorizable subset. Exposed for tests.
std::unique_ptr<VecPred> CompileVecPred(const ScalarExpr& e,
                                        const Schema& schema);

// Retained hash-table scratch for the vectorized dedupe and group probes:
// a generation-stamped open-addressing index mapping row hashes to a
// uint32 payload (an accepted output row, or a group ordinal). Clear is
// O(1) and capacity survives across ticks, mirroring TupleRefSet.
class VecScratch {
 public:
  void Clear() {
    ++generation_;
    size_ = 0;
  }
  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  // Probes for a row with hash `hash` equal under `eq(payload)`; returns
  // the existing payload, or inserts `payload` and returns kNotFound.
  // `eq` is called only on same-hash candidates.
  static constexpr uint32_t kNotFound = 0xffffffffu;
  template <typename EqFn>
  uint32_t FindOrInsert(size_t hash, uint32_t payload, EqFn eq) {
    if (slots_.empty() || size_ * 2 >= slots_.size()) Grow();
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.generation != generation_) {
        slot.generation = generation_;
        slot.hash = hash;
        slot.payload = payload;
        ++size_;
        return kNotFound;
      }
      if (slot.hash == hash && eq(slot.payload)) return slot.payload;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    uint64_t generation = 0;
    size_t hash = 0;
    uint32_t payload = 0;
  };
  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
  uint64_t generation_ = 1;  // default Slot::generation (0) is never live
};

// --- kernels (all storage from `arena`; outputs valid for one tick) ---

// kSelect: evaluates `pred` over the input's physical rows and filters the
// logical view into a new selection vector. Zero data movement.
void VecSelect(const VecPred& pred, const ColumnBatch& in, SeqNum sn,
               int64_t chronon, Arena* arena, ColumnBatch* out);

// kProject: remaps column descriptors and dedupes the logical rows over
// the projected columns (first-seen order). Zero data movement.
void VecProject(const ColumnBatch& in, const std::vector<size_t>& projection,
                VecScratch* vs, Arena* arena, ColumnBatch* out);

// kUnion: dense left-then-right copy with first-seen dedupe against the
// accepted output rows. Operand schemas are identical by construction.
void VecUnion(const ColumnBatch& left, const ColumnBatch& right,
              VecScratch* vs, Arena* arena, ColumnBatch* out);

// kSeqJoin: dense cross product, left-major (matching the row engine's
// nested loops). False if the product overflows size_t (row fallback —
// which will then OOM-or-crawl exactly as the row engine always has).
bool VecSeqJoin(const ColumnBatch& left, const ColumnBatch& right,
                Arena* arena, ColumnBatch* out);

// kGroupBySeq: two passes — group discovery in row order (group ordinals
// are first-seen order), then one monomorphic update loop per aggregate.
// `specs` parallels `aggs` (the AggSpec supplies output naming/typing).
void VecGroupBy(const ColumnBatch& in, const std::vector<size_t>& group_cols,
                const std::vector<VecAgg>& aggs,
                const std::vector<AggSpec>& specs, const Schema& out_schema,
                VecScratch* vs, Arena* arena, ColumnBatch* out);

// kRelKeyJoin: probes the relation's key index per logical row and emits
// the dense inner-join result (left columns gathered, relation columns
// extracted). False when a relation cell fails the schema type check —
// the caller reruns the row kernel, which also owns the stats counters in
// that case. On success the caller adds in.size() relation lookups.
bool VecRelKeyJoin(const ColumnBatch& in, const Relation* rel,
                   size_t join_column, const Schema& out_schema, Arena* arena,
                   ColumnBatch* out);

}  // namespace exec
}  // namespace chronicle

#endif  // CHRONICLE_EXEC_VECTOR_KERNELS_H_
