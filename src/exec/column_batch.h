// Columnar batch representation for the vectorized delta executor.
//
// A ColumnBatch is the column-major twin of a slot's std::vector<Tuple>:
// one typed array per schema field (int64 / double / string-ref) plus a
// per-column null bitmap and an optional selection vector. All storage is
// arena-backed and tick-scoped — batches are rebuilt from the PlanScratch
// arena on every append tick and never own memory, so the clear-don't-free
// discipline of the row executor carries over unchanged.
//
// Why columns: the row representation pays a std::variant tag dispatch per
// FIELD access (types/value.h), which dominates the per-append constant
// the paper's Theorem 4.2 bounds. With one dense array per column, the hot
// kernels (filter, hash probe, grouped SUM/COUNT/MIN/MAX) become
// monomorphic loops over int64_t*/double* that the compiler can
// auto-vectorize.
//
// String columns hold POINTERS to strings owned elsewhere (append-event
// tuples, relation rows, or materialized row slots), never copies; a
// batch is only valid while its tick's sources are alive.
//
// Transposition boundaries:
//   * rows -> columns at kScan (and at any row-produced slot consumed by a
//     vector kernel). Transposition TYPE-CHECKS every cell against the
//     slot schema — appends and relation inserts are schema-validated
//     (types/tuple.h ValidateTuple), so this never fails in practice, but
//     a mismatch makes the executor fall back to the row kernel rather
//     than trust the column type.
//   * columns -> rows at the root slot (the view writer consumes
//     ChronicleRow) and at any columnar slot consumed by a row-only op.
//
// The per-cell hash/equality helpers here MUST stay consistent with
// Value::Hash / Value::Compare (src/types/value.h): the vectorized dedupe
// and group tables must accept exactly the row pairs the row engine's
// TupleRefSet accepts, or the engines would diverge byte-for-byte.

#ifndef CHRONICLE_EXEC_COLUMN_BATCH_H_
#define CHRONICLE_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace chronicle {
namespace exec {

// One typed column. Only the array matching `type` is populated; `nulls`
// is always allocated (1 = NULL, data slot zeroed). Arrays live in the
// tick arena.
struct ColumnData {
  DataType type = DataType::kInt64;
  int64_t* i64 = nullptr;
  double* f64 = nullptr;
  const std::string** str = nullptr;
  uint8_t* nulls = nullptr;
};

// A batch of rows in column-major form. `sel`, when non-null, is the
// logical view: size() logical rows indexing into the physical arrays.
// Filter-like kernels produce a new selection without touching data;
// materializing kernels (union, join, group-by) produce dense batches
// (sel == nullptr).
struct ColumnBatch {
  size_t num_rows = 0;            // physical rows in the column arrays
  const uint32_t* sel = nullptr;  // selection vector; nullptr = identity
  size_t sel_size = 0;
  std::vector<ColumnData> cols;   // descriptor storage retained across ticks

  size_t size() const { return sel != nullptr ? sel_size : num_rows; }
  uint32_t RowAt(size_t i) const {
    return sel != nullptr ? sel[i] : static_cast<uint32_t>(i);
  }

  // Clears to an empty batch, keeping the descriptor vector's capacity.
  void Clear() {
    num_rows = 0;
    sel = nullptr;
    sel_size = 0;
    cols.clear();
  }
};

// Allocates dense column storage for `rows` rows shaped by `schema`.
// Cell contents are uninitialized; every writer must set the null flag
// and datum of each row it claims.
void AllocateColumns(const Schema& schema, size_t rows, Arena* arena,
                     ColumnBatch* out);

// --- single-cell accessors (inline: these sit inside kernel loops) ---

inline void WriteNull(ColumnData* c, size_t row) {
  c->nulls[row] = 1;
  switch (c->type) {
    case DataType::kInt64:
      c->i64[row] = 0;
      break;
    case DataType::kDouble:
      c->f64[row] = 0.0;
      break;
    case DataType::kString:
      c->str[row] = nullptr;
      break;
  }
}

// Writes `v` into physical `row`; false when a non-null value's runtime
// type does not match the column (the transposition fallback trigger).
inline bool WriteCell(ColumnData* c, size_t row, const Value& v) {
  if (v.is_null()) {
    WriteNull(c, row);
    return true;
  }
  switch (c->type) {
    case DataType::kInt64:
      if (!v.is_int64()) return false;
      c->i64[row] = v.int64();
      break;
    case DataType::kDouble:
      if (!v.is_double()) return false;
      c->f64[row] = v.dbl();
      break;
    case DataType::kString:
      if (!v.is_string()) return false;
      c->str[row] = &v.str();
      break;
  }
  c->nulls[row] = 0;
  return true;
}

// Copies the cell at `from_row` of `src` into `to_row` of `dst` (columns
// must share a type — operands of union/join always do by construction).
inline void CopyCell(const ColumnData& src, size_t from_row, ColumnData* dst,
                     size_t to_row) {
  const uint8_t n = src.nulls[from_row];
  dst->nulls[to_row] = n;
  switch (src.type) {
    case DataType::kInt64:
      dst->i64[to_row] = src.i64[from_row];
      break;
    case DataType::kDouble:
      dst->f64[to_row] = src.f64[from_row];
      break;
    case DataType::kString:
      dst->str[to_row] = n ? nullptr : src.str[from_row];
      break;
  }
}

// Rebuilds the cell as a Value (the columns -> rows boundary; strings are
// deep-copied exactly like the row kernels copy tuples).
inline Value CellValue(const ColumnData& c, size_t row) {
  if (c.nulls[row]) return Value();
  switch (c.type) {
    case DataType::kInt64:
      return Value(c.i64[row]);
    case DataType::kDouble:
      return Value(c.f64[row]);
    case DataType::kString:
      return Value(*c.str[row]);
  }
  return Value();
}

// Value::Hash-identical per-cell hash (see the consistency note atop this
// file).
inline size_t HashCell(const ColumnData& c, size_t row) {
  if (c.nulls[row]) return HashNullValue();
  switch (c.type) {
    case DataType::kInt64:
      return HashInt64Value(c.i64[row]);
    case DataType::kDouble:
      return HashDoubleValue(c.f64[row]);
    case DataType::kString:
      return HashStringValue(*c.str[row]);
  }
  return HashNullValue();
}

// Value::Compare==0 equality for same-typed cells. NULL equals NULL only.
// The double arm uses the Compare formula (!(a<b) && !(a>b)), not a==b,
// so NaN behaves exactly as it does in the row engine's dedupe.
inline bool CellsEqual(const ColumnData& a, size_t ra, const ColumnData& b,
                       size_t rb) {
  const uint8_t an = a.nulls[ra];
  const uint8_t bn = b.nulls[rb];
  if (an || bn) return an && bn;
  switch (a.type) {
    case DataType::kInt64:
      return a.i64[ra] == b.i64[rb];
    case DataType::kDouble: {
      const double x = a.f64[ra];
      const double y = b.f64[rb];
      return !(x < y) && !(x > y);
    }
    case DataType::kString:
      return *a.str[ra] == *b.str[rb];
  }
  return false;
}

// TupleHashValue-identical hash of physical `row` over `cols[0..ncols)`.
size_t HashRowCols(const ColumnBatch& b, const size_t* cols, size_t ncols,
                   size_t row);

// Row equality over column index lists (acols[i] pairs with bcols[i]).
// `a` and `b` may be the same batch (project dedupe) or different batches
// with identical schemas (union dedupe against the output).
bool RowColsEqual(const ColumnBatch& a, size_t ra, const ColumnBatch& b,
                  size_t rb, const size_t* acols, const size_t* bcols,
                  size_t ncols);

// rows -> columns. False when any cell fails the schema type check; the
// batch contents are unspecified then and the caller must use the row
// kernel.
bool TransposeRows(const std::vector<Tuple>& rows, const Schema& schema,
                   Arena* arena, ColumnBatch* out);

// columns -> rows: appends the batch's logical rows to `*out` in order.
void MaterializeRows(const ColumnBatch& batch, std::vector<Tuple>* out);

}  // namespace exec
}  // namespace chronicle

#endif  // CHRONICLE_EXEC_COLUMN_BATCH_H_
