#include "exec/plan_compiler.h"

#include <string>
#include <unordered_map>

namespace chronicle {
namespace exec {

namespace {

Result<PlanOp> LowerOp(const CaExpr& node) {
  switch (node.op()) {
    case CaOp::kScan:
      return PlanOp::kScan;
    case CaOp::kSelect:
      return PlanOp::kSelect;
    case CaOp::kProject:
      return PlanOp::kProject;
    case CaOp::kSeqJoin:
      return PlanOp::kSeqJoin;
    case CaOp::kUnion:
      return PlanOp::kUnion;
    case CaOp::kDifference:
      return PlanOp::kDifference;
    case CaOp::kGroupBySeq:
      return PlanOp::kGroupBySeq;
    case CaOp::kRelCross:
      return PlanOp::kRelCross;
    case CaOp::kRelKeyJoin:
      return PlanOp::kRelKeyJoin;
    case CaOp::kRelBoundedJoin:
      return PlanOp::kRelBoundedJoin;
    case CaOp::kProjectDropSn:
    case CaOp::kGroupByNoSn:
    case CaOp::kChronicleCross:
    case CaOp::kSeqThetaJoin:
      // Mirror algebra/delta_engine.cc verbatim: one diagnostic surface.
      return Status::InvalidArgument(
          std::string("operator ") + CaOpToString(node.op()) +
          " is outside chronicle algebra and cannot be maintained "
          "incrementally without chronicle access (Theorem 4.3)");
  }
  return Status::Internal("unreachable CaOp");
}

// Recursive lowering: returns the slot holding `node`'s delta, emitting
// instructions for unseen nodes in post order.
Result<uint32_t> Lower(const CaExpr& node,
                       std::unordered_map<const CaExpr*, uint32_t>* slots,
                       std::vector<PlanInstr>* instrs, size_t* shared) {
  auto memo = slots->find(&node);
  if (memo != slots->end()) {
    ++*shared;  // DAG edge resolved without re-lowering the subtree
    return memo->second;
  }
  CHRONICLE_ASSIGN_OR_RETURN(PlanOp op, LowerOp(node));
  PlanInstr instr;
  instr.op = op;
  instr.node = &node;
  if (node.num_children() >= 1) {
    CHRONICLE_ASSIGN_OR_RETURN(instr.in0,
                               Lower(*node.child(0), slots, instrs, shared));
  }
  if (node.num_children() >= 2) {
    CHRONICLE_ASSIGN_OR_RETURN(instr.in1,
                               Lower(*node.child(1), slots, instrs, shared));
  }
  const uint32_t slot = static_cast<uint32_t>(instrs->size());
  instr.out = slot;
  instrs->push_back(instr);
  slots->emplace(&node, slot);
  return slot;
}

}  // namespace

Result<DeltaPlanPtr> PlanCompiler::Compile(CaExprPtr root) {
  if (root == nullptr) {
    return Status::InvalidArgument("cannot compile a null expression");
  }
  auto plan = std::shared_ptr<DeltaPlan>(new DeltaPlan());
  plan->root_ = std::move(root);
  std::unordered_map<const CaExpr*, uint32_t> slots;
  CHRONICLE_ASSIGN_OR_RETURN(
      plan->root_slot_,
      Lower(*plan->root_, &slots, &plan->instrs_,
            &plan->shared_subexpressions_));
  // Engine decision pass: each instruction that has a vector kernel and
  // whose shape qualifies (see exec/vector_kernels.h) gets its columnar
  // payload compiled once here; the rest stay on the row engine.
  plan->vec_infos_.resize(plan->instrs_.size());
  for (size_t i = 0; i < plan->instrs_.size(); ++i) {
    plan->vec_infos_[i] = PlanVectorInstr(*plan->instrs_[i].node);
    plan->instrs_[i].columnar = plan->vec_infos_[i] != nullptr;
  }
  return DeltaPlanPtr(plan);
}

}  // namespace exec
}  // namespace chronicle
