#include "exec/vector_kernels.h"

#include <cstring>
#include <limits>

#include "storage/relation.h"

namespace chronicle {
namespace exec {

namespace {

template <typename T>
T* ZeroedArray(Arena* arena, size_t n) {
  if (n == 0) return nullptr;
  T* a = arena->AllocateArray<T>(n);
  std::memset(a, 0, n * sizeof(T));
  return a;
}

// Allocates dense output columns typed like `templ` (used where the output
// schema is the operand schema or a concatenation of operand schemas, so
// no Schema object is at hand).
void AllocateColumnsLike(const std::vector<const ColumnData*>& templ,
                         size_t rows, Arena* arena, ColumnBatch* out) {
  out->Clear();
  out->num_rows = rows;
  out->cols.resize(templ.size());
  for (size_t i = 0; i < templ.size(); ++i) {
    ColumnData& c = out->cols[i];
    c.type = templ[i]->type;
    c.i64 = nullptr;
    c.f64 = nullptr;
    c.str = nullptr;
    c.nulls = rows ? arena->AllocateArray<uint8_t>(rows) : nullptr;
    if (rows == 0) continue;
    switch (c.type) {
      case DataType::kInt64:
        c.i64 = arena->AllocateArray<int64_t>(rows);
        break;
      case DataType::kDouble:
        c.f64 = arena->AllocateArray<double>(rows);
        break;
      case DataType::kString:
        c.str = arena->AllocateArray<const std::string*>(rows);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Predicate compilation
// ---------------------------------------------------------------------------

// Classifies one comparison operand. Returns false for unsupported kinds;
// a NULL literal sets *is_null_literal instead (the comparison is then a
// constant false, exactly like the row engine's NULL-comparison rule).
bool ClassifyOperand(const ScalarExpr& e, const Schema& schema,
                     VecPred::Operand* out, bool* is_null_literal) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      if (!e.bound()) return false;
      out->src = VecPred::Src::kCol;
      out->col = e.bound_index();
      out->type = schema.field(out->col).type;
      return true;
    case ExprKind::kSeqNum:
      out->src = VecPred::Src::kSn;
      out->type = DataType::kInt64;
      return true;
    case ExprKind::kChronon:
      out->src = VecPred::Src::kChronon;
      out->type = DataType::kInt64;
      return true;
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      if (v.is_null()) {
        *is_null_literal = true;
        return true;
      }
      out->src = VecPred::Src::kLit;
      out->type = v.type();
      switch (out->type) {
        case DataType::kInt64:
          out->i64 = v.int64();
          break;
        case DataType::kDouble:
          out->f64 = v.dbl();
          break;
        case DataType::kString:
          out->str = v.str();
          break;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::unique_ptr<VecPred> CompileVecPred(const ScalarExpr& e,
                                        const Schema& schema) {
  switch (e.kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      auto a = CompileVecPred(e.child(0), schema);
      auto b = CompileVecPred(e.child(1), schema);
      if (a == nullptr || b == nullptr) return nullptr;
      auto node = std::make_unique<VecPred>();
      node->kind = e.kind() == ExprKind::kAnd ? VecPred::Kind::kAnd
                                              : VecPred::Kind::kOr;
      node->a = std::move(a);
      node->b = std::move(b);
      return node;
    }
    case ExprKind::kNot: {
      auto a = CompileVecPred(e.child(0), schema);
      if (a == nullptr) return nullptr;
      auto node = std::make_unique<VecPred>();
      node->kind = VecPred::Kind::kNot;
      node->a = std::move(a);
      return node;
    }
    case ExprKind::kCompare: {
      auto node = std::make_unique<VecPred>();
      bool null_lit = false;
      if (!ClassifyOperand(e.child(0), schema, &node->lhs, &null_lit) ||
          !ClassifyOperand(e.child(1), schema, &node->rhs, &null_lit)) {
        return nullptr;
      }
      if (null_lit) {
        node->kind = VecPred::Kind::kConstFalse;
        return node;
      }
      // Mixed string/numeric comparisons fall back to the row engine (the
      // type-tag ordering arm of Value::Compare); same-class pairs are the
      // monomorphic loops this engine exists for.
      const bool lstr = node->lhs.type == DataType::kString;
      const bool rstr = node->rhs.type == DataType::kString;
      if (lstr != rstr) return nullptr;
      node->kind = VecPred::Kind::kCmp;
      node->op = e.compare_op();
      return node;
    }
    default:
      return nullptr;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Predicate evaluation
// ---------------------------------------------------------------------------

// A CompareOp as a 3-bit acceptance mask indexed by the three-way compare
// outcome c in {less=0, equal=1, greater=2}: keep iff (mask >> c) & 1.
// Turning the operator into data keeps every comparison loop branch-free.
uint32_t OpMask(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return 0b010;
    case CompareOp::kNe:
      return 0b101;
    case CompareOp::kLt:
      return 0b001;
    case CompareOp::kLe:
      return 0b011;
    case CompareOp::kGt:
      return 0b100;
    case CompareOp::kGe:
      return 0b110;
  }
  return 0;
}

// Mirror for operand swap: a OP b == b mirror(OP) a.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

// The column widened to double (identity for double columns). Null slots
// hold 0 and are masked by the caller's null check.
const double* WidenColumn(const ColumnData& c, size_t n, Arena* arena) {
  if (c.type == DataType::kDouble) return c.f64;
  if (n == 0) return nullptr;
  double* d = arena->AllocateArray<double>(n);
  const int64_t* src = c.i64;
  for (size_t r = 0; r < n; ++r) d[r] = static_cast<double>(src[r]);
  return d;
}

// Constant operand payload (literal, or the tick's $sn/$chronon).
struct ConstOperand {
  bool is_string = false;
  bool is_int = false;
  int64_t i64 = 0;
  double f64 = 0.0;
  const std::string* str = nullptr;
};

ConstOperand ResolveConst(const VecPred::Operand& o, SeqNum sn,
                          int64_t chronon) {
  ConstOperand c;
  switch (o.src) {
    case VecPred::Src::kSn:
      c.is_int = true;
      c.i64 = static_cast<int64_t>(sn);
      break;
    case VecPred::Src::kChronon:
      c.is_int = true;
      c.i64 = chronon;
      break;
    case VecPred::Src::kLit:
      switch (o.type) {
        case DataType::kInt64:
          c.is_int = true;
          c.i64 = o.i64;
          break;
        case DataType::kDouble:
          c.f64 = o.f64;
          break;
        case DataType::kString:
          c.is_string = true;
          c.str = &o.str;
          break;
      }
      break;
    case VecPred::Src::kCol:
      break;  // not a constant; unreachable by construction
  }
  if (c.is_int) c.f64 = static_cast<double>(c.i64);
  return c;
}

void EvalPred(const VecPred& p, const ColumnBatch& in, SeqNum sn,
              int64_t chronon, uint8_t* flags, Arena* arena);

void EvalCmp(const VecPred& p, const ColumnBatch& in, SeqNum sn,
             int64_t chronon, uint8_t* flags, Arena* arena) {
  const size_t n = in.num_rows;
  const bool lcol = p.lhs.src == VecPred::Src::kCol;
  const bool rcol = p.rhs.src == VecPred::Src::kCol;

  if (lcol && rcol) {
    const ColumnData& a = in.cols[p.lhs.col];
    const ColumnData& b = in.cols[p.rhs.col];
    const uint32_t mask = OpMask(p.op);
    if (a.type == DataType::kString) {
      for (size_t r = 0; r < n; ++r) {
        if (a.nulls[r] | b.nulls[r]) {
          flags[r] = 0;
          continue;
        }
        const int cmp = a.str[r]->compare(*b.str[r]);
        const unsigned c = cmp < 0 ? 0u : (cmp == 0 ? 1u : 2u);
        flags[r] = static_cast<uint8_t>((mask >> c) & 1u);
      }
    } else if (a.type == DataType::kInt64 && b.type == DataType::kInt64) {
      const int64_t* x = a.i64;
      const int64_t* y = b.i64;
      for (size_t r = 0; r < n; ++r) {
        const unsigned c = x[r] < y[r] ? 0u : (x[r] > y[r] ? 2u : 1u);
        flags[r] =
            static_cast<uint8_t>(((mask >> c) & 1u) & (a.nulls[r] | b.nulls[r] ? 0u : 1u));
      }
    } else {
      const double* x = WidenColumn(a, n, arena);
      const double* y = WidenColumn(b, n, arena);
      for (size_t r = 0; r < n; ++r) {
        const unsigned c = x[r] < y[r] ? 0u : (x[r] > y[r] ? 2u : 1u);
        flags[r] =
            static_cast<uint8_t>(((mask >> c) & 1u) & (a.nulls[r] | b.nulls[r] ? 0u : 1u));
      }
    }
    return;
  }

  if (lcol || rcol) {
    // Canonicalize to column-vs-constant (mirroring the operator when the
    // constant was on the left).
    const VecPred::Operand& colop = lcol ? p.lhs : p.rhs;
    const VecPred::Operand& constop = lcol ? p.rhs : p.lhs;
    const CompareOp op = lcol ? p.op : MirrorOp(p.op);
    const uint32_t mask = OpMask(op);
    const ColumnData& a = in.cols[colop.col];
    const ConstOperand k = ResolveConst(constop, sn, chronon);
    if (a.type == DataType::kString) {
      const std::string& ks = *k.str;
      for (size_t r = 0; r < n; ++r) {
        if (a.nulls[r]) {
          flags[r] = 0;
          continue;
        }
        const int cmp = a.str[r]->compare(ks);
        const unsigned c = cmp < 0 ? 0u : (cmp == 0 ? 1u : 2u);
        flags[r] = static_cast<uint8_t>((mask >> c) & 1u);
      }
    } else if (a.type == DataType::kInt64 && k.is_int) {
      const int64_t* x = a.i64;
      const int64_t y = k.i64;
      for (size_t r = 0; r < n; ++r) {
        const unsigned c = x[r] < y ? 0u : (x[r] > y ? 2u : 1u);
        flags[r] =
            static_cast<uint8_t>(((mask >> c) & 1u) & (a.nulls[r] ? 0u : 1u));
      }
    } else {
      const double* x = WidenColumn(a, n, arena);
      const double y = k.f64;
      for (size_t r = 0; r < n; ++r) {
        const unsigned c = x[r] < y ? 0u : (x[r] > y ? 2u : 1u);
        flags[r] =
            static_cast<uint8_t>(((mask >> c) & 1u) & (a.nulls[r] ? 0u : 1u));
      }
    }
    return;
  }

  // Constant vs constant: one three-way compare fills the whole batch.
  const ConstOperand l = ResolveConst(p.lhs, sn, chronon);
  const ConstOperand r = ResolveConst(p.rhs, sn, chronon);
  unsigned c;
  if (l.is_string) {
    const int cmp = l.str->compare(*r.str);
    c = cmp < 0 ? 0u : (cmp == 0 ? 1u : 2u);
  } else if (l.is_int && r.is_int) {
    c = l.i64 < r.i64 ? 0u : (l.i64 > r.i64 ? 2u : 1u);
  } else {
    c = l.f64 < r.f64 ? 0u : (l.f64 > r.f64 ? 2u : 1u);
  }
  const uint8_t keep = static_cast<uint8_t>((OpMask(p.op) >> c) & 1u);
  std::memset(flags, keep, n);
}

void EvalPred(const VecPred& p, const ColumnBatch& in, SeqNum sn,
              int64_t chronon, uint8_t* flags, Arena* arena) {
  const size_t n = in.num_rows;
  switch (p.kind) {
    case VecPred::Kind::kConstFalse:
      std::memset(flags, 0, n);
      return;
    case VecPred::Kind::kCmp:
      EvalCmp(p, in, sn, chronon, flags, arena);
      return;
    case VecPred::Kind::kNot:
      EvalPred(*p.a, in, sn, chronon, flags, arena);
      for (size_t r = 0; r < n; ++r) flags[r] ^= 1;
      return;
    case VecPred::Kind::kAnd:
    case VecPred::Kind::kOr: {
      // Every supported node yields 0/1 and cannot error, so the row
      // engine's short-circuit evaluation reduces to elementwise bit math.
      EvalPred(*p.a, in, sn, chronon, flags, arena);
      uint8_t* tmp = n ? arena->AllocateArray<uint8_t>(n) : nullptr;
      EvalPred(*p.b, in, sn, chronon, tmp, arena);
      if (p.kind == VecPred::Kind::kAnd) {
        for (size_t r = 0; r < n; ++r) flags[r] &= tmp[r];
      } else {
        for (size_t r = 0; r < n; ++r) flags[r] |= tmp[r];
      }
      return;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine decision
// ---------------------------------------------------------------------------

std::unique_ptr<VecInstrInfo> PlanVectorInstr(const CaExpr& node) {
  switch (node.op()) {
    case CaOp::kScan:
    case CaOp::kProject:
    case CaOp::kSeqJoin:
    case CaOp::kUnion:
      return std::make_unique<VecInstrInfo>();
    case CaOp::kSelect: {
      auto pred = CompileVecPred(*node.predicate(), node.child(0)->schema());
      if (pred == nullptr) return nullptr;
      auto info = std::make_unique<VecInstrInfo>();
      info->pred = std::move(pred);
      return info;
    }
    case CaOp::kGroupBySeq: {
      const Schema& in_schema = node.child(0)->schema();
      std::vector<VecAgg> aggs;
      aggs.reserve(node.aggregates().size());
      for (const AggSpec& spec : node.aggregates()) {
        switch (spec.kind()) {
          case AggKind::kCount:
          case AggKind::kSum:
          case AggKind::kMin:
          case AggKind::kMax:
            break;
          default:
            // AVG/TIERED/FIRST/LAST/CUSTOM keep the whole group-by on the
            // row engine (one row path per instruction, never mixed).
            return nullptr;
        }
        VecAgg a;
        a.kind = spec.kind();
        if (spec.kind() != AggKind::kCount) {
          a.input = spec.bound_input();
          a.input_type = in_schema.field(a.input).type;
        }
        aggs.push_back(a);
      }
      auto info = std::make_unique<VecInstrInfo>();
      info->aggs = std::move(aggs);
      return info;
    }
    case CaOp::kRelKeyJoin:
      // String probes would build a heap Value per row; numeric probes are
      // allocation-free.
      if (node.child(0)->schema().field(node.join_column()).type ==
          DataType::kString) {
        return nullptr;
      }
      return std::make_unique<VecInstrInfo>();
    default:
      return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

void VecScratch::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.generation != generation_) continue;
    size_t i = s.hash & mask;
    while (slots_[i].generation == generation_) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

void VecSelect(const VecPred& pred, const ColumnBatch& in, SeqNum sn,
               int64_t chronon, Arena* arena, ColumnBatch* out) {
  const size_t phys = in.num_rows;
  uint8_t* flags = phys ? arena->AllocateArray<uint8_t>(phys) : nullptr;
  EvalPred(pred, in, sn, chronon, flags, arena);

  // Allocated even for an empty input: sel == nullptr means IDENTITY
  // selection, so an empty result must still carry a non-null (zero-length)
  // selection vector.
  const size_t n = in.size();
  uint32_t* sel = arena->AllocateArray<uint32_t>(n > 0 ? n : 1);
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = in.RowAt(i);
    sel[m] = r;
    m += flags[r];
  }
  out->cols = in.cols;
  out->num_rows = in.num_rows;
  out->sel = sel;
  out->sel_size = m;
}

void VecProject(const ColumnBatch& in, const std::vector<size_t>& projection,
                VecScratch* vs, Arena* arena, ColumnBatch* out) {
  out->cols.resize(projection.size());
  for (size_t k = 0; k < projection.size(); ++k) {
    out->cols[k] = in.cols[projection[k]];
  }
  out->num_rows = in.num_rows;

  // Projection can merge rows that differed only on dropped columns:
  // first-seen dedupe over the projected columns, payload = surviving
  // physical row.
  const size_t n = in.size();
  const size_t* pcols = projection.data();
  const size_t np = projection.size();
  // Non-null even when empty — sel == nullptr would mean identity.
  uint32_t* sel = arena->AllocateArray<uint32_t>(n > 0 ? n : 1);
  size_t m = 0;
  vs->Clear();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = in.RowAt(i);
    const size_t h = HashRowCols(in, pcols, np, r);
    const uint32_t found = vs->FindOrInsert(h, r, [&](uint32_t cand) {
      return RowColsEqual(in, r, in, cand, pcols, pcols, np);
    });
    if (found == VecScratch::kNotFound) sel[m++] = r;
  }
  out->sel = sel;
  out->sel_size = m;
}

void VecUnion(const ColumnBatch& left, const ColumnBatch& right,
              VecScratch* vs, Arena* arena, ColumnBatch* out) {
  const size_t ncols = left.cols.size();
  std::vector<const ColumnData*> templ(ncols);
  for (size_t c = 0; c < ncols; ++c) templ[c] = &left.cols[c];
  AllocateColumnsLike(templ, left.size() + right.size(), arena, out);

  size_t* idcols = ncols ? arena->AllocateArray<size_t>(ncols) : nullptr;
  for (size_t c = 0; c < ncols; ++c) idcols[c] = c;

  vs->Clear();
  size_t n = 0;
  auto add_side = [&](const ColumnBatch& src) {
    const size_t rows = src.size();
    for (size_t i = 0; i < rows; ++i) {
      const uint32_t r = src.RowAt(i);
      const size_t h = HashRowCols(src, idcols, ncols, r);
      const uint32_t found =
          vs->FindOrInsert(h, static_cast<uint32_t>(n), [&](uint32_t cand) {
            return RowColsEqual(src, r, *out, cand, idcols, idcols, ncols);
          });
      if (found != VecScratch::kNotFound) continue;
      for (size_t c = 0; c < ncols; ++c) {
        CopyCell(src.cols[c], r, &out->cols[c], n);
      }
      ++n;
    }
  };
  add_side(left);
  add_side(right);
  out->num_rows = n;
}

bool VecSeqJoin(const ColumnBatch& left, const ColumnBatch& right,
                Arena* arena, ColumnBatch* out) {
  const size_t nl = left.size();
  const size_t nr = right.size();
  if (nr != 0 && nl > std::numeric_limits<size_t>::max() / nr) return false;
  const size_t total = nl * nr;

  const size_t lcols = left.cols.size();
  const size_t rcols = right.cols.size();
  std::vector<const ColumnData*> templ(lcols + rcols);
  for (size_t c = 0; c < lcols; ++c) templ[c] = &left.cols[c];
  for (size_t c = 0; c < rcols; ++c) templ[lcols + c] = &right.cols[c];
  AllocateColumnsLike(templ, total, arena, out);

  // Left columns repeat each value nr times; right columns tile. Same
  // left-major order as the row engine's nested loops.
  for (size_t c = 0; c < lcols; ++c) {
    const ColumnData& src = left.cols[c];
    ColumnData* dst = &out->cols[c];
    size_t p = 0;
    for (size_t i = 0; i < nl; ++i) {
      const uint32_t r = left.RowAt(i);
      for (size_t k = 0; k < nr; ++k, ++p) CopyCell(src, r, dst, p);
    }
  }
  for (size_t c = 0; c < rcols; ++c) {
    const ColumnData& src = right.cols[c];
    ColumnData* dst = &out->cols[lcols + c];
    size_t p = 0;
    for (size_t i = 0; i < nl; ++i) {
      for (size_t k = 0; k < nr; ++k, ++p) CopyCell(src, right.RowAt(k), dst, p);
    }
  }
  return true;
}

void VecGroupBy(const ColumnBatch& in, const std::vector<size_t>& group_cols,
                const std::vector<VecAgg>& aggs,
                const std::vector<AggSpec>& specs, const Schema& out_schema,
                VecScratch* vs, Arena* arena, ColumnBatch* out) {
  const size_t n = in.size();
  const size_t nkeys = group_cols.size();
  const size_t* kcols = group_cols.data();

  // Pass 1: assign each row its group ordinal (first-seen discovery order,
  // matching the row engine's group_order).
  uint32_t* group_of = n ? arena->AllocateArray<uint32_t>(n) : nullptr;
  ArenaVector<uint32_t> rep{ArenaAllocator<uint32_t>(arena)};  // physical rows
  vs->Clear();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = in.RowAt(i);
    const size_t h = HashRowCols(in, kcols, nkeys, r);
    uint32_t g = vs->FindOrInsert(
        h, static_cast<uint32_t>(rep.size()), [&](uint32_t cand) {
          return RowColsEqual(in, r, in, rep[cand], kcols, kcols, nkeys);
        });
    if (g == VecScratch::kNotFound) {
      g = static_cast<uint32_t>(rep.size());
      rep.push_back(r);
    }
    group_of[i] = g;
  }
  const size_t ngroups = rep.size();

  AllocateColumns(out_schema, ngroups, arena, out);

  // Key columns: gather from each group's representative row.
  for (size_t k = 0; k < nkeys; ++k) {
    const ColumnData& src = in.cols[kcols[k]];
    ColumnData* dst = &out->cols[k];
    for (size_t g = 0; g < ngroups; ++g) CopyCell(src, rep[g], dst, g);
  }

  // Pass 2: one monomorphic update loop per aggregate, walking rows in
  // input order so per-group double accumulation folds in exactly the row
  // engine's order (bit-identical sums).
  for (size_t j = 0; j < aggs.size(); ++j) {
    const VecAgg& agg = aggs[j];
    ColumnData* dst = &out->cols[nkeys + j];
    switch (agg.kind) {
      case AggKind::kCount: {
        int64_t* cnt = ZeroedArray<int64_t>(arena, ngroups);
        for (size_t i = 0; i < n; ++i) ++cnt[group_of[i]];
        for (size_t g = 0; g < ngroups; ++g) {
          dst->nulls[g] = 0;
          dst->i64[g] = cnt[g];
        }
        break;
      }
      case AggKind::kSum: {
        const ColumnData& c = in.cols[agg.input];
        int64_t* cnt = ZeroedArray<int64_t>(arena, ngroups);
        if (agg.input_type == DataType::kInt64) {
          int64_t* sum = ZeroedArray<int64_t>(arena, ngroups);
          for (size_t i = 0; i < n; ++i) {
            const uint32_t r = in.RowAt(i);
            if (c.nulls[r]) continue;
            const uint32_t g = group_of[i];
            sum[g] += c.i64[r];
            ++cnt[g];
          }
          for (size_t g = 0; g < ngroups; ++g) {
            if (cnt[g] == 0) {
              WriteNull(dst, g);  // SQL: SUM of empty is NULL
            } else {
              dst->nulls[g] = 0;
              dst->i64[g] = sum[g];
            }
          }
        } else {
          double* sum = ZeroedArray<double>(arena, ngroups);
          for (size_t i = 0; i < n; ++i) {
            const uint32_t r = in.RowAt(i);
            if (c.nulls[r]) continue;
            const uint32_t g = group_of[i];
            sum[g] += c.f64[r];
            ++cnt[g];
          }
          for (size_t g = 0; g < ngroups; ++g) {
            if (cnt[g] == 0) {
              WriteNull(dst, g);
            } else {
              dst->nulls[g] = 0;
              dst->f64[g] = sum[g];
            }
          }
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const ColumnData& c = in.cols[agg.input];
        const bool is_min = agg.kind == AggKind::kMin;
        uint8_t* has = ZeroedArray<uint8_t>(arena, ngroups);
        // Strict-inequality updates keep the FIRST extremum on ties, same
        // as AggSpec::UpdateValue.
        switch (agg.input_type) {
          case DataType::kInt64: {
            int64_t* best = ZeroedArray<int64_t>(arena, ngroups);
            for (size_t i = 0; i < n; ++i) {
              const uint32_t r = in.RowAt(i);
              if (c.nulls[r]) continue;
              const uint32_t g = group_of[i];
              const int64_t v = c.i64[r];
              if (!has[g] || (is_min ? v < best[g] : v > best[g])) {
                best[g] = v;
                has[g] = 1;
              }
            }
            for (size_t g = 0; g < ngroups; ++g) {
              if (!has[g]) {
                WriteNull(dst, g);
              } else {
                dst->nulls[g] = 0;
                dst->i64[g] = best[g];
              }
            }
            break;
          }
          case DataType::kDouble: {
            double* best = ZeroedArray<double>(arena, ngroups);
            for (size_t i = 0; i < n; ++i) {
              const uint32_t r = in.RowAt(i);
              if (c.nulls[r]) continue;
              const uint32_t g = group_of[i];
              const double v = c.f64[r];
              if (!has[g] || (is_min ? v < best[g] : v > best[g])) {
                best[g] = v;
                has[g] = 1;
              }
            }
            for (size_t g = 0; g < ngroups; ++g) {
              if (!has[g]) {
                WriteNull(dst, g);
              } else {
                dst->nulls[g] = 0;
                dst->f64[g] = best[g];
              }
            }
            break;
          }
          case DataType::kString: {
            const std::string** best =
                ngroups ? arena->AllocateArray<const std::string*>(ngroups)
                        : nullptr;
            for (size_t i = 0; i < n; ++i) {
              const uint32_t r = in.RowAt(i);
              if (c.nulls[r]) continue;
              const uint32_t g = group_of[i];
              const std::string* v = c.str[r];
              if (!has[g] || (is_min ? *v < *best[g] : *best[g] < *v)) {
                best[g] = v;
                has[g] = 1;
              }
            }
            for (size_t g = 0; g < ngroups; ++g) {
              if (!has[g]) {
                WriteNull(dst, g);
              } else {
                dst->nulls[g] = 0;
                dst->str[g] = best[g];
              }
            }
            break;
          }
        }
        break;
      }
      default:
        // PlanVectorInstr admits only the kinds above.
        break;
    }
    (void)specs;
  }
}

bool VecRelKeyJoin(const ColumnBatch& in, const Relation* rel,
                   size_t join_column, const Schema& out_schema, Arena* arena,
                   ColumnBatch* out) {
  const size_t n = in.size();
  const ColumnData& key = in.cols[join_column];

  // Phase 1: probe (allocation-free numeric probes through a reused
  // Value). Stats stay with the caller so a phase-2 fallback cannot
  // double-count lookups.
  uint32_t* src = n ? arena->AllocateArray<uint32_t>(n) : nullptr;
  const Tuple** match = n ? arena->AllocateArray<const Tuple*>(n) : nullptr;
  size_t m = 0;
  Value probe;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = in.RowAt(i);
    if (key.nulls[r]) {
      probe = Value();
    } else if (key.type == DataType::kInt64) {
      probe = Value(key.i64[r]);
    } else {
      probe = Value(key.f64[r]);
    }
    const Tuple* t = rel->FindByKey(probe);
    if (t == nullptr) continue;  // inner join: misses drop out
    src[m] = r;
    match[m] = t;
    ++m;
  }

  // Phase 2: dense materialization — left columns gathered, relation
  // columns extracted with the schema type check.
  AllocateColumns(out_schema, m, arena, out);
  const size_t lcols = in.cols.size();
  const size_t rcols = out_schema.num_fields() - lcols;
  for (size_t c = 0; c < lcols; ++c) {
    const ColumnData& s = in.cols[c];
    ColumnData* dst = &out->cols[c];
    for (size_t j = 0; j < m; ++j) CopyCell(s, src[j], dst, j);
  }
  for (size_t c = 0; c < rcols; ++c) {
    ColumnData* dst = &out->cols[lcols + c];
    for (size_t j = 0; j < m; ++j) {
      const Tuple& t = *match[j];
      if (t.size() != rcols || !WriteCell(dst, j, t[c])) return false;
    }
  }
  return true;
}

}  // namespace exec
}  // namespace chronicle
