// Status and Result<T>: exception-free error handling for the chronicle
// library, in the style of Apache Arrow / RocksDB.
//
// Every fallible public API returns either a Status (no payload) or a
// Result<T> (payload or error). Callers propagate errors with the
// CHRONICLE_RETURN_NOT_OK / CHRONICLE_ASSIGN_OR_RETURN macros.

#ifndef CHRONICLE_COMMON_STATUS_H_
#define CHRONICLE_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace chronicle {

// Broad error taxonomy. Kept small on purpose: callers dispatch on a few
// classes of failure, and the message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kNotFound,           // named object / key absent
  kAlreadyExists,      // name or key collision
  kOutOfRange,         // sequence-number or index discipline violated
  kFailedPrecondition, // operation illegal in current state
  kNotImplemented,
  kParseError,         // CQL syntax error
  kPlanError,          // CQL semantic / binding error
  kInternal,           // invariant breach inside the library (a bug)
  kDataLoss,           // on-disk corruption / torn write detected (src/wal)
  kResourceExhausted,  // quota spent or bounded queue full (src/net -> 429)
  kUnauthenticated,    // missing/invalid auth token or session (src/net -> 401)
};

// Human-readable name of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. OK status carries no allocation.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  // Message text; empty for OK.
  const std::string& message() const;
  // "Code: message" rendering for logs and test failures.
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsPlanError() const { return code() == StatusCode::kPlanError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnauthenticated() const {
    return code() == StatusCode::kUnauthenticated;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; error states allocate once.
  std::unique_ptr<Rep> rep_;
};

// Result<T>: either a value or an error Status. Never holds an OK status
// without a value.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    // An OK status without a value is a programming error; surface it as an
    // internal error rather than crashing.
    if (std::get<Status>(var_).ok()) {
      var_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  // Error status (OK if the Result holds a value).
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  // Value access; must only be called when ok().
  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace chronicle

// Propagates a non-OK Status out of the enclosing function.
#define CHRONICLE_RETURN_NOT_OK(expr)                  \
  do {                                                 \
    ::chronicle::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                         \
  } while (false)

#define CHRONICLE_CONCAT_IMPL(a, b) a##b
#define CHRONICLE_CONCAT(a, b) CHRONICLE_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define CHRONICLE_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  CHRONICLE_ASSIGN_OR_RETURN_IMPL(                                        \
      CHRONICLE_CONCAT(_chronicle_result_, __LINE__), lhs, rexpr)

#define CHRONICLE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // CHRONICLE_COMMON_STATUS_H_
