// CRC-32C (Castagnoli) checksums for on-disk integrity checking.
//
// Used by the write-ahead log (src/wal) to frame records and by the
// durability manager to validate checkpoint images before applying them.
// Software table-driven implementation: ~1 GB/s, plenty for a log whose
// bottleneck is fsync. The polynomial matches iSCSI/RocksDB (0x1EDC6F41),
// so test vectors from those ecosystems apply.

#ifndef CHRONICLE_COMMON_CRC32_H_
#define CHRONICLE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace chronicle {

// One-shot CRC-32C of a byte range.
uint32_t Crc32c(const void* data, size_t n);
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

// Incremental form: pass the previous return value as `seed` to extend a
// checksum across multiple buffers. Start from 0.
uint32_t Crc32cExtend(uint32_t seed, const void* data, size_t n);

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_CRC32_H_
