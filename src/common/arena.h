// Arena: a block-based bump allocator for per-tick scratch data.
//
// The compiled delta executor (src/exec) allocates small, variably sized
// transients on every append tick — group-order entries, match staging —
// and frees all of them together when the tick ends. A bump arena turns
// each of those allocations into a pointer increment and makes the bulk
// free a single counter reset: Reset() retires every allocation but KEEPS
// the underlying blocks, so a steady-state tick performs zero calls into
// the system allocator. This is the "clear, don't free" discipline that
// also governs the executor's slot buffers.
//
// The arena only supports trivially destructible element types (it never
// runs destructors). ArenaAllocator adapts it to STL containers whose
// lifetime is bounded by one tick (e.g. std::vector<T, ArenaAllocator<T>>).
//
// Not thread-safe: each worker owns its own arena (the parallel
// maintenance fan-out gives every worker a private PlanScratch).

#ifndef CHRONICLE_COMMON_ARENA_H_
#define CHRONICLE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace chronicle {

class Arena {
 public:
  // Blocks double from `initial_block_bytes` up to `max_block_bytes`;
  // requests larger than the block size get a dedicated block.
  explicit Arena(size_t initial_block_bytes = 4096,
                 size_t max_block_bytes = 256 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  // Typed array allocation; T must be trivially destructible because the
  // arena never runs destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Retires every allocation but keeps the blocks: the next tick bumps
  // through the same memory. (Oversized one-off blocks are dropped so a
  // single pathological tick cannot pin its peak footprint forever.)
  void Reset();

  // Bytes handed out since the last Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Bytes held in retained blocks (the reusable footprint).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  // Makes `current_` a block with at least `bytes` free.
  void AddBlock(size_t bytes);

  size_t initial_block_bytes_;
  size_t max_block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;   // block being bumped (blocks_.size() if none)
  size_t offset_ = 0;    // bump position within the current block
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

// Minimal STL allocator over an Arena. Deallocate is a no-op — memory is
// reclaimed wholesale by Arena::Reset — so containers using it must not
// outlive the tick. Works for vectors of trivially destructible elements.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}  // reclaimed by Arena::Reset

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }
  bool operator!=(const ArenaAllocator& other) const {
    return arena_ != other.arena_;
  }

 private:
  Arena* arena_;
};

// A tick-scoped vector drawing its storage from an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_ARENA_H_
