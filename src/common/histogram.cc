#include "common/histogram.h"

#include <cstdio>
#include <limits>

namespace chronicle {

namespace {

// Pretty-prints nanoseconds with an adaptive unit.
std::string FormatNanos(int64_t nanos) {
  char buf[32];
  if (nanos < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  } else if (nanos < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(nanos) / 1e3);
  } else if (nanos < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(nanos) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(nanos) / 1e9);
  }
  return buf;
}

}  // namespace

int LatencyHistogram::BucketFor(int64_t nanos) {
  if (nanos <= 0) return 0;
  int bucket = 1;
  uint64_t bound = 1;
  while (bucket < kBuckets - 1 && static_cast<uint64_t>(nanos) >= bound * 2) {
    bound *= 2;
    ++bucket;
  }
  return bucket;
}

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  if (count_ == 0 || nanos < min_) min_ = nanos;
  if (nanos > max_) max_ = nanos;
  sum_ += static_cast<double>(nanos);
  ++count_;
  ++buckets_[static_cast<size_t>(BucketFor(nanos))];
}

int LatencyHistogram::BucketIndexFor(int64_t nanos) {
  return BucketFor(nanos < 0 ? 0 : nanos);
}

void LatencyHistogram::AccumulateRaw(
    const std::array<uint64_t, kBuckets>& buckets, uint64_t count, double sum,
    int64_t min, int64_t max) {
  if (count == 0) return;
  if (count_ == 0 || min < min_) min_ = min;
  if (max > max_) max_ = max;
  sum_ += sum;
  count_ += count;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += buckets[static_cast<size_t>(i)];
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
}

int64_t LatencyHistogram::BucketUpperBound(int i) {
  if (i <= 0) return 1;
  if (i >= kBuckets - 1) return std::numeric_limits<int64_t>::max();
  return int64_t{1} << i;
}

double LatencyHistogram::MeanNanos() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t LatencyHistogram::PercentileNanos(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    seen += buckets_[static_cast<size_t>(bucket)];
    if (static_cast<double>(seen) >= target) {
      // The same bound the exporters publish as the `le` label; for the
      // unbounded top bucket that is INT64_MAX, not a fake power of two.
      return BucketUpperBound(bucket);
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

std::string LatencyHistogram::ToString() const {
  std::string out = "n=" + std::to_string(count_);
  out += " mean=" + FormatNanos(static_cast<int64_t>(MeanNanos()));
  out += " p50=" + FormatNanos(PercentileNanos(0.5));
  out += " p99=" + FormatNanos(PercentileNanos(0.99));
  out += " max=" + FormatNanos(max_);
  return out;
}

}  // namespace chronicle
