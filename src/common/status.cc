#include "common/status.h"

namespace chronicle {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace chronicle
