#include "common/thread_pool.h"

namespace chronicle {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Stopping workers still drain the queue: destruction runs queued
      // work rather than dropping it.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace chronicle
