#include "common/crc32.h"

#include <array>

namespace chronicle {

namespace {

// Reflected CRC-32C table, generated once at first use.
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    constexpr uint32_t kPoly = 0x82F63B78;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t seed, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace chronicle
