// ThreadPool: a fixed-size pool of worker threads with a shared FIFO queue.
//
// Built for the parallel view-maintenance path (views/view_manager.cc):
// per Theorem 4.2 each view's per-append delta depends only on the appended
// tuples and the current relation versions, never on other views — so the
// maintenance fan-out is embarrassingly parallel and a plain fixed pool
// (no work stealing) is enough: the driver partitions views into a handful
// of contiguous batches and submits one task per batch.
//
// Semantics:
//   * Submit enqueues a task; any worker may run it, in any order.
//   * Wait blocks until every task submitted so far has finished. If one
//     or more tasks threw, the FIRST captured exception is rethrown from
//     Wait (later ones are dropped); the pool stays usable afterwards.
//   * The destructor drains the queue — tasks already submitted are RUN,
//     not discarded — then joins the workers. A pending exception that was
//     never collected via Wait is swallowed at destruction.
//   * Submit/Wait may be called from any thread, but tasks must not call
//     Submit or Wait on their own pool (the pool is not re-entrant).

#ifndef CHRONICLE_COMMON_THREAD_POOL_H_
#define CHRONICLE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chronicle {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues one task.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running, then rethrows
  // the first exception any task raised since the last Wait (if any).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers: task queued or stopping
  std::condition_variable idle_cv_;  // wakes Wait: pending_ reached zero
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_THREAD_POOL_H_
