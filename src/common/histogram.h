// LatencyHistogram: a fixed-size log-bucketed histogram for nanosecond
// latencies. Used by the ViewManager's per-view maintenance profiling, the
// observability layer (src/obs), and the bench harnesses; no dynamic
// allocation after construction. The value domain is any non-negative
// int64 — the obs layer also records sizes (batch ticks, bytes) into it;
// only ToString assumes nanoseconds.

#ifndef CHRONICLE_COMMON_HISTOGRAM_H_
#define CHRONICLE_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace chronicle {

class LatencyHistogram {
 public:
  // Buckets: [0,1), [1,2), [2,4), ... doubling up to ~73 minutes.
  static constexpr int kBuckets = 52;

  // Records one sample (negative values clamp to 0).
  void Record(int64_t nanos);

  // Folds `other` into this histogram (buckets, count, sum, min, max).
  // The observability layer keeps one histogram per worker shard and
  // merges them on read, so the hot path never contends on shared state.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  // Sum of all recorded samples (0 if empty).
  double SumNanos() const { return sum_; }
  // Raw count of bucket `i` in [0, kBuckets); exporters iterate these.
  uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  // Inclusive upper bound of bucket `i` (the Prometheus `le` label); the
  // last bucket is unbounded and reports INT64_MAX.
  static int64_t BucketUpperBound(int i);
  // Bucket index a sample would land in (negative values clamp to 0).
  // Exposed so lock-free mirrors (obs::RequestTracer's atomic-bucket
  // histograms) bucket identically and convert back via AccumulateRaw.
  static int BucketIndexFor(int64_t nanos);
  // Folds externally-accumulated raw state into this histogram: bucket
  // counts, total count, sum, and the observed min/max. No-op when
  // `count` is 0. The caller guarantees `buckets` sums to `count`.
  void AccumulateRaw(const std::array<uint64_t, kBuckets>& buckets,
                     uint64_t count, double sum, int64_t min, int64_t max);
  // Arithmetic mean of recorded samples (0 if empty).
  double MeanNanos() const;
  // Smallest bucket upper bound such that >= q of samples fall below it.
  // q in [0,1]; returns 0 if empty. Resolution is the bucket width (2x).
  int64_t PercentileNanos(double q) const;
  int64_t MinNanos() const { return count_ == 0 ? 0 : min_; }
  int64_t MaxNanos() const { return max_; }

  void Reset();

  // "n=1234 mean=1.2us p50=1us p99=4us max=16us" rendering.
  std::string ToString() const;

 private:
  static int BucketFor(int64_t nanos);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_HISTOGRAM_H_
