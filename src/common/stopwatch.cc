#include "common/stopwatch.h"

namespace chronicle {

void Stopwatch::Start() { origin_ = std::chrono::steady_clock::now(); }

int64_t Stopwatch::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

}  // namespace chronicle
