#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace chronicle {

uint64_t FuzzSeed(uint64_t fallback) {
  const char* env = std::getenv("CHRONICLE_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return fallback;  // not a number: keep the baked-in seed
  return static_cast<uint64_t>(parsed);
}

uint64_t Rng::Next() {
  // SplitMix64 (Vigna). Public domain reference constants.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection-free multiply-shift; bias is negligible for our bounds.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
  return static_cast<uint64_t>(product >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits into [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Rng::NextString(size_t length) {
  std::string out(length, 'a');
  for (size_t i = 0; i < length; ++i) {
    out[i] = static_cast<char>('a' + Uniform(26));
  }
  return out;
}

ZipfSampler::ZipfSampler(uint64_t n, double s, uint64_t seed)
    : rng_(seed), cdf_(n == 0 ? 1 : n) {
  const uint64_t size = static_cast<uint64_t>(cdf_.size());
  double total = 0.0;
  for (uint64_t i = 0; i < size; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < size; ++i) cdf_[i] /= total;
}

uint64_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace chronicle
