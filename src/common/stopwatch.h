// Monotonic wall-clock stopwatch used by the benchmark harnesses.

#ifndef CHRONICLE_COMMON_STOPWATCH_H_
#define CHRONICLE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace chronicle {

// Measures elapsed wall time on the steady clock. Start() resets the origin.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  // Resets the origin to now.
  void Start();

  // Nanoseconds elapsed since the last Start().
  int64_t ElapsedNanos() const;

  // Convenience conversions.
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_STOPWATCH_H_
