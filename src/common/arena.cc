#include "common/arena.h"

#include <algorithm>

namespace chronicle {

Arena::Arena(size_t initial_block_bytes, size_t max_block_bytes)
    : initial_block_bytes_(std::max<size_t>(initial_block_bytes, 64)),
      max_block_bytes_(std::max(max_block_bytes, initial_block_bytes_)) {}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    const size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      bytes_allocated_ += bytes;
      return block.data.get() + aligned;
    }
    // Advance into the next retained block (its bump position starts at 0).
    ++current_;
    offset_ = 0;
  }
  AddBlock(bytes + align);
  Block& block = blocks_[current_];
  const size_t aligned = (offset_ + align - 1) & ~(align - 1);
  offset_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return block.data.get() + aligned;
}

void Arena::AddBlock(size_t bytes) {
  size_t size = blocks_.empty()
                    ? initial_block_bytes_
                    : std::min(blocks_.back().size * 2, max_block_bytes_);
  size = std::max(size, bytes);
  Block block;
  block.data = std::make_unique<uint8_t[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void Arena::Reset() {
  // Drop oversized one-off blocks so a single pathological tick does not
  // pin its peak footprint; regular (geometric) blocks are retained.
  while (!blocks_.empty() && blocks_.back().size > max_block_bytes_) {
    bytes_reserved_ -= blocks_.back().size;
    blocks_.pop_back();
  }
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace chronicle
