#include "common/tracking_allocator.h"

#include <cstdio>

namespace chronicle {

void MemoryMeter::Add(size_t bytes) {
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
}

void MemoryMeter::Sub(size_t bytes) {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

void MemoryMeter::Reset() {
  current_ = 0;
  peak_ = 0;
}

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace chronicle
