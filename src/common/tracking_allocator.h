// Byte-accounting hooks used by experiment E8 (space independence of |C|).
//
// Rather than interposing on the global allocator, containers that matter to
// the space claims (chronicle buffers, view tables, delta engine scratch)
// report their footprint through MemoryFootprint() methods; this module
// provides the shared accounting helpers.

#ifndef CHRONICLE_COMMON_TRACKING_ALLOCATOR_H_
#define CHRONICLE_COMMON_TRACKING_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace chronicle {

// Running byte counter with a high-water mark. Each tracked subsystem owns
// one; benches sum them.
class MemoryMeter {
 public:
  // Records an allocation of `bytes`.
  void Add(size_t bytes);
  // Records a release of `bytes`.
  void Sub(size_t bytes);
  // Bytes currently accounted.
  size_t current() const { return current_; }
  // Largest value `current()` ever reached.
  size_t peak() const { return peak_; }
  // Resets both counters to zero.
  void Reset();

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

// Pretty-prints a byte count, e.g. "1.5 MiB".
std::string FormatBytes(size_t bytes);

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_TRACKING_ALLOCATOR_H_
