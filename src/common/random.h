// Deterministic pseudo-random utilities for workload generation and
// property-based tests. All generators are seeded explicitly so every
// experiment and test run is reproducible bit-for-bit.

#ifndef CHRONICLE_COMMON_RANDOM_H_
#define CHRONICLE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chronicle {

// Seed source for fuzz-style tests: the CHRONICLE_FUZZ_SEED environment
// variable when set (and numeric), otherwise `fallback`. CI exports a
// per-run value so fuzz coverage varies run to run; tests announce the
// effective seed on failure (SCOPED_TRACE), so any CI fuzz failure is
// reproduced locally with CHRONICLE_FUZZ_SEED=<printed value>.
uint64_t FuzzSeed(uint64_t fallback);

// SplitMix64: tiny, fast, well-distributed 64-bit PRNG. Used directly for
// workloads and as the seeding function for Zipf tables.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) ; bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t state_;
};

// Zipf-distributed sampler over {0, ..., n-1} with skew parameter `s`
// (s = 0 is uniform; s ~ 1 is the classic web/telecom skew). Uses a
// precomputed CDF table with binary search: O(n) setup, O(log n) sampling.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s, uint64_t seed);

  // Number of distinct values.
  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

  // Next sample in [0, n).
  uint64_t Next();

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace chronicle

#endif  // CHRONICLE_COMMON_RANDOM_H_
