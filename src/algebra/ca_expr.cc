#include "algebra/ca_expr.h"

namespace chronicle {

const char* CaOpToString(CaOp op) {
  switch (op) {
    case CaOp::kScan:
      return "Scan";
    case CaOp::kSelect:
      return "Select";
    case CaOp::kProject:
      return "Project";
    case CaOp::kSeqJoin:
      return "SeqJoin";
    case CaOp::kUnion:
      return "Union";
    case CaOp::kDifference:
      return "Difference";
    case CaOp::kGroupBySeq:
      return "GroupBySeq";
    case CaOp::kRelCross:
      return "RelCross";
    case CaOp::kRelKeyJoin:
      return "RelKeyJoin";
    case CaOp::kRelBoundedJoin:
      return "RelBoundedJoin";
    case CaOp::kProjectDropSn:
      return "ProjectDropSn";
    case CaOp::kGroupByNoSn:
      return "GroupByNoSn";
    case CaOp::kChronicleCross:
      return "ChronicleCross";
    case CaOp::kSeqThetaJoin:
      return "SeqThetaJoin";
  }
  return "Unknown";
}

Result<CaExprPtr> CaExpr::Scan(ChronicleId id, std::string name, Schema schema) {
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kScan));
  e->chronicle_id_ = id;
  e->label_ = std::move(name);
  e->schema_ = std::move(schema);
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::Scan(const Chronicle& chronicle) {
  return Scan(chronicle.id(), chronicle.name(), chronicle.schema());
}

Result<CaExprPtr> CaExpr::Select(Ptr child, ScalarExprPtr predicate) {
  if (child == nullptr || predicate == nullptr) {
    return Status::InvalidArgument("Select requires a child and a predicate");
  }
  CHRONICLE_RETURN_NOT_OK(predicate->Bind(child->schema()));
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kSelect));
  e->schema_ = child->schema();
  e->label_ = child->label();
  e->children_.push_back(std::move(child));
  e->predicate_ = std::move(predicate);
  return CaExprPtr(e);
}

namespace {

// Resolves `columns` against `schema`, producing indexes and the projected
// schema.
Status ResolveProjection(const Schema& schema,
                         const std::vector<std::string>& columns,
                         std::vector<size_t>* indexes, Schema* out_schema) {
  if (columns.empty()) {
    return Status::InvalidArgument("projection list is empty");
  }
  std::vector<Field> fields;
  for (const std::string& name : columns) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
    indexes->push_back(idx);
    fields.push_back(schema.field(idx));
  }
  CHRONICLE_ASSIGN_OR_RETURN(*out_schema, Schema::Make(std::move(fields)));
  return Status::OK();
}

Status ResolveGroupBy(const Schema& schema,
                      const std::vector<std::string>& group_columns,
                      std::vector<AggSpec>* aggregates,
                      std::vector<size_t>* group_indexes, Schema* out_schema) {
  std::vector<Field> fields;
  for (const std::string& name : group_columns) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
    group_indexes->push_back(idx);
    fields.push_back(schema.field(idx));
  }
  for (AggSpec& agg : *aggregates) {
    CHRONICLE_RETURN_NOT_OK(agg.Bind(schema));
    fields.push_back(agg.OutputField());
  }
  CHRONICLE_ASSIGN_OR_RETURN(*out_schema, Schema::Make(std::move(fields)));
  return Status::OK();
}

}  // namespace

Result<CaExprPtr> CaExpr::Project(Ptr child, std::vector<std::string> columns) {
  if (child == nullptr) return Status::InvalidArgument("Project requires a child");
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kProject));
  CHRONICLE_RETURN_NOT_OK(
      ResolveProjection(child->schema(), columns, &e->projection_, &e->schema_));
  e->label_ = child->label();
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::SeqJoin(Ptr left, Ptr right, std::string right_prefix) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("SeqJoin requires two children");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kSeqJoin));
  e->schema_ = left->schema().Concat(right->schema(), right_prefix);
  e->label_ = left->label() + "*" + right->label();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::Union(Ptr left, Ptr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Union requires two children");
  }
  if (left->schema() != right->schema()) {
    return Status::InvalidArgument("Union operands have different schemas: " +
                                   left->schema().ToString() + " vs " +
                                   right->schema().ToString());
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kUnion));
  e->schema_ = left->schema();
  e->label_ = left->label() + "+" + right->label();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::Difference(Ptr left, Ptr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Difference requires two children");
  }
  if (left->schema() != right->schema()) {
    return Status::InvalidArgument(
        "Difference operands have different schemas: " +
        left->schema().ToString() + " vs " + right->schema().ToString());
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kDifference));
  e->schema_ = left->schema();
  e->label_ = left->label() + "-" + right->label();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::GroupBySeq(Ptr child,
                                     std::vector<std::string> group_columns,
                                     std::vector<AggSpec> aggregates) {
  if (child == nullptr) {
    return Status::InvalidArgument("GroupBySeq requires a child");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("GroupBySeq requires at least one aggregate");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kGroupBySeq));
  e->aggregates_ = std::move(aggregates);
  CHRONICLE_RETURN_NOT_OK(ResolveGroupBy(child->schema(), group_columns,
                                         &e->aggregates_, &e->group_columns_,
                                         &e->schema_));
  e->label_ = child->label();
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::RelCross(Ptr child, const Relation* relation) {
  if (child == nullptr || relation == nullptr) {
    return Status::InvalidArgument("RelCross requires a child and a relation");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kRelCross));
  e->schema_ = child->schema().Concat(relation->schema(), relation->name());
  e->label_ = child->label() + "x" + relation->name();
  e->relation_ = relation;
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::RelKeyJoin(Ptr child, const Relation* relation,
                                     const std::string& chronicle_column) {
  if (child == nullptr || relation == nullptr) {
    return Status::InvalidArgument("RelKeyJoin requires a child and a relation");
  }
  if (!relation->has_key()) {
    return Status::InvalidArgument(
        "RelKeyJoin requires relation '" + relation->name() +
        "' to declare a unique key (the CA_join guarantee, Definition 4.2)");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kRelKeyJoin));
  CHRONICLE_ASSIGN_OR_RETURN(e->join_column_,
                             child->schema().IndexOf(chronicle_column));
  e->schema_ = child->schema().Concat(relation->schema(), relation->name());
  e->label_ = child->label() + "|x|" + relation->name();
  e->relation_ = relation;
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::RelBoundedJoin(Ptr child, const Relation* relation,
                                         const std::string& chronicle_column,
                                         const std::string& relation_column,
                                         size_t max_matches) {
  if (child == nullptr || relation == nullptr) {
    return Status::InvalidArgument(
        "RelBoundedJoin requires a child and a relation");
  }
  if (max_matches == 0) {
    return Status::InvalidArgument("max_matches must be at least 1");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kRelBoundedJoin));
  CHRONICLE_ASSIGN_OR_RETURN(e->join_column_,
                             child->schema().IndexOf(chronicle_column));
  CHRONICLE_ASSIGN_OR_RETURN(e->relation_column_,
                             relation->schema().IndexOf(relation_column));
  if (!relation->HasSecondaryIndex(e->relation_column_)) {
    return Status::FailedPrecondition(
        "RelBoundedJoin requires a secondary index on '" + relation_column +
        "' of relation '" + relation->name() +
        "' (one probe per chronicle tuple, Definition 4.2)");
  }
  e->max_matches_ = max_matches;
  e->schema_ = child->schema().Concat(relation->schema(), relation->name());
  e->label_ = child->label() + "|x<=" + std::to_string(max_matches) + "|" +
              relation->name();
  e->relation_ = relation;
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::ProjectDropSn(Ptr child,
                                        std::vector<std::string> columns) {
  if (child == nullptr) {
    return Status::InvalidArgument("ProjectDropSn requires a child");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kProjectDropSn));
  CHRONICLE_RETURN_NOT_OK(
      ResolveProjection(child->schema(), columns, &e->projection_, &e->schema_));
  e->label_ = child->label();
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::GroupByNoSn(Ptr child,
                                      std::vector<std::string> group_columns,
                                      std::vector<AggSpec> aggregates) {
  if (child == nullptr) {
    return Status::InvalidArgument("GroupByNoSn requires a child");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kGroupByNoSn));
  e->aggregates_ = std::move(aggregates);
  CHRONICLE_RETURN_NOT_OK(ResolveGroupBy(child->schema(), group_columns,
                                         &e->aggregates_, &e->group_columns_,
                                         &e->schema_));
  e->label_ = child->label();
  e->children_.push_back(std::move(child));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::ChronicleCross(Ptr left, Ptr right,
                                         std::string right_prefix) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("ChronicleCross requires two children");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kChronicleCross));
  e->schema_ = left->schema().Concat(right->schema(), right_prefix);
  e->label_ = left->label() + "xx" + right->label();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  return CaExprPtr(e);
}

Result<CaExprPtr> CaExpr::SeqThetaJoin(Ptr left, Ptr right, CompareOp theta,
                                       std::string right_prefix) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("SeqThetaJoin requires two children");
  }
  if (theta == CompareOp::kEq) {
    return Status::InvalidArgument(
        "SeqThetaJoin with '=' is the legal SeqJoin; use CaExpr::SeqJoin");
  }
  auto e = std::shared_ptr<CaExpr>(new CaExpr(CaOp::kSeqThetaJoin));
  e->theta_ = theta;
  e->schema_ = left->schema().Concat(right->schema(), right_prefix);
  e->label_ = left->label() + "?" + right->label();
  e->children_.push_back(std::move(left));
  e->children_.push_back(std::move(right));
  return CaExprPtr(e);
}

void CaExpr::CollectBaseChronicles(std::set<ChronicleId>* out) const {
  if (op_ == CaOp::kScan) out->insert(chronicle_id_);
  for (const Ptr& child : children_) child->CollectBaseChronicles(out);
}

void CaExpr::CollectRelations(std::set<const Relation*>* out) const {
  if (relation_ != nullptr) out->insert(relation_);
  for (const Ptr& child : children_) child->CollectRelations(out);
}

std::string CaExpr::ToString() const {
  std::string out;
  ToStringRec(0, &out);
  return out;
}

void CaExpr::ToStringRec(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(CaOpToString(op_));
  switch (op_) {
    case CaOp::kScan:
      out->append("(" + label_ + ")");
      break;
    case CaOp::kSelect:
      out->append("[" + predicate_->ToString() + "]");
      break;
    case CaOp::kProject:
    case CaOp::kProjectDropSn: {
      out->append("[");
      for (size_t i = 0; i < projection_.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(schema_.field(i).name);
      }
      out->append("]");
      break;
    }
    case CaOp::kGroupBySeq:
    case CaOp::kGroupByNoSn: {
      out->append("[");
      for (size_t i = 0; i < group_columns_.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(schema_.field(i).name);
      }
      out->append(" ; ");
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(aggregates_[i].ToString());
      }
      out->append("]");
      break;
    }
    case CaOp::kRelCross:
    case CaOp::kRelKeyJoin:
    case CaOp::kRelBoundedJoin:
      out->append("[" + relation_->name() + "]");
      break;
    case CaOp::kSeqThetaJoin:
      out->append("[SN ");
      out->append(CompareOpToString(theta_));
      out->append(" SN]");
      break;
    default:
      break;
  }
  out->append("\n");
  for (const Ptr& child : children_) child->ToStringRec(indent + 1, out);
}

}  // namespace chronicle
