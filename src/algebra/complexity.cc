#include "algebra/complexity.h"

#include "algebra/validate.h"

namespace chronicle {

const char* CaClassToString(CaClass c) {
  switch (c) {
    case CaClass::kCa1:
      return "CA_1";
    case CaClass::kCaJoin:
      return "CA_join";
    case CaClass::kCaFull:
      return "CA";
    case CaClass::kNotCa:
      return "not-CA";
  }
  return "?";
}

const char* ImClassToString(ImClass c) {
  switch (c) {
    case ImClass::kImConstant:
      return "IM-Constant";
    case ImClass::kImLogR:
      return "IM-log(R)";
    case ImClass::kImPolyR:
      return "IM-R^k";
    case ImClass::kImPolyC:
      return "IM-C^k";
  }
  return "?";
}

namespace {

void Walk(const CaExpr& expr, ComplexityReport* report) {
  switch (expr.op()) {
    case CaOp::kUnion:
      ++report->num_unions;
      break;
    case CaOp::kSeqJoin:
      ++report->num_joins;
      break;
    case CaOp::kRelCross:
      ++report->num_joins;
      ++report->num_rel_cross;
      break;
    case CaOp::kRelKeyJoin:
    case CaOp::kRelBoundedJoin:
      // Both satisfy the Definition 4.2 constant-matches guarantee.
      ++report->num_joins;
      ++report->num_rel_keyjoin;
      break;
    case CaOp::kChronicleCross:
    case CaOp::kSeqThetaJoin:
      ++report->num_joins;
      break;
    default:
      break;
  }
  for (size_t i = 0; i < expr.num_children(); ++i) {
    Walk(*expr.child(i), report);
  }
}

}  // namespace

ComplexityReport AnalyzeComplexity(const CaExpr& expr) {
  ComplexityReport report;
  Walk(expr, &report);

  Status ca_status = ValidateChronicleAlgebra(expr);
  if (!ca_status.ok()) {
    report.ca_class = CaClass::kNotCa;
    report.im_class = ImClass::kImPolyC;
    report.explanation = ca_status.message();
    return report;
  }
  if (report.num_rel_cross > 0) {
    report.ca_class = CaClass::kCaFull;
    report.im_class = ImClass::kImPolyR;
    report.explanation =
        "expression joins relations through unrestricted cross products; "
        "each append can touch O(|R|^j) relation tuples (Theorem 4.2)";
  } else if (report.num_rel_keyjoin > 0) {
    report.ca_class = CaClass::kCaJoin;
    report.im_class = ImClass::kImLogR;
    report.explanation =
        "relation access only through key joins: at most one relation tuple "
        "per chronicle tuple, found by one index lookup (Definition 4.2)";
  } else {
    report.ca_class = CaClass::kCa1;
    report.im_class = ImClass::kImConstant;
    report.explanation =
        "no relation access: maintenance touches only the appended tuples";
  }
  return report;
}

std::string ComplexityReport::ToString() const {
  std::string out = CaClassToString(ca_class);
  out += " / ";
  out += ImClassToString(im_class);
  out += " (u=" + std::to_string(num_unions) + ", j=" + std::to_string(num_joins) + ")";
  out += " — " + explanation;
  return out;
}

}  // namespace chronicle
