#include "algebra/delta_engine.h"

#include <unordered_set>

#include "storage/keyed_table.h"

namespace chronicle {

namespace {

using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;

void Record(DeltaStats* stats, size_t rows) {
  if (stats == nullptr) return;
  stats->total_rows_produced += rows;
  if (rows > stats->max_intermediate_rows) stats->max_intermediate_rows = rows;
}

// Removes duplicate tuples, preserving first-seen order.
void Dedupe(std::vector<Tuple>* rows) {
  TupleSet seen;
  std::vector<Tuple> out;
  out.reserve(rows->size());
  for (Tuple& t : *rows) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  *rows = std::move(out);
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

Result<std::vector<ChronicleRow>> DeltaEngine::ComputeDelta(
    const CaExpr& expr, const AppendEvent& event, DeltaStats* stats,
    DeltaCache* cache) const {
  DeltaCache local;
  if (cache == nullptr) cache = &local;
  CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* tuples,
                             Delta(expr, event, stats, cache));
  std::vector<ChronicleRow> rows;
  rows.reserve(tuples->size());
  for (const Tuple& t : *tuples) {
    rows.push_back(ChronicleRow{event.sn, t});
  }
  return rows;
}

Result<const std::vector<Tuple>*> DeltaEngine::Delta(const CaExpr& expr,
                                                     const AppendEvent& event,
                                                     DeltaStats* stats,
                                                     DeltaCache* cache) const {
  // DAG sharing: a node already evaluated this tick is returned verbatim.
  // (std::unordered_map never invalidates element references on insert.)
  auto memo_it = cache->memo_.find(&expr);
  if (memo_it != cache->memo_.end()) {
    ++cache->hits_;
    return &memo_it->second;
  }
  ++cache->misses_;

  std::vector<Tuple> out;
  switch (expr.op()) {
    case CaOp::kScan: {
      for (const auto& [id, tuples] : event.inserts) {
        if (id != expr.chronicle_id()) continue;
        out.insert(out.end(), tuples.begin(), tuples.end());
      }
      // Set semantics: identical tuples appended under one SN are one row.
      Dedupe(&out);
      break;
    }

    case CaOp::kSelect: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        EvalRow row{&t, event.sn, event.chronon};
        CHRONICLE_ASSIGN_OR_RETURN(bool keep, expr.predicate()->EvalBool(row));
        if (keep) out.push_back(t);
      }
      break;
    }

    case CaOp::kProject: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        Tuple projected;
        projected.reserve(expr.projection().size());
        for (size_t idx : expr.projection()) projected.push_back(t[idx]);
        out.push_back(std::move(projected));
      }
      // Projection can merge rows that differed only on dropped columns.
      Dedupe(&out);
      break;
    }

    case CaOp::kSeqJoin: {
      // Within one tick every delta row carries the same (fresh) SN, so the
      // SN-equijoin of the deltas is their full pairing; the cross terms
      // against old chronicle state are empty by Theorem 4.1.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      out.reserve(left->size() * right->size());
      for (const Tuple& l : *left) {
        for (const Tuple& r : *right) {
          out.push_back(ConcatTuples(l, r));
        }
      }
      break;
    }

    case CaOp::kUnion: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      out = *left;
      out.insert(out.end(), right->begin(), right->end());
      Dedupe(&out);
      break;
    }

    case CaOp::kDifference: {
      // New SNs cannot exist in the old right operand (group discipline), so
      // Δ(E1 − E2) = ΔE1 − ΔE2 exactly (Theorem 4.1 proof).
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      TupleSet removed(right->begin(), right->end());
      out.reserve(left->size());
      for (const Tuple& t : *left) {
        if (removed.count(t) == 0) out.push_back(t);
      }
      Dedupe(&out);
      break;
    }

    case CaOp::kGroupBySeq: {
      // SN is in the grouping list, so the appended tuples form brand-new
      // groups: aggregate within the tick only.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      KeyedTable<std::vector<AggState>> groups(IndexMode::kHash);
      std::vector<Tuple> group_order;  // deterministic output order
      for (const Tuple& t : *child) {
        Tuple key;
        key.reserve(expr.group_columns().size());
        for (size_t idx : expr.group_columns()) key.push_back(t[idx]);
        std::vector<AggState>* states = groups.Find(key);
        if (states == nullptr) {
          states = &groups.GetOrCreate(key);
          states->reserve(expr.aggregates().size());
          for (const AggSpec& agg : expr.aggregates()) {
            states->push_back(agg.Init());
          }
          group_order.push_back(key);
        }
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          expr.aggregates()[i].Update(&(*states)[i], t);
        }
      }
      out.reserve(group_order.size());
      for (const Tuple& key : group_order) {
        const std::vector<AggState>* states = groups.Find(key);
        Tuple row = key;
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          row.push_back(expr.aggregates()[i].Finalize((*states)[i]));
        }
        out.push_back(std::move(row));
      }
      break;
    }

    case CaOp::kRelCross: {
      // Implicit temporal join: proactive updates guarantee the current
      // relation version is the one associated with this (fresh) SN.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      out.reserve(child->size() * rel->size());
      for (const Tuple& t : *child) {
        for (const Tuple& r : rel->rows()) {
          out.push_back(ConcatTuples(t, r));
        }
        if (stats != nullptr) stats->relation_rows_scanned += rel->size();
      }
      break;
    }

    case CaOp::kRelKeyJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        if (stats != nullptr) ++stats->relation_lookups;
        Result<const Tuple*> match = rel->LookupByKey(t[expr.join_column()]);
        if (!match.ok()) continue;  // inner join: unmatched rows drop out
        out.push_back(ConcatTuples(t, **match));
      }
      break;
    }

    case CaOp::kRelBoundedJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      out.reserve(child->size() * expr.max_matches());
      std::vector<const Tuple*> matches;
      for (const Tuple& t : *child) {
        matches.clear();
        if (stats != nullptr) ++stats->relation_lookups;
        CHRONICLE_RETURN_NOT_OK(rel->LookupBySecondary(
            expr.relation_column(), t[expr.join_column()], &matches));
        if (matches.size() > expr.max_matches()) {
          // The Definition 4.2 guarantee is an integrity constraint; its
          // violation means the view definition's admission into CA_join
          // was unsound.
          return Status::FailedPrecondition(
              "bounded join matched " + std::to_string(matches.size()) +
              " relation tuples, declared bound is " +
              std::to_string(expr.max_matches()) + " (Definition 4.2)");
        }
        for (const Tuple* r : matches) {
          out.push_back(ConcatTuples(t, *r));
        }
      }
      break;
    }

    case CaOp::kProjectDropSn:
    case CaOp::kGroupByNoSn:
    case CaOp::kChronicleCross:
    case CaOp::kSeqThetaJoin:
      return Status::InvalidArgument(
          std::string("operator ") + CaOpToString(expr.op()) +
          " is outside chronicle algebra and cannot be maintained "
          "incrementally without chronicle access (Theorem 4.3)");
  }

  Record(stats, out.size());
  auto [slot, inserted] = cache->memo_.emplace(&expr, std::move(out));
  return &slot->second;
}

}  // namespace chronicle
