#include "algebra/delta_engine.h"

#include <limits>
#include <unordered_set>

#include "storage/keyed_table.h"

namespace chronicle {

namespace {

using TupleSet = std::unordered_set<Tuple, TupleHash, TupleEq>;

void Record(DeltaStats* stats, size_t rows) {
  if (stats == nullptr) return;
  stats->total_rows_produced += rows;
  if (rows > stats->max_intermediate_rows) stats->max_intermediate_rows = rows;
}

// Removes duplicate tuples in place, preserving first-seen order.
void Dedupe(std::vector<Tuple>* rows) {
  TupleSet seen;
  size_t w = 0;
  for (size_t r = 0; r < rows->size(); ++r) {
    if (!seen.insert((*rows)[r]).second) continue;
    if (w != r) (*rows)[w] = std::move((*rows)[r]);
    ++w;
  }
  rows->resize(w);
}

// reserve() for a join output of a*b rows; skipped if the product cannot
// be represented (adversarial inputs — the push_backs below still grow
// correctly, just without the up-front reservation).
void ReserveProduct(std::vector<Tuple>* out, size_t a, size_t b) {
  if (a != 0 && b > std::numeric_limits<size_t>::max() / a) return;
  out->reserve(a * b);
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

Result<std::vector<ChronicleRow>> DeltaEngine::ComputeDelta(
    const CaExpr& expr, const AppendEvent& event, DeltaStats* stats,
    DeltaCache* cache) const {
  DeltaCache local;
  if (cache == nullptr) cache = &local;
  CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* tuples,
                             Delta(expr, event, stats, cache));
  std::vector<ChronicleRow> rows;
  rows.reserve(tuples->size());
  for (const Tuple& t : *tuples) {
    rows.push_back(ChronicleRow{event.sn, t});
  }
  return rows;
}

Result<const std::vector<Tuple>*> DeltaEngine::Delta(const CaExpr& expr,
                                                     const AppendEvent& event,
                                                     DeltaStats* stats,
                                                     DeltaCache* cache) const {
  // DAG sharing: a node already evaluated this tick is returned verbatim.
  // (std::unordered_map never invalidates element references on insert.)
  auto memo_it = cache->memo_.find(&expr);
  if (memo_it != cache->memo_.end()) {
    ++cache->hits_;
    return &memo_it->second;
  }
  ++cache->misses_;

  std::vector<Tuple> out;
  switch (expr.op()) {
    case CaOp::kScan: {
      for (const auto& [id, tuples] : event.inserts) {
        if (id != expr.chronicle_id()) continue;
        out.insert(out.end(), tuples.begin(), tuples.end());
      }
      // Set semantics: identical tuples appended under one SN are one row.
      Dedupe(&out);
      break;
    }

    case CaOp::kSelect: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        EvalRow row{&t, event.sn, event.chronon};
        CHRONICLE_ASSIGN_OR_RETURN(bool keep, expr.predicate()->EvalBool(row));
        if (keep) out.push_back(t);
      }
      break;
    }

    case CaOp::kProject: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        Tuple projected;
        projected.reserve(expr.projection().size());
        for (size_t idx : expr.projection()) projected.push_back(t[idx]);
        out.push_back(std::move(projected));
      }
      // Projection can merge rows that differed only on dropped columns.
      Dedupe(&out);
      break;
    }

    case CaOp::kSeqJoin: {
      // Within one tick every delta row carries the same (fresh) SN, so the
      // SN-equijoin of the deltas is their full pairing; the cross terms
      // against old chronicle state are empty by Theorem 4.1.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      ReserveProduct(&out, left->size(), right->size());
      for (const Tuple& l : *left) {
        for (const Tuple& r : *right) {
          out.push_back(ConcatTuples(l, r));
        }
      }
      break;
    }

    case CaOp::kUnion: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      out.reserve(left->size() + right->size());
      out.insert(out.end(), left->begin(), left->end());
      out.insert(out.end(), right->begin(), right->end());
      Dedupe(&out);
      break;
    }

    case CaOp::kDifference: {
      // New SNs cannot exist in the old right operand (group discipline), so
      // Δ(E1 − E2) = ΔE1 − ΔE2 exactly (Theorem 4.1 proof).
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* left,
                                 Delta(*expr.child(0), event, stats, cache));
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* right,
                                 Delta(*expr.child(1), event, stats, cache));
      TupleSet removed(right->begin(), right->end());
      out.reserve(left->size());
      for (const Tuple& t : *left) {
        if (removed.count(t) == 0) out.push_back(t);
      }
      Dedupe(&out);
      break;
    }

    case CaOp::kGroupBySeq: {
      // SN is in the grouping list, so the appended tuples form brand-new
      // groups: aggregate within the tick only.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      KeyedTable<std::vector<AggState>> groups(IndexMode::kHash);
      // Deterministic output order, holding stable pointers into the table
      // so finalize never re-probes and the key is copied exactly once (on
      // group creation, inside the table).
      std::vector<KeyedTable<std::vector<AggState>>::Entry> group_order;
      Tuple key;  // reused probe key: capacity survives clear()
      for (const Tuple& t : *child) {
        key.clear();
        for (size_t idx : expr.group_columns()) key.push_back(t[idx]);
        auto entry = groups.GetOrCreateEntry(key);
        if (entry.inserted) {
          entry.value->reserve(expr.aggregates().size());
          for (const AggSpec& agg : expr.aggregates()) {
            entry.value->push_back(agg.Init());
          }
          group_order.push_back(entry);
        }
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          expr.aggregates()[i].Update(&(*entry.value)[i], t);
        }
      }
      out.reserve(group_order.size());
      for (const auto& entry : group_order) {
        Tuple row;
        row.reserve(entry.key->size() + expr.aggregates().size());
        row.insert(row.end(), entry.key->begin(), entry.key->end());
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          row.push_back(expr.aggregates()[i].Finalize((*entry.value)[i]));
        }
        out.push_back(std::move(row));
      }
      break;
    }

    case CaOp::kRelCross: {
      // Implicit temporal join: proactive updates guarantee the current
      // relation version is the one associated with this (fresh) SN.
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      ReserveProduct(&out, child->size(), rel->size());
      for (const Tuple& t : *child) {
        for (const Tuple& r : rel->rows()) {
          out.push_back(ConcatTuples(t, r));
        }
        if (stats != nullptr) stats->relation_rows_scanned += rel->size();
      }
      break;
    }

    case CaOp::kRelKeyJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      out.reserve(child->size());
      for (const Tuple& t : *child) {
        if (stats != nullptr) ++stats->relation_lookups;
        // Status-free probe: the inner-join miss path allocates nothing.
        const Tuple* match = rel->FindByKey(t[expr.join_column()]);
        if (match == nullptr) continue;  // inner join: unmatched rows drop out
        out.push_back(ConcatTuples(t, *match));
      }
      break;
    }

    case CaOp::kRelBoundedJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(const std::vector<Tuple>* child,
                                 Delta(*expr.child(0), event, stats, cache));
      const Relation* rel = expr.relation();
      ReserveProduct(&out, child->size(), expr.max_matches());
      for (const Tuple& t : *child) {
        if (stats != nullptr) ++stats->relation_lookups;
        // Status-free probe straight into the index's slot list (the index
        // exists by construction, see CaExpr::RelBoundedJoin): no staging
        // vector, and the miss path allocates nothing.
        const std::vector<size_t>* slots =
            rel->FindBySecondary(expr.relation_column(), t[expr.join_column()]);
        if (slots == nullptr) continue;
        if (slots->size() > expr.max_matches()) {
          // The Definition 4.2 guarantee is an integrity constraint; its
          // violation means the view definition's admission into CA_join
          // was unsound.
          return Status::FailedPrecondition(
              "bounded join matched " + std::to_string(slots->size()) +
              " relation tuples, declared bound is " +
              std::to_string(expr.max_matches()) + " (Definition 4.2)");
        }
        for (size_t slot : *slots) {
          out.push_back(ConcatTuples(t, rel->rows()[slot]));
        }
      }
      break;
    }

    case CaOp::kProjectDropSn:
    case CaOp::kGroupByNoSn:
    case CaOp::kChronicleCross:
    case CaOp::kSeqThetaJoin:
      return Status::InvalidArgument(
          std::string("operator ") + CaOpToString(expr.op()) +
          " is outside chronicle algebra and cannot be maintained "
          "incrementally without chronicle access (Theorem 4.3)");
  }

  Record(stats, out.size());
  auto [slot, inserted] = cache->memo_.emplace(&expr, std::move(out));
  return &slot->second;
}

}  // namespace chronicle
