#include "algebra/validate.h"

namespace chronicle {

Status ValidateChronicleAlgebra(const CaExpr& expr) {
  switch (expr.op()) {
    case CaOp::kProjectDropSn:
      return Status::InvalidArgument(
          "projection without the sequencing attribute does not derive a "
          "chronicle (Theorem 4.3); use the summarization step (SCA) instead");
    case CaOp::kGroupByNoSn:
      return Status::InvalidArgument(
          "group-by without the sequencing attribute in the grouping list "
          "does not derive a chronicle (Theorem 4.3); use the summarization "
          "step (SCA) instead");
    case CaOp::kChronicleCross:
      return Status::InvalidArgument(
          "cross product between chronicles requires looking up old chronicle "
          "tuples on every append — maintenance would be in IM-C^k "
          "(Theorem 4.3)");
    case CaOp::kSeqThetaJoin:
      return Status::InvalidArgument(
          "non-equijoin on the sequencing attribute requires access to old "
          "chronicle tuples — maintenance would be in IM-C^k (Theorem 4.3)");
    default:
      break;
  }
  for (size_t i = 0; i < expr.num_children(); ++i) {
    CHRONICLE_RETURN_NOT_OK(ValidateChronicleAlgebra(*expr.child(i)));
  }
  return Status::OK();
}

namespace {

// Atomic comparison per Definition 4.1: column θ column, or column θ
// constant (either side).
bool IsAtomicComparison(const ScalarExpr& e) {
  if (e.kind() != ExprKind::kCompare) return false;
  auto is_operand = [](const ScalarExpr& c) {
    return c.kind() == ExprKind::kColumn || c.kind() == ExprKind::kLiteral ||
           c.kind() == ExprKind::kSeqNum || c.kind() == ExprKind::kChronon;
  };
  return is_operand(e.child(0)) && is_operand(e.child(1));
}

}  // namespace

bool IsDefinition41Predicate(const ScalarExpr& predicate) {
  if (predicate.kind() == ExprKind::kOr) {
    return IsDefinition41Predicate(predicate.child(0)) &&
           IsDefinition41Predicate(predicate.child(1));
  }
  return IsAtomicComparison(predicate);
}

Status ValidateStrictPredicates(const CaExpr& expr) {
  if (expr.op() == CaOp::kSelect &&
      !IsDefinition41Predicate(*expr.predicate())) {
    return Status::InvalidArgument(
        "selection predicate '" + expr.predicate()->ToString() +
        "' is not a disjunction of atomic comparisons (Definition 4.1)");
  }
  for (size_t i = 0; i < expr.num_children(); ++i) {
    CHRONICLE_RETURN_NOT_OK(ValidateStrictPredicates(*expr.child(i)));
  }
  return Status::OK();
}

}  // namespace chronicle
