// Chronicle Algebra (CA) expression trees — Definition 4.1 of the paper.
//
// Every CA operator maps chronicles (of one chronicle group) to a chronicle
// in the same group. The sequencing attribute is never a payload column: it
// rides along structurally (types/tuple.h), so the legal operators preserve
// it by construction:
//
//   Scan        — a base chronicle
//   Select      — σ_p(C)
//   Project     — Π_{A...}(C), SN always kept
//   SeqJoin     — C1 ⋈_{C1.SN = C2.SN} C2 (same group)
//   Union       — C1 ∪ C2 (same type, same group)
//   Difference  — C1 − C2 (same type, same group)
//   GroupBySeq  — GROUPBY(C, GL ∋ SN, AL)
//   RelCross    — C × R (implicit temporal join: R's current version)
//   RelKeyJoin  — C ⋈_{C.a = R.key} R, at most one R-tuple per C-tuple (CA_⋈)
//
// The four constructs Theorem 4.3 excludes are also representable —
// ProjectDropSn, GroupByNoSn, ChronicleCross, SeqThetaJoin — so that
// algebra/validate.h can reject them with precise diagnostics and the
// baseline engine can demonstrate *why* they are excluded (their maintenance
// cost depends on |C|). The incremental DeltaEngine refuses to touch them.
//
// Nodes are immutable after construction and shared via shared_ptr<const>,
// so subexpressions can be reused across view definitions.

#ifndef CHRONICLE_ALGEBRA_CA_EXPR_H_
#define CHRONICLE_ALGEBRA_CA_EXPR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "aggregates/aggregate.h"
#include "algebra/scalar_expr.h"
#include "common/status.h"
#include "storage/chronicle.h"
#include "storage/relation.h"
#include "types/schema.h"

namespace chronicle {

enum class CaOp : uint8_t {
  kScan = 0,
  kSelect,
  kProject,
  kSeqJoin,
  kUnion,
  kDifference,
  kGroupBySeq,
  kRelCross,
  kRelKeyJoin,
  kRelBoundedJoin,
  // --- outside chronicle algebra (Theorem 4.3) ---
  kProjectDropSn,   // would not yield a chronicle
  kGroupByNoSn,     // would not yield a chronicle
  kChronicleCross,  // maintenance cost depends on |C|
  kSeqThetaJoin,    // non-equijoin on SN: cost depends on |C|
};

const char* CaOpToString(CaOp op);

class CaExpr {
 public:
  using Ptr = std::shared_ptr<const CaExpr>;

  // --- legal CA constructors (Definition 4.1) ---

  // Base chronicle. `schema` is the payload schema of the chronicle.
  static Result<Ptr> Scan(ChronicleId id, std::string name, Schema schema);
  // Overload taking the chronicle object directly.
  static Result<Ptr> Scan(const Chronicle& chronicle);

  // σ_p(child). The predicate is bound against the child schema here.
  static Result<Ptr> Select(Ptr child, ScalarExprPtr predicate);

  // Π_{columns}(child); the SN is kept implicitly.
  static Result<Ptr> Project(Ptr child, std::vector<std::string> columns);

  // child1 ⋈_{SN} child2; payload schemas are concatenated (right-side
  // collisions prefixed with `right_prefix`, default "r").
  static Result<Ptr> SeqJoin(Ptr left, Ptr right,
                             std::string right_prefix = "r");

  // Set union / difference; operands must have identical payload schemas.
  static Result<Ptr> Union(Ptr left, Ptr right);
  static Result<Ptr> Difference(Ptr left, Ptr right);

  // GROUPBY with the SN implicitly in the grouping list: groups are formed
  // *within* each sequence number.
  static Result<Ptr> GroupBySeq(Ptr child, std::vector<std::string> group_columns,
                                std::vector<AggSpec> aggregates);

  // child × relation, with the model's implicit temporal join: the cross
  // product always uses the relation's current version. `relation` must
  // outlive the expression (relations are owned by the database).
  static Result<Ptr> RelCross(Ptr child, const Relation* relation);

  // child ⋈ relation on `chronicle_column` = relation key (CA_⋈): at most
  // one relation tuple joins each chronicle tuple. Inner join semantics.
  static Result<Ptr> RelKeyJoin(Ptr child, const Relation* relation,
                                const std::string& chronicle_column);

  // The general CA_⋈ admission rule of Definition 4.2: an equijoin with "a
  // guarantee (based on the schema and integrity constraints) that at most
  // a constant number of relation tuples join with each chronicle tuple".
  // `max_matches` declares that constant; the relation must have a
  // secondary index on `relation_column` so each lookup is one probe. The
  // guarantee is an integrity constraint: maintenance fails with
  // FailedPrecondition if a chronicle tuple ever matches more rows.
  static Result<Ptr> RelBoundedJoin(Ptr child, const Relation* relation,
                                    const std::string& chronicle_column,
                                    const std::string& relation_column,
                                    size_t max_matches);

  // --- Theorem 4.3 counterexample constructors (rejected by validation) ---

  static Result<Ptr> ProjectDropSn(Ptr child, std::vector<std::string> columns);
  static Result<Ptr> GroupByNoSn(Ptr child, std::vector<std::string> group_columns,
                                 std::vector<AggSpec> aggregates);
  static Result<Ptr> ChronicleCross(Ptr left, Ptr right,
                                    std::string right_prefix = "r");
  // theta must not be kEq (that would be SeqJoin).
  static Result<Ptr> SeqThetaJoin(Ptr left, Ptr right, CompareOp theta,
                                  std::string right_prefix = "r");

  // --- inspection ---

  CaOp op() const { return op_; }
  const Schema& schema() const { return schema_; }
  const std::string& label() const { return label_; }

  size_t num_children() const { return children_.size(); }
  const Ptr& child(size_t i) const { return children_[i]; }

  ChronicleId chronicle_id() const { return chronicle_id_; }      // kScan
  const ScalarExpr* predicate() const { return predicate_.get(); }  // kSelect
  const std::vector<size_t>& projection() const { return projection_; }
  const std::vector<size_t>& group_columns() const { return group_columns_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  const Relation* relation() const { return relation_; }
  // kRelKeyJoin / kRelBoundedJoin: child column on the chronicle side.
  size_t join_column() const { return join_column_; }
  // kRelBoundedJoin: relation-side column and declared match bound.
  size_t relation_column() const { return relation_column_; }
  size_t max_matches() const { return max_matches_; }
  CompareOp theta() const { return theta_; }  // kSeqThetaJoin

  // All base chronicles this expression reads.
  void CollectBaseChronicles(std::set<ChronicleId>* out) const;
  // All relations this expression joins against.
  void CollectRelations(std::set<const Relation*>* out) const;

  // Operator-tree rendering for diagnostics, one node per line.
  std::string ToString() const;

 private:
  explicit CaExpr(CaOp op) : op_(op) {}

  void ToStringRec(int indent, std::string* out) const;

  CaOp op_;
  Schema schema_;
  std::string label_;
  std::vector<Ptr> children_;

  ChronicleId chronicle_id_ = 0;
  ScalarExprPtr predicate_;
  std::vector<size_t> projection_;
  std::vector<size_t> group_columns_;
  std::vector<AggSpec> aggregates_;
  const Relation* relation_ = nullptr;
  size_t join_column_ = 0;
  size_t relation_column_ = 0;
  size_t max_matches_ = 0;
  CompareOp theta_ = CompareOp::kEq;
};

using CaExprPtr = CaExpr::Ptr;

}  // namespace chronicle

#endif  // CHRONICLE_ALGEBRA_CA_EXPR_H_
