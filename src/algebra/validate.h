// Validation of chronicle-algebra expressions.
//
// ValidateChronicleAlgebra enforces Theorem 4.3: it rejects the four
// constructs whose addition would either stop the result from being a
// chronicle (SN-dropping projection / group-by) or make incremental
// maintenance depend on the chronicle size (chronicle × chronicle cross
// product, non-equijoin on the sequencing attribute).
//
// ValidateStrictPredicates additionally enforces the literal predicate
// grammar of Definition 4.1 — selections must be disjunctions of atomic
// comparisons `A θ A'` or `A θ k`. The engine itself can evaluate richer
// predicates (conjunction, arithmetic); strict mode exists for
// paper-faithful conformance checking and is what the CQL binder reports
// as a warning.

#ifndef CHRONICLE_ALGEBRA_VALIDATE_H_
#define CHRONICLE_ALGEBRA_VALIDATE_H_

#include "algebra/ca_expr.h"
#include "common/status.h"

namespace chronicle {

// Fails with InvalidArgument naming the offending operator if `expr` uses
// any construct outside chronicle algebra (Theorem 4.3).
Status ValidateChronicleAlgebra(const CaExpr& expr);

// Fails if any selection predicate in `expr` is not a disjunction of atomic
// comparisons (Definition 4.1). Implies nothing about maintainability —
// richer predicates are still per-tuple O(1) — but flags divergence from
// the paper's grammar.
Status ValidateStrictPredicates(const CaExpr& expr);

// True iff a single predicate matches the Definition 4.1 grammar.
bool IsDefinition41Predicate(const ScalarExpr& predicate);

}  // namespace chronicle

#endif  // CHRONICLE_ALGEBRA_VALIDATE_H_
