#include "algebra/scalar_expr.h"

namespace chronicle {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Column(std::string name) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kColumn));
  e->name_ = std::move(name);
  return e;
}

ScalarExprPtr ScalarExpr::SeqNumRef() {
  return ScalarExprPtr(new ScalarExpr(ExprKind::kSeqNum));
}

ScalarExprPtr ScalarExpr::ChrononRef() {
  return ScalarExprPtr(new ScalarExpr(ExprKind::kChronon));
}

ScalarExprPtr ScalarExpr::Literal(Value v) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ScalarExprPtr ScalarExpr::Compare(CompareOp op, ScalarExprPtr lhs,
                                  ScalarExprPtr rhs) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kCompare));
  e->compare_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr ScalarExpr::And(ScalarExprPtr lhs, ScalarExprPtr rhs) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kAnd));
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr ScalarExpr::Or(ScalarExprPtr lhs, ScalarExprPtr rhs) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kOr));
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr ScalarExpr::Not(ScalarExprPtr operand) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kNot));
  e->children_.push_back(std::move(operand));
  return e;
}

ScalarExprPtr ScalarExpr::Arith(ArithOp op, ScalarExprPtr lhs, ScalarExprPtr rhs) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kArith));
  e->arith_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr ScalarExpr::Case(
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches,
    ScalarExprPtr else_value) {
  auto e = ScalarExprPtr(new ScalarExpr(ExprKind::kCase));
  // Children layout: cond1, val1, cond2, val2, ..., else.
  for (auto& [cond, val] : branches) {
    e->children_.push_back(std::move(cond));
    e->children_.push_back(std::move(val));
  }
  e->children_.push_back(std::move(else_value));
  return e;
}

Status ScalarExpr::Bind(const Schema& schema) {
  if (kind_ == ExprKind::kColumn) {
    CHRONICLE_ASSIGN_OR_RETURN(bound_index_, schema.IndexOf(name_));
  }
  for (const ScalarExprPtr& child : children_) {
    CHRONICLE_RETURN_NOT_OK(child->Bind(schema));
  }
  bound_ = true;
  return Status::OK();
}

namespace {

// C-like truthiness: non-zero numeric is true; NULL is false.
Result<bool> Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int64()) return v.int64() != 0;
  if (v.is_double()) return v.dbl() != 0.0;
  return Status::InvalidArgument("string used as boolean: " + v.ToString());
}

}  // namespace

Result<Value> ScalarExpr::Eval(const EvalRow& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (!bound_) return Status::FailedPrecondition("expression not bound");
      return (*row.values)[bound_index_];
    case ExprKind::kSeqNum:
      return Value(static_cast<int64_t>(row.sn));
    case ExprKind::kChronon:
      return Value(row.chronon);
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare: {
      CHRONICLE_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      // SQL-ish: a comparison involving NULL is false.
      if (lhs.is_null() || rhs.is_null()) return Value(int64_t{0});
      const int c = lhs.Compare(rhs);
      bool result = false;
      switch (compare_op_) {
        case CompareOp::kEq:
          result = c == 0;
          break;
        case CompareOp::kNe:
          result = c != 0;
          break;
        case CompareOp::kLt:
          result = c < 0;
          break;
        case CompareOp::kLe:
          result = c <= 0;
          break;
        case CompareOp::kGt:
          result = c > 0;
          break;
        case CompareOp::kGe:
          result = c >= 0;
          break;
      }
      return Value(int64_t{result ? 1 : 0});
    }
    case ExprKind::kAnd: {
      CHRONICLE_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(bool lb, Truthy(lhs));
      if (!lb) return Value(int64_t{0});
      CHRONICLE_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(bool rb, Truthy(rhs));
      return Value(int64_t{rb ? 1 : 0});
    }
    case ExprKind::kOr: {
      CHRONICLE_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(bool lb, Truthy(lhs));
      if (lb) return Value(int64_t{1});
      CHRONICLE_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(bool rb, Truthy(rhs));
      return Value(int64_t{rb ? 1 : 0});
    }
    case ExprKind::kNot: {
      CHRONICLE_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(bool b, Truthy(v));
      return Value(int64_t{b ? 0 : 1});
    }
    case ExprKind::kArith: {
      CHRONICLE_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      CHRONICLE_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      if (lhs.is_null() || rhs.is_null()) return Value();
      if (lhs.is_int64() && rhs.is_int64() && arith_op_ != ArithOp::kDiv) {
        switch (arith_op_) {
          case ArithOp::kAdd:
            return Value(lhs.int64() + rhs.int64());
          case ArithOp::kSub:
            return Value(lhs.int64() - rhs.int64());
          case ArithOp::kMul:
            return Value(lhs.int64() * rhs.int64());
          case ArithOp::kDiv:
            break;  // handled below in double
        }
      }
      CHRONICLE_ASSIGN_OR_RETURN(double a, lhs.AsNumeric());
      CHRONICLE_ASSIGN_OR_RETURN(double b, rhs.AsNumeric());
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
      }
      return Status::Internal("unreachable arithmetic op");
    }
    case ExprKind::kCase: {
      const size_t pairs = (children_.size() - 1) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        CHRONICLE_ASSIGN_OR_RETURN(Value cond, children_[2 * i]->Eval(row));
        CHRONICLE_ASSIGN_OR_RETURN(bool b, Truthy(cond));
        if (b) return children_[2 * i + 1]->Eval(row);
      }
      return children_.back()->Eval(row);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> ScalarExpr::EvalBool(const EvalRow& row) const {
  CHRONICLE_ASSIGN_OR_RETURN(Value v, Eval(row));
  if (v.is_null()) return false;
  if (v.is_int64()) return v.int64() != 0;
  if (v.is_double()) return v.dbl() != 0.0;
  return Status::InvalidArgument("predicate evaluated to a string");
}

ScalarExprPtr ScalarExpr::Clone() const {
  auto e = ScalarExprPtr(new ScalarExpr(kind_));
  e->name_ = name_;
  e->literal_ = literal_;
  e->compare_op_ = compare_op_;
  e->arith_op_ = arith_op_;
  e->bound_index_ = bound_index_;
  e->bound_ = bound_;
  e->children_.reserve(children_.size());
  for (const ScalarExprPtr& child : children_) {
    e->children_.push_back(child->Clone());
  }
  return e;
}

std::string ScalarExpr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return name_;
    case ExprKind::kSeqNum:
      return "$sn";
    case ExprKind::kChronon:
      return "$chronon";
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " +
             CompareOpToString(compare_op_) + " " + children_[1]->ToString() +
             ")";
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " + children_[1]->ToString() +
             ")";
    case ExprKind::kNot:
      return "(NOT " + children_[0]->ToString() + ")";
    case ExprKind::kArith:
      return "(" + children_[0]->ToString() + " " + ArithOpToString(arith_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      const size_t pairs = (children_.size() - 1) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children_[2 * i]->ToString() + " THEN " +
               children_[2 * i + 1]->ToString();
      }
      out += " ELSE " + children_.back()->ToString() + " END";
      return out;
    }
  }
  return "?";
}

}  // namespace chronicle
