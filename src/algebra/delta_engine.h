// DeltaEngine: incremental change propagation through chronicle-algebra
// expressions (Theorems 4.1 and 4.2).
//
// Given one append event (everything inserted under one fresh sequence
// number), the engine computes the delta of any CA expression by one
// recursive pass over the operator tree, using ONLY:
//   * the appended tuples themselves, and
//   * current relation versions (via index lookups for CA_⋈).
// Neither the base chronicles nor any intermediate chronicle view is read
// or materialized — this is what makes the cost independent of |C| and of
// the view size.
//
// Correctness rests on the monotonicity theorem (4.1): all delta rows of a
// tick carry the tick's (fresh) sequence number, so for every operator the
// delta of the output is a function of the deltas of the inputs alone. In
// particular Δ(E1 − E2) = ΔE1 − ΔE2 and Δ(E1 ⋈_SN E2) = ΔE1 ⋈ ΔE2.
//
// Semantics: a chronicle is a *set* of (SN, payload) rows. Within a tick,
// Scan / Project / Union therefore deduplicate; Difference is set
// difference. The baseline engine (baseline/naive_engine.h) implements the
// same semantics so the two can be compared row-for-row in tests.
//
// The engine refuses expressions outside CA (use ValidateChronicleAlgebra
// first; the engine re-checks defensively and returns InvalidArgument).

#ifndef CHRONICLE_ALGEBRA_DELTA_ENGINE_H_
#define CHRONICLE_ALGEBRA_DELTA_ENGINE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "algebra/ca_expr.h"
#include "common/status.h"
#include "storage/chronicle_group.h"

namespace chronicle {

// Observability counters for one ComputeDelta call; benchmark E6/E8 read
// these to verify the Theorem 4.2 time/space story.
struct DeltaStats {
  // Largest intermediate delta (in rows) materialized at any node.
  size_t max_intermediate_rows = 0;
  // Total rows produced across all nodes (proxy for work done).
  size_t total_rows_produced = 0;
  // Relation index lookups performed (the log|R| / O(1) component).
  size_t relation_lookups = 0;
  // Relation rows scanned by cross products (the |R|^j component).
  size_t relation_rows_scanned = 0;
};

// Per-tick memo of node deltas, keyed by expression node identity. Because
// CaExpr trees are shared-const DAGs, several views defined over common
// subexpressions (the same scan, the same guarded selection, ...) can reuse
// one DeltaCache within a tick and each subexpression's delta is computed
// exactly once. A cache is only valid for the single AppendEvent it was
// created for — callers reset it per tick (ViewManager does this).
class DeltaCache {
 public:
  void Clear() { memo_.clear(); }
  size_t size() const { return memo_.size(); }

  // Cache hits observed since construction (monitoring / bench E9).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Folds another cache's hit/miss counters into this one. The parallel
  // maintenance path gives each worker a private per-tick cache (no
  // cross-thread writes) and merges the counters back afterwards so the
  // manager-level statistics stay meaningful.
  void MergeCounters(const DeltaCache& other) {
    hits_ += other.hits_;
    misses_ += other.misses_;
  }

 private:
  friend class DeltaEngine;
  std::unordered_map<const CaExpr*, std::vector<Tuple>> memo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Thread safety: the engine is stateless and ComputeDelta is const — it
// reads only the event, the (shared-const) expression DAG, and the current
// relation versions through const lookups. Concurrent ComputeDelta calls
// are safe provided (a) each call uses its own DeltaCache (or none) — the
// cache is the ONLY state mutated during delta computation — and (b) no
// relation referenced by the plans is mutated concurrently. (b) holds by
// construction: relations are updated proactively, never during an append
// tick, and ChronicleDatabase rejects relation DML while maintenance is in
// flight.
class DeltaEngine {
 public:
  DeltaEngine() = default;

  // Computes the delta rows `expr` gains from `event`. All returned rows
  // carry event.sn. `stats` may be null. When `cache` is non-null it must
  // belong to this event's tick (share it across plans of one tick, clear
  // it between ticks) and must not be shared across threads.
  Result<std::vector<ChronicleRow>> ComputeDelta(const CaExpr& expr,
                                                 const AppendEvent& event,
                                                 DeltaStats* stats,
                                                 DeltaCache* cache) const;

  Result<std::vector<ChronicleRow>> ComputeDelta(const CaExpr& expr,
                                                 const AppendEvent& event,
                                                 DeltaStats* stats) const {
    return ComputeDelta(expr, event, stats, nullptr);
  }

  Result<std::vector<ChronicleRow>> ComputeDelta(const CaExpr& expr,
                                                 const AppendEvent& event) const {
    return ComputeDelta(expr, event, nullptr, nullptr);
  }

 private:
  // Recursive worker: computes (or fetches) the payload-tuple delta of
  // `expr` inside `cache` and returns a pointer to the cached vector.
  Result<const std::vector<Tuple>*> Delta(const CaExpr& expr,
                                          const AppendEvent& event,
                                          DeltaStats* stats,
                                          DeltaCache* cache) const;
};

}  // namespace chronicle

#endif  // CHRONICLE_ALGEBRA_DELTA_ENGINE_H_
