// Complexity classification of chronicle-algebra expressions.
//
// Implements the language hierarchy of the paper:
//
//   CA_1  — no chronicle/relation operation at all        → SCA_1 views are
//           maintainable in IM-Constant (Theorem 4.5)
//   CA_⋈  — relation access only through key joins        → IM-log(R)
//   CA    — arbitrary chronicle × relation cross products → IM-R^k
//   (anything outside CA)                                 → IM-C^k
//
// The analyzer also counts `u` (unions) and `j` (SN-equijoins + relation
// cross products/joins), the parameters of the Theorem 4.2 delta bound
// Time = O((u·|R|)^j · log|R|).

#ifndef CHRONICLE_ALGEBRA_COMPLEXITY_H_
#define CHRONICLE_ALGEBRA_COMPLEXITY_H_

#include <string>

#include "algebra/ca_expr.h"

namespace chronicle {

// Language fragment an expression falls into.
enum class CaClass : uint8_t {
  kCa1 = 0,    // CA_1
  kCaJoin = 1, // CA_⋈
  kCaFull = 2, // CA
  kNotCa = 3,  // uses a Theorem 4.3 forbidden construct
};

// Incremental-maintenance complexity class of §3.
enum class ImClass : uint8_t {
  kImConstant = 0,  // IM-Constant
  kImLogR = 1,      // IM-log(R)
  kImPolyR = 2,     // IM-R^k
  kImPolyC = 3,     // IM-C^k
};

const char* CaClassToString(CaClass c);
const char* ImClassToString(ImClass c);

struct ComplexityReport {
  CaClass ca_class = CaClass::kCa1;
  ImClass im_class = ImClass::kImConstant;
  // Theorem 4.2 parameters.
  int num_unions = 0;      // u
  int num_joins = 0;       // j: SN-equijoins + relation cross/joins
  int num_rel_cross = 0;   // cross products with relations (CA, not CA_⋈)
  int num_rel_keyjoin = 0; // key joins with relations (CA_⋈)
  // Why the expression landed in its class.
  std::string explanation;

  std::string ToString() const;
};

// Classifies `expr` per the hierarchy above.
ComplexityReport AnalyzeComplexity(const CaExpr& expr);

}  // namespace chronicle

#endif  // CHRONICLE_ALGEBRA_COMPLEXITY_H_
