// Scalar expressions: selection predicates, computed projections, and view
// finalizers.
//
// The paper restricts CA selection predicates to `A1 θ A2`, `A1 θ k`, and
// disjunctions thereof (Definition 4.1). The expression type here is richer
// (AND, NOT, arithmetic, CASE) because the engine also needs finalizers and
// the CQL surface; algebra/validate.h is what checks paper-conformance of a
// predicate when strict CA typing is requested.
//
// Expressions are built unbound (column references by name), then Bind()
// resolves names against a schema once at plan-construction time. Eval is
// exception-free and reports type errors through Result.

#ifndef CHRONICLE_ALGEBRA_SCALAR_EXPR_H_
#define CHRONICLE_ALGEBRA_SCALAR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace chronicle {

enum class ExprKind : uint8_t {
  kColumn,   // payload column reference
  kSeqNum,   // the row's sequence number
  kChronon,  // the row's chronon (temporal instant)
  kLiteral,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kArith,
  kCase,  // CASE WHEN c1 THEN v1 ... ELSE vn END
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);

// Evaluation input: one row plus its sequencing metadata. Finalizers over
// view rows pass sn = 0, chronon = 0.
struct EvalRow {
  const Tuple* values = nullptr;
  SeqNum sn = 0;
  int64_t chronon = 0;
};

class ScalarExpr;
using ScalarExprPtr = std::unique_ptr<ScalarExpr>;

class ScalarExpr {
 public:
  // --- factories ---
  static ScalarExprPtr Column(std::string name);
  static ScalarExprPtr SeqNumRef();
  static ScalarExprPtr ChrononRef();
  static ScalarExprPtr Literal(Value v);
  static ScalarExprPtr Compare(CompareOp op, ScalarExprPtr lhs, ScalarExprPtr rhs);
  static ScalarExprPtr And(ScalarExprPtr lhs, ScalarExprPtr rhs);
  static ScalarExprPtr Or(ScalarExprPtr lhs, ScalarExprPtr rhs);
  static ScalarExprPtr Not(ScalarExprPtr operand);
  static ScalarExprPtr Arith(ArithOp op, ScalarExprPtr lhs, ScalarExprPtr rhs);
  // branches: (condition, result) pairs tried in order; else_value on miss.
  static ScalarExprPtr Case(
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches,
      ScalarExprPtr else_value);

  // --- inspection (used by validation and the CQL printer) ---
  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  size_t num_children() const { return children_.size(); }
  const ScalarExpr& child(size_t i) const { return *children_[i]; }
  // Index resolved by Bind (kColumn only).
  size_t bound_index() const { return bound_index_; }

  // Resolves column names against `schema`. Fails on unknown columns.
  Status Bind(const Schema& schema);
  bool bound() const { return bound_; }

  // Evaluates against one row. Comparison yields INT64 0/1; AND/OR/NOT use
  // C-like truthiness of non-zero numerics; NULL propagates through
  // arithmetic and makes comparisons false.
  Result<Value> Eval(const EvalRow& row) const;

  // Convenience: evaluate as a boolean predicate (NULL/false -> false).
  Result<bool> EvalBool(const EvalRow& row) const;

  // Deep copy (unbound state is preserved; bound state too).
  ScalarExprPtr Clone() const;

  std::string ToString() const;

 private:
  explicit ScalarExpr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::string name_;          // kColumn
  Value literal_;             // kLiteral
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ScalarExprPtr> children_;
  size_t bound_index_ = 0;
  bool bound_ = false;
};

// Terse builder aliases used across tests/examples/benches.
inline ScalarExprPtr Col(std::string name) {
  return ScalarExpr::Column(std::move(name));
}
inline ScalarExprPtr Lit(Value v) { return ScalarExpr::Literal(std::move(v)); }
inline ScalarExprPtr Eq(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ScalarExprPtr Ne(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kNe, std::move(a), std::move(b));
}
inline ScalarExprPtr Lt(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ScalarExprPtr Le(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ScalarExprPtr Gt(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ScalarExprPtr Ge(ScalarExprPtr a, ScalarExprPtr b) {
  return ScalarExpr::Compare(CompareOp::kGe, std::move(a), std::move(b));
}

}  // namespace chronicle

#endif  // CHRONICLE_ALGEBRA_SCALAR_EXPR_H_
