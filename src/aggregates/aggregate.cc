#include "aggregates/aggregate.h"

namespace chronicle {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kTieredDiscount:
      return "TIERED_DISCOUNT";
    case AggKind::kFirst:
      return "FIRST";
    case AggKind::kLast:
      return "LAST";
    case AggKind::kCustom:
      return "CUSTOM";
  }
  return "UNKNOWN";
}

AggSpec::AggSpec(AggKind kind, std::string input_column, std::string output_name)
    : kind_(kind),
      input_column_(std::move(input_column)),
      output_name_(std::move(output_name)) {
  if (output_name_.empty()) {
    output_name_ = std::string(AggKindToString(kind_)) + "(" + input_column_ + ")";
  }
}

AggSpec AggSpec::Count(std::string output_name) {
  return AggSpec(AggKind::kCount, "", std::move(output_name));
}

AggSpec AggSpec::Sum(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kSum, std::move(input_column), std::move(output_name));
}

AggSpec AggSpec::Min(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kMin, std::move(input_column), std::move(output_name));
}

AggSpec AggSpec::Max(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kMax, std::move(input_column), std::move(output_name));
}

AggSpec AggSpec::Avg(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kAvg, std::move(input_column), std::move(output_name));
}

AggSpec AggSpec::First(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kFirst, std::move(input_column),
                 std::move(output_name));
}

AggSpec AggSpec::Last(std::string input_column, std::string output_name) {
  return AggSpec(AggKind::kLast, std::move(input_column),
                 std::move(output_name));
}

AggSpec AggSpec::TieredDiscount(std::string input_column, TieredSchedule schedule,
                                std::string output_name) {
  AggSpec spec(AggKind::kTieredDiscount, std::move(input_column),
               std::move(output_name));
  spec.schedule_ = std::move(schedule);
  return spec;
}

AggSpec AggSpec::Custom(std::shared_ptr<const CustomAggregateDef> def,
                        std::string input_column, std::string output_name) {
  if (output_name.empty() && def != nullptr) {
    output_name = def->name + "(" + input_column + ")";
  }
  AggSpec spec(AggKind::kCustom, std::move(input_column), std::move(output_name));
  spec.custom_def_ = std::move(def);
  return spec;
}

Status AggSpec::Bind(const Schema& schema) {
  if (kind_ == AggKind::kCount) {
    bound_ = true;
    return Status::OK();
  }
  if (kind_ == AggKind::kCustom && custom_def_ == nullptr) {
    return Status::InvalidArgument("custom aggregate without a definition");
  }
  CHRONICLE_ASSIGN_OR_RETURN(bound_input_, schema.IndexOf(input_column_));
  input_type_ = schema.field(bound_input_).type;
  const bool needs_numeric = kind_ == AggKind::kSum || kind_ == AggKind::kAvg ||
                             kind_ == AggKind::kTieredDiscount;
  if (needs_numeric && input_type_ == DataType::kString) {
    return Status::InvalidArgument(std::string(AggKindToString(kind_)) +
                                   " requires a numeric column, got STRING '" +
                                   input_column_ + "'");
  }
  bound_ = true;
  return Status::OK();
}

Field AggSpec::OutputField() const {
  switch (kind_) {
    case AggKind::kCount:
      return {output_name_, DataType::kInt64};
    case AggKind::kSum:
      return {output_name_, input_type_};
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kFirst:
    case AggKind::kLast:
      return {output_name_, input_type_};
    case AggKind::kAvg:
    case AggKind::kTieredDiscount:
      return {output_name_, DataType::kDouble};
    case AggKind::kCustom:
      return {output_name_, custom_def_->output_type};
  }
  return {output_name_, DataType::kInt64};
}

AggState AggSpec::Init() const {
  AggState state;
  if (kind_ == AggKind::kCustom) state.custom = custom_def_->init();
  return state;
}

void AggSpec::Update(AggState* state, const Tuple& row) const {
  if (kind_ == AggKind::kCount) {
    ++state->count;
    return;
  }
  UpdateValue(state, row[bound_input_]);
}

void AggSpec::UpdateValue(AggState* state, const Value& v) const {
  switch (kind_) {
    case AggKind::kCount:
      ++state->count;
      return;
    case AggKind::kSum:
    case AggKind::kTieredDiscount:
      if (v.is_null()) return;
      ++state->count;
      if (v.is_int64()) {
        state->sum_i += v.int64();
        state->sum_d += static_cast<double>(v.int64());
      } else {
        state->sum_d += v.dbl();
      }
      return;
    case AggKind::kAvg: {
      if (v.is_null()) return;
      ++state->count;
      state->sum_d += v.is_int64() ? static_cast<double>(v.int64()) : v.dbl();
      return;
    }
    case AggKind::kMin:
      if (v.is_null()) return;
      if (state->min.is_null() || v < state->min) state->min = v;
      return;
    case AggKind::kMax:
      if (v.is_null()) return;
      if (state->max.is_null() || state->max < v) state->max = v;
      return;
    case AggKind::kFirst:
      if (v.is_null()) return;
      if (state->first.is_null()) state->first = v;
      return;
    case AggKind::kLast:
      if (v.is_null()) return;
      state->last = v;
      return;
    case AggKind::kCustom:
      custom_def_->update(&state->custom, v);
      return;
  }
}

void AggSpec::Merge(AggState* state, const AggState& other) const {
  switch (kind_) {
    case AggKind::kCount:
      state->count += other.count;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kTieredDiscount:
      state->count += other.count;
      state->sum_i += other.sum_i;
      state->sum_d += other.sum_d;
      return;
    case AggKind::kMin:
      if (!other.min.is_null() &&
          (state->min.is_null() || other.min < state->min)) {
        state->min = other.min;
      }
      return;
    case AggKind::kMax:
      if (!other.max.is_null() &&
          (state->max.is_null() || state->max < other.max)) {
        state->max = other.max;
      }
      return;
    case AggKind::kFirst:
      // `other` is chronologically later: keep ours unless we saw nothing.
      if (state->first.is_null()) state->first = other.first;
      return;
    case AggKind::kLast:
      if (!other.last.is_null()) state->last = other.last;
      return;
    case AggKind::kCustom:
      custom_def_->merge(&state->custom, other.custom);
      return;
  }
}

Value AggSpec::Finalize(const AggState& state) const {
  switch (kind_) {
    case AggKind::kCount:
      return Value(state.count);
    case AggKind::kSum:
      if (state.count == 0) return Value();  // SQL: SUM of empty is NULL
      if (input_type_ == DataType::kInt64) return Value(state.sum_i);
      return Value(state.sum_d);
    case AggKind::kMin:
      return state.min;
    case AggKind::kMax:
      return state.max;
    case AggKind::kFirst:
      return state.first;
    case AggKind::kLast:
      return state.last;
    case AggKind::kAvg:
      if (state.count == 0) return Value();
      return Value(state.sum_d / static_cast<double>(state.count));
    case AggKind::kTieredDiscount:
      return Value(schedule_.DiscountedTotal(state.sum_d));
    case AggKind::kCustom:
      return custom_def_->finalize(state.custom);
  }
  return Value();
}

std::string AggSpec::ToString() const {
  std::string out = AggKindToString(kind_);
  out += "(";
  out += kind_ == AggKind::kCount ? "*" : input_column_;
  out += ")";
  if (kind_ == AggKind::kTieredDiscount) {
    out += "[" + schedule_.ToString() + "]";
  }
  out += " AS " + output_name_;
  return out;
}

}  // namespace chronicle
