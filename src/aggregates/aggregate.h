// Incrementally computable aggregation functions.
//
// The chronicle model only admits aggregates that are "incrementally
// computable, or decomposable into incremental computation functions"
// (paper, Preliminaries): each function exposes
//   Init    — the empty state,
//   Update  — fold one new input value in O(1),
//   Merge   — combine two partial states in O(1) (decomposability; this is
//             what the §5.1 sliding-window pane optimization relies on),
//   Finalize— produce the output value.
// Because chronicles are append-only, no retraction support is needed —
// which is exactly why MIN/MAX qualify here while they would not under
// deletions.
//
// Builtins: COUNT, SUM, MIN, MAX, AVG, plus the §5.3 TIERED_DISCOUNT
// aggregate. User-defined aggregates plug in through CustomAggregateDef.

#ifndef CHRONICLE_AGGREGATES_AGGREGATE_H_
#define CHRONICLE_AGGREGATES_AGGREGATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aggregates/tiered_discount.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace chronicle {

enum class AggKind : uint8_t {
  kCount = 0,
  kSum,
  kMin,
  kMax,
  kAvg,
  kTieredDiscount,
  // FIRST/LAST value in arrival (sequence-number) order — "current state"
  // summaries, e.g. the last known address-affecting transaction. Sound
  // under the chronicle model because appends arrive in SN order; Merge
  // requires the caller to fold states in chronological order (the pane
  // ring does; see SlidingWindowView::MergeKey).
  kFirst,
  kLast,
  kCustom,
};

// A user-defined decomposable aggregate. State is an opaque Tuple.
struct CustomAggregateDef {
  std::string name;
  DataType output_type;
  std::function<Tuple()> init;
  std::function<void(Tuple*, const Value&)> update;
  std::function<void(Tuple*, const Tuple&)> merge;
  std::function<Value(const Tuple&)> finalize;
};

// The running state of one aggregate instance for one group. A single
// struct covers all builtins (only the fields the kind uses are touched);
// custom aggregates use `custom`.
struct AggState {
  int64_t count = 0;
  int64_t sum_i = 0;   // exact integer sum when the input column is INT64
  double sum_d = 0.0;  // floating sum otherwise
  Value min;           // NULL = no input seen yet
  Value max;
  Value first;         // kFirst: earliest non-null input (NULL = none yet)
  Value last;          // kLast: latest non-null input
  Tuple custom;
};

// The specification of one aggregate column of a view: which function, over
// which input column, under what output name.
class AggSpec {
 public:
  // Factories. `input_column` is resolved against the operand schema at
  // bind time; COUNT takes no input column.
  static AggSpec Count(std::string output_name = "count");
  static AggSpec Sum(std::string input_column, std::string output_name = "");
  static AggSpec Min(std::string input_column, std::string output_name = "");
  static AggSpec Max(std::string input_column, std::string output_name = "");
  static AggSpec Avg(std::string input_column, std::string output_name = "");
  static AggSpec First(std::string input_column, std::string output_name = "");
  static AggSpec Last(std::string input_column, std::string output_name = "");
  // §5.3: discounted total of `input_column` under a tiered rate schedule.
  static AggSpec TieredDiscount(std::string input_column,
                                TieredSchedule schedule,
                                std::string output_name = "");
  static AggSpec Custom(std::shared_ptr<const CustomAggregateDef> def,
                        std::string input_column, std::string output_name = "");

  AggKind kind() const { return kind_; }
  const std::string& input_column() const { return input_column_; }
  const std::string& output_name() const { return output_name_; }
  const TieredSchedule& schedule() const { return schedule_; }
  const CustomAggregateDef* custom_def() const { return custom_def_.get(); }

  // Resolves the input column against `schema` and records input type.
  // Fails if the column is missing or non-numeric where numeric is needed.
  Status Bind(const Schema& schema);
  // Index of the bound input column (COUNT: unused).
  size_t bound_input() const { return bound_input_; }

  // Output field (name + type); valid after Bind.
  Field OutputField() const;

  // --- state transitions (valid after Bind) ---
  AggState Init() const;
  // Folds the input value from `row` into `state`. NULL inputs are skipped
  // (SQL semantics); COUNT counts rows, not non-nulls.
  void Update(AggState* state, const Tuple& row) const;
  // Folds a raw value (used by pane merging paths that pre-extract inputs).
  void UpdateValue(AggState* state, const Value& v) const;
  // Combines `other` into `state` (decomposability).
  void Merge(AggState* state, const AggState& other) const;
  Value Finalize(const AggState& state) const;

  // "SUM(minutes) AS total" rendering.
  std::string ToString() const;

 private:
  AggSpec(AggKind kind, std::string input_column, std::string output_name);

  AggKind kind_;
  std::string input_column_;
  std::string output_name_;
  TieredSchedule schedule_;
  std::shared_ptr<const CustomAggregateDef> custom_def_;

  size_t bound_input_ = 0;
  DataType input_type_ = DataType::kInt64;
  bool bound_ = false;
};

// Human-readable name of an AggKind ("SUM", ...).
const char* AggKindToString(AggKind kind);

}  // namespace chronicle

#endif  // CHRONICLE_AGGREGATES_AGGREGATE_H_
