#include "aggregates/tiered_discount.h"

#include <cstdio>

namespace chronicle {

Result<TieredSchedule> TieredSchedule::Make(std::vector<Tier> tiers) {
  for (size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].rate < 0.0 || tiers[i].rate >= 1.0) {
      return Status::InvalidArgument("tier rate must be in [0,1)");
    }
    if (i > 0 && tiers[i].threshold <= tiers[i - 1].threshold) {
      return Status::InvalidArgument(
          "tier thresholds must be strictly increasing");
    }
  }
  return TieredSchedule(std::move(tiers));
}

double TieredSchedule::RateFor(double total) const {
  double rate = 0.0;
  for (const Tier& t : tiers_) {
    if (total > t.threshold) rate = t.rate;
  }
  return rate;
}

double TieredSchedule::DiscountedTotal(double total) const {
  return total * (1.0 - RateFor(total));
}

std::string TieredSchedule::ToString() const {
  std::string out;
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f%%>@%g", tiers_[i].rate * 100.0,
                  tiers_[i].threshold);
    out += buf;
  }
  return out;
}

}  // namespace chronicle
