// TieredSchedule: the stepwise discount/fee schedules of paper §5.3.
//
// Example (the paper's telephone plan): 10% off all calls once monthly
// undiscounted expenses exceed $10, 20% once they exceed $25. The whole
// period's activity is re-rated at the highest tier reached — which is why
// the batch formulation needs the period's full record set, while the
// incremental formulation only needs the running total.

#ifndef CHRONICLE_AGGREGATES_TIERED_DISCOUNT_H_
#define CHRONICLE_AGGREGATES_TIERED_DISCOUNT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace chronicle {

// One tier: once `total > threshold`, `rate` applies to the whole total.
struct Tier {
  double threshold = 0.0;
  double rate = 0.0;  // fraction in [0, 1)
};

class TieredSchedule {
 public:
  TieredSchedule() = default;

  // Builds a schedule; tiers must be strictly increasing in threshold and
  // have rates in [0, 1).
  static Result<TieredSchedule> Make(std::vector<Tier> tiers);

  const std::vector<Tier>& tiers() const { return tiers_; }

  // Rate applicable to an undiscounted total (0 if below every tier).
  double RateFor(double total) const;

  // total * (1 - RateFor(total)): the discounted amount owed.
  double DiscountedTotal(double total) const;

  // "10%>@10, 20%>@25" rendering.
  std::string ToString() const;

 private:
  explicit TieredSchedule(std::vector<Tier> tiers) : tiers_(std::move(tiers)) {}
  std::vector<Tier> tiers_;
};

}  // namespace chronicle

#endif  // CHRONICLE_AGGREGATES_TIERED_DISCOUNT_H_
