#include "types/tuple.h"

namespace chronicle {

bool TupleEquals(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

int TupleCompare(const Tuple& a, const Tuple& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t TupleHashValue(const Tuple& t) {
  size_t seed = 0x51ed2701;
  for (const Value& v : t) seed = HashCombine(seed, v.Hash());
  return seed;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

std::string ChronicleRowToString(const ChronicleRow& row) {
  return "[sn=" + std::to_string(row.sn) + " | " + TupleToString(row.values) + "]";
}

Status ValidateTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match schema " +
        schema.ToString());
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (tuple[i].type() != schema.field(i).type) {
      return Status::InvalidArgument(
          "column '" + schema.field(i).name + "' expects " +
          DataTypeToString(schema.field(i).type) + " but got " +
          tuple[i].ToString());
    }
  }
  return Status::OK();
}

}  // namespace chronicle
