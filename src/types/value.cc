#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace chronicle {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  return DataType::kInt64;
}

Result<double> Value::AsNumeric() const {
  if (is_int64()) return static_cast<double>(int64());
  if (is_double()) return dbl();
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

int Value::Compare(const Value& other) const {
  // NULL sorts before everything; two NULLs are equal (grouping semantics).
  if (is_null() || other.is_null()) {
    return static_cast<int>(!is_null()) - static_cast<int>(!other.is_null());
  }
  const bool this_num = is_int64() || is_double();
  const bool other_num = other.is_int64() || other.is_double();
  if (this_num && other_num) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = int64();
      const int64_t b = other.int64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = is_int64() ? static_cast<double>(int64()) : dbl();
    const double b = other.is_int64() ? static_cast<double>(other.int64()) : other.dbl();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    return str().compare(other.str()) < 0 ? -1 : (str() == other.str() ? 0 : 1);
  }
  // Mixed string/numeric: order by type tag (numerics < strings).
  return this_num ? -1 : 1;
}

size_t Value::Hash() const {
  if (is_null()) return HashNullValue();
  if (is_string()) return HashStringValue(str());
  return is_int64() ? HashInt64Value(int64()) : HashDoubleValue(dbl());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", dbl());
    return buf;
  }
  return "\"" + str() + "\"";
}

}  // namespace chronicle
