// Schema: ordered, named, typed columns of a chronicle payload, a relation,
// or a persistent view.
//
// The sequence number (SN) of a chronicle is NOT part of its payload schema:
// it is a distinguished field carried alongside each row (see
// types/tuple.h). This encodes, structurally, the chronicle-algebra rule
// that every CA operator preserves the sequencing attribute — an expression
// can only lose the SN through the explicit summarization step.

#ifndef CHRONICLE_TYPES_SCHEMA_H_
#define CHRONICLE_TYPES_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace chronicle {

// One named, typed column.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

// An immutable ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  // Builds a schema or fails on duplicate/empty column names.
  static Result<Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of a column by name.
  Result<size_t> IndexOf(const std::string& name) const;
  // True iff a column with this name exists.
  bool Contains(const std::string& name) const;

  // Schema of a projection onto the given columns (in the given order).
  Result<Schema> Project(const std::vector<std::string>& names) const;

  // Concatenation (for joins): this schema's fields followed by `other`'s.
  // Columns that collide get the `prefix` + "." disambiguation on the right
  // side, e.g. "r.acct".
  Schema Concat(const Schema& other, const std::string& prefix) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  // "(a INT64, b STRING)" rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace chronicle

#endif  // CHRONICLE_TYPES_SCHEMA_H_
