// Tuple and ChronicleRow: the row representations of the engine.
//
// A Tuple is a plain vector of Values matching some Schema. A ChronicleRow
// pairs a Tuple with the distinguished sequence number (SN) of the chronicle
// data model; SNs are system-managed and never stored inside the payload.

#ifndef CHRONICLE_TYPES_TUPLE_H_
#define CHRONICLE_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace chronicle {

// Sequence numbers are drawn from an infinite ordered domain; 64 bits is
// effectively infinite for any real stream.
using SeqNum = uint64_t;

// A payload row.
using Tuple = std::vector<Value>;

// Equality, ordering, hashing, and printing for tuples.
bool TupleEquals(const Tuple& a, const Tuple& b);
// Lexicographic three-way comparison.
int TupleCompare(const Tuple& a, const Tuple& b);
size_t TupleHashValue(const Tuple& t);
std::string TupleToString(const Tuple& t);

// std-style functors for unordered containers keyed on Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return TupleHashValue(t); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return TupleEquals(a, b);
  }
};
// Ordering functor for ordered containers keyed on Tuple.
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return TupleCompare(a, b) < 0;
  }
};

// A chronicle row: payload plus its sequence number. Multiple rows may share
// one SN (e.g. both branches of a union fire on the same base insertion).
struct ChronicleRow {
  SeqNum sn = 0;
  Tuple values;

  bool operator==(const ChronicleRow& other) const {
    return sn == other.sn && TupleEquals(values, other.values);
  }
};

// "[sn=7 | 42, "x"]" rendering.
std::string ChronicleRowToString(const ChronicleRow& row);

// Checks that a tuple's arity and value types match `schema` (NULLs match
// any type). Returns a descriptive error on mismatch.
Status ValidateTuple(const Schema& schema, const Tuple& tuple);

}  // namespace chronicle

#endif  // CHRONICLE_TYPES_TUPLE_H_
