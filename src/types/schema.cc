#include "types/schema.h"

#include <unordered_set>

namespace chronicle {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema has an empty column name");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate column name: " + f.name);
    }
  }
  return Schema(std::move(fields));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in " + ToString());
}

bool Schema::Contains(const std::string& name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    CHRONICLE_ASSIGN_OR_RETURN(size_t idx, IndexOf(n));
    out.push_back(fields_[idx]);
  }
  return Schema(std::move(out));
}

Schema Schema::Concat(const Schema& other, const std::string& prefix) const {
  std::vector<Field> out = fields_;
  out.reserve(fields_.size() + other.num_fields());
  for (const Field& f : other.fields()) {
    Field g = f;
    if (Contains(g.name)) g.name = prefix + "." + g.name;
    out.push_back(std::move(g));
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace chronicle
