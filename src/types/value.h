// Value: the dynamically-typed cell of the chronicle data model.
//
// The model needs only a small scalar vocabulary: 64-bit integers (account
// numbers, counts, sequence numbers surfaced to users), doubles (amounts,
// rates), strings (names, regions), and NULL. Values are ordered and hashable
// so they can serve as grouping keys and index keys.

#ifndef CHRONICLE_TYPES_VALUE_H_
#define CHRONICLE_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/status.h"

namespace chronicle {

// Scalar column types.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

// Human-readable type name ("INT64", "DOUBLE", "STRING").
const char* DataTypeToString(DataType type);

// A single scalar cell. NULL is represented by std::monostate.
class Value {
 public:
  // NULL value.
  Value() : var_(std::monostate{}) {}
  // Intentionally implicit: literals flow into tuples naturally.
  Value(int64_t v) : var_(v) {}              // NOLINT(runtime/explicit)
  Value(int v) : var_(int64_t{v}) {}         // NOLINT(runtime/explicit)
  Value(double v) : var_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : var_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : var_(std::string(v)) {}  // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(var_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(var_); }
  bool is_double() const { return std::holds_alternative<double>(var_); }
  bool is_string() const { return std::holds_alternative<std::string>(var_); }

  // Type of a non-null value; calling on NULL is a caller bug and reports
  // kInt64 (NULL has no type).
  DataType type() const;

  // Unchecked accessors; only valid for the matching alternative.
  int64_t int64() const { return std::get<int64_t>(var_); }
  double dbl() const { return std::get<double>(var_); }
  const std::string& str() const { return std::get<std::string>(var_); }

  // Numeric view: int64 or double widened to double. Error for string/NULL.
  Result<double> AsNumeric() const;

  // Three-way comparison with SQL-ish semantics: NULL sorts first; numerics
  // compare cross-type (int64 vs double); strings compare lexicographically;
  // otherwise ordering falls back to type tag. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable hash consistent with operator== (numeric cross-type equality
  // hashes equal values equally).
  size_t Hash() const;

  // Display rendering, e.g. `42`, `3.14`, `"abc"`, `NULL`.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> var_;
};

// std-style hasher for containers keyed on Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// Monomorphic per-type hashes. Value::Hash dispatches to these, and the
// columnar executor (src/exec/column_batch.h) calls them directly from its
// typed column loops: both sides MUST hash equal values identically or the
// vectorized dedupe/group tables would diverge from the row engine's.
inline size_t HashNullValue() { return 0x9e3779b9; }
inline size_t HashDoubleValue(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0 so it collides with +0.0
  return std::hash<double>()(d);
}
// Integers hash through double so 2 (int64) and 2.0 (double) collide, as
// required by cross-type equality. Integers up to 2^53 round-trip exactly.
inline size_t HashInt64Value(int64_t v) {
  return HashDoubleValue(static_cast<double>(v));
}
inline size_t HashStringValue(const std::string& s) {
  return std::hash<std::string>()(s);
}

// Combines two hash values (boost::hash_combine formula).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace chronicle

#endif  // CHRONICLE_TYPES_VALUE_H_
