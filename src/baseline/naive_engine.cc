#include "baseline/naive_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/keyed_table.h"

namespace chronicle {

namespace {

struct RowHash {
  size_t operator()(const ChronicleRow& row) const {
    return HashCombine(std::hash<SeqNum>()(row.sn), TupleHashValue(row.values));
  }
};
struct RowEq {
  bool operator()(const ChronicleRow& a, const ChronicleRow& b) const {
    return a == b;
  }
};
using RowSet = std::unordered_set<ChronicleRow, RowHash, RowEq>;

void DedupeRows(std::vector<ChronicleRow>* rows) {
  RowSet seen;
  std::vector<ChronicleRow> out;
  out.reserve(rows->size());
  for (ChronicleRow& row : *rows) {
    if (seen.insert(row).second) out.push_back(std::move(row));
  }
  *rows = std::move(out);
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool ThetaHolds(CompareOp op, SeqNum a, SeqNum b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

void RelationHistory::Snapshot(const Relation& rel, SeqNum from_sn) {
  history_[&rel][from_sn] = rel.rows();
}

const std::vector<Tuple>* RelationHistory::RowsAt(const Relation* rel,
                                                  SeqNum sn) const {
  auto rel_it = history_.find(rel);
  if (rel_it == history_.end()) return nullptr;
  const auto& by_sn = rel_it->second;
  // Latest snapshot with from_sn <= sn.
  auto it = by_sn.upper_bound(sn);
  if (it == by_sn.begin()) return nullptr;
  --it;
  return &it->second;
}

size_t RelationHistory::num_snapshots() const {
  size_t total = 0;
  for (const auto& [rel, by_sn] : history_) total += by_sn.size();
  return total;
}

NaiveEngine::NaiveEngine(const ChronicleGroup* group,
                         const RelationHistory* history, ScanScope scope)
    : group_(group), history_(history), scope_(scope) {}

const std::vector<Tuple>& NaiveEngine::RelationRowsAt(const Relation* rel,
                                                      SeqNum sn) const {
  if (history_ != nullptr) {
    const std::vector<Tuple>* rows = history_->RowsAt(rel, sn);
    if (rows != nullptr) return *rows;
  }
  return rel->rows();
}

Result<std::vector<ChronicleRow>> NaiveEngine::Evaluate(
    const CaExpr& expr) const {
  switch (expr.op()) {
    case CaOp::kScan: {
      CHRONICLE_ASSIGN_OR_RETURN(const Chronicle* chron,
                                 group_->GetChronicle(expr.chronicle_id()));
      if (scope_ == ScanScope::kFullChronicle &&
          chron->total_appended() != chron->num_retained()) {
        return Status::FailedPrecondition(
            "chronicle '" + chron->name() +
            "' has discarded rows; the relational baseline requires the "
            "entire chronicle to be stored (retention = All or Tiered "
            "within budget)");
      }
      // Templated visitor scan: warm-tier segment rows stream through the
      // same lambda as the hot deque, with no per-row std::function hop.
      std::vector<ChronicleRow> out;
      out.reserve(chron->num_retained());
      CHRONICLE_RETURN_NOT_OK(chron->ScanRetained(
          [&out](const ChronicleRow& row) { out.push_back(row); }));
      DedupeRows(&out);
      return out;
    }

    case CaOp::kSelect: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      std::vector<ChronicleRow> out;
      out.reserve(child.size());
      for (ChronicleRow& row : child) {
        const Chronon chronon = chronon_resolver_
                                    ? chronon_resolver_(row.sn)
                                    : static_cast<Chronon>(row.sn);
        EvalRow eval{&row.values, row.sn, chronon};
        CHRONICLE_ASSIGN_OR_RETURN(bool keep, expr.predicate()->EvalBool(eval));
        if (keep) out.push_back(std::move(row));
      }
      return out;
    }

    case CaOp::kProject:
    case CaOp::kProjectDropSn: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      const bool drop_sn = expr.op() == CaOp::kProjectDropSn;
      std::vector<ChronicleRow> out;
      out.reserve(child.size());
      for (const ChronicleRow& row : child) {
        Tuple projected;
        projected.reserve(expr.projection().size());
        for (size_t idx : expr.projection()) projected.push_back(row.values[idx]);
        out.push_back(ChronicleRow{drop_sn ? 0 : row.sn, std::move(projected)});
      }
      DedupeRows(&out);
      return out;
    }

    case CaOp::kSeqJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> left,
                                 Evaluate(*expr.child(0)));
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> right,
                                 Evaluate(*expr.child(1)));
      std::unordered_map<SeqNum, std::vector<const Tuple*>> by_sn;
      for (const ChronicleRow& row : right) {
        by_sn[row.sn].push_back(&row.values);
      }
      std::vector<ChronicleRow> out;
      for (const ChronicleRow& l : left) {
        auto it = by_sn.find(l.sn);
        if (it == by_sn.end()) continue;
        for (const Tuple* r : it->second) {
          out.push_back(ChronicleRow{l.sn, ConcatTuples(l.values, *r)});
        }
      }
      return out;
    }

    case CaOp::kUnion: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> left,
                                 Evaluate(*expr.child(0)));
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> right,
                                 Evaluate(*expr.child(1)));
      std::vector<ChronicleRow> out = std::move(left);
      out.insert(out.end(), std::make_move_iterator(right.begin()),
                 std::make_move_iterator(right.end()));
      DedupeRows(&out);
      return out;
    }

    case CaOp::kDifference: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> left,
                                 Evaluate(*expr.child(0)));
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> right,
                                 Evaluate(*expr.child(1)));
      RowSet removed(right.begin(), right.end());
      std::vector<ChronicleRow> out;
      out.reserve(left.size());
      for (ChronicleRow& row : left) {
        if (removed.count(row) == 0) out.push_back(std::move(row));
      }
      DedupeRows(&out);
      return out;
    }

    case CaOp::kGroupBySeq:
    case CaOp::kGroupByNoSn: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      const bool with_sn = expr.op() == CaOp::kGroupBySeq;
      // Key: [sn?] + group columns.
      KeyedTable<std::vector<AggState>> groups(IndexMode::kHash);
      std::vector<std::pair<Tuple, SeqNum>> order;
      for (const ChronicleRow& row : child) {
        Tuple key;
        key.reserve(expr.group_columns().size() + 1);
        if (with_sn) key.push_back(Value(static_cast<int64_t>(row.sn)));
        for (size_t idx : expr.group_columns()) key.push_back(row.values[idx]);
        std::vector<AggState>* states = groups.Find(key);
        if (states == nullptr) {
          states = &groups.GetOrCreate(key);
          states->reserve(expr.aggregates().size());
          for (const AggSpec& agg : expr.aggregates()) {
            states->push_back(agg.Init());
          }
          order.emplace_back(key, row.sn);
        }
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          expr.aggregates()[i].Update(&(*states)[i], row.values);
        }
      }
      std::vector<ChronicleRow> out;
      out.reserve(order.size());
      for (const auto& [key, sn] : order) {
        const std::vector<AggState>* states = groups.Find(key);
        Tuple payload(key.begin() + (with_sn ? 1 : 0), key.end());
        for (size_t i = 0; i < expr.aggregates().size(); ++i) {
          payload.push_back(expr.aggregates()[i].Finalize((*states)[i]));
        }
        out.push_back(ChronicleRow{with_sn ? sn : 0, std::move(payload)});
      }
      return out;
    }

    case CaOp::kRelCross: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      std::vector<ChronicleRow> out;
      for (const ChronicleRow& row : child) {
        const std::vector<Tuple>& rel_rows =
            RelationRowsAt(expr.relation(), row.sn);
        for (const Tuple& r : rel_rows) {
          out.push_back(ChronicleRow{row.sn, ConcatTuples(row.values, r)});
        }
      }
      return out;
    }

    case CaOp::kRelKeyJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      const Relation* rel = expr.relation();
      const size_t key_col = rel->key_index();
      std::vector<ChronicleRow> out;
      out.reserve(child.size());
      for (const ChronicleRow& row : child) {
        const Value& key = row.values[expr.join_column()];
        const std::vector<Tuple>& rel_rows = RelationRowsAt(rel, row.sn);
        // Historical versions are plain row vectors; scan for the key (the
        // baseline pays this cost, the incremental engine does not).
        for (const Tuple& r : rel_rows) {
          if (r[key_col] == key) {
            out.push_back(ChronicleRow{row.sn, ConcatTuples(row.values, r)});
            break;  // key is unique
          }
        }
      }
      return out;
    }

    case CaOp::kRelBoundedJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> child,
                                 Evaluate(*expr.child(0)));
      const Relation* rel = expr.relation();
      const size_t rel_col = expr.relation_column();
      std::vector<ChronicleRow> out;
      for (const ChronicleRow& row : child) {
        const Value& key = row.values[expr.join_column()];
        const std::vector<Tuple>& rel_rows = RelationRowsAt(rel, row.sn);
        size_t matched = 0;
        for (const Tuple& r : rel_rows) {
          if (r[rel_col] == key) {
            if (++matched > expr.max_matches()) {
              return Status::FailedPrecondition(
                  "bounded join exceeded its declared bound of " +
                  std::to_string(expr.max_matches()) + " (Definition 4.2)");
            }
            out.push_back(ChronicleRow{row.sn, ConcatTuples(row.values, r)});
          }
        }
      }
      return out;
    }

    case CaOp::kChronicleCross:
    case CaOp::kSeqThetaJoin: {
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> left,
                                 Evaluate(*expr.child(0)));
      CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> right,
                                 Evaluate(*expr.child(1)));
      const bool is_theta = expr.op() == CaOp::kSeqThetaJoin;
      std::vector<ChronicleRow> out;
      for (const ChronicleRow& l : left) {
        for (const ChronicleRow& r : right) {
          if (is_theta && !ThetaHolds(expr.theta(), l.sn, r.sn)) continue;
          out.push_back(ChronicleRow{l.sn > r.sn ? l.sn : r.sn,
                                     ConcatTuples(l.values, r.values)});
        }
      }
      DedupeRows(&out);
      return out;
    }
  }
  return Status::Internal("unreachable CA operator");
}

Result<std::vector<Tuple>> NaiveEngine::EvaluateSummary(
    const CaExpr& expr, const SummarySpec& spec) const {
  CHRONICLE_ASSIGN_OR_RETURN(std::vector<ChronicleRow> rows, Evaluate(expr));
  std::vector<Tuple> out;
  if (spec.kind() == SummarySpec::Kind::kGroupBy) {
    KeyedTable<std::vector<AggState>> groups(IndexMode::kHash);
    std::vector<Tuple> order;
    for (const ChronicleRow& row : rows) {
      Tuple key = spec.KeyOf(row.values);
      std::vector<AggState>* states = groups.Find(key);
      if (states == nullptr) {
        states = &groups.GetOrCreate(key);
        states->reserve(spec.aggregates().size());
        for (const AggSpec& agg : spec.aggregates()) {
          states->push_back(agg.Init());
        }
        order.push_back(key);
      }
      for (size_t i = 0; i < spec.aggregates().size(); ++i) {
        spec.aggregates()[i].Update(&(*states)[i], row.values);
      }
    }
    out.reserve(order.size());
    for (const Tuple& key : order) {
      const std::vector<AggState>* states = groups.Find(key);
      Tuple finalized = key;
      for (size_t i = 0; i < spec.aggregates().size(); ++i) {
        finalized.push_back(spec.aggregates()[i].Finalize((*states)[i]));
      }
      out.push_back(std::move(finalized));
    }
  } else {
    std::unordered_set<Tuple, TupleHash, TupleEq> seen;
    for (const ChronicleRow& row : rows) {
      Tuple key = spec.KeyOf(row.values);
      if (seen.insert(key).second) out.push_back(std::move(key));
    }
  }
  SortTuples(&out);
  return out;
}

void SortTuples(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end(),
            [](const Tuple& a, const Tuple& b) { return TupleCompare(a, b) < 0; });
}

}  // namespace chronicle
